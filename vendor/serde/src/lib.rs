//! Offline drop-in subset of `serde` for this workspace.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal serialization layer under the `serde` name. Instead of
//! serde's visitor-based data model, this subset uses a concrete value tree:
//! [`Serialize`] renders a type into a [`Value`] and [`Deserialize`] rebuilds
//! a type from one. The companion `serde_json` facade turns a [`Value`] into
//! canonical JSON text and back.
//!
//! The subset intentionally covers exactly what this repository uses:
//! `#[derive(Serialize, Deserialize)]` on structs and enums with the
//! `transparent`, `tag`, `flatten`, `skip`, and `skip_serializing_if`
//! attributes, plus the primitive / tuple / array / `Vec` / `Option` impls
//! the derived code bottoms out in. Field order is preserved, so exports are
//! byte-stable — which the determinism tests rely on.

/// A JSON-shaped value tree: the single data model of this serde subset.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative parses as `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields (byte-stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True when the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True when the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// The object's fields, when this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view (accepts `U64` and non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// Float view (integers convert losslessly enough for telemetry use).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders any serializable value into the tree.
    pub fn from_serialize<T: Serialize + ?Sized>(v: &T) -> Value {
        v.to_value()
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: std::fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compatibility alias for `serde::de::Error::custom` call sites.
pub mod de {
    pub use crate::Error;
}

/// Compatibility alias for `serde::ser` call sites.
pub mod ser {
    pub use crate::Error;
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when an object field is absent. `Option` overrides this to
    /// produce `None`, matching serde's treatment of omitted fields.
    fn from_missing() -> Result<Self, Error> {
        Err(Error::custom("missing field"))
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Support hook for derived code: fetches and decodes one object field.
pub fn __from_object_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::from_value(f),
        None => T::from_missing().map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

// --- Primitive impls -----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn from_missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) => {
                        let mut it = a.iter();
                        let out = ($({
                            let _ = $n; // positional
                            $t::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                            )?
                        },)+);
                        Ok(out)
                    }
                    _ => Err(Error::custom("expected array")),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- JSON text rendering and parsing ------------------------------------

impl Value {
    /// Renders the value as compact JSON (no whitespace), with
    /// insertion-ordered object fields for byte-stable output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => write_json_f64(*f, out),
            Value::Str(s) => write_json_string(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse_json(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_json_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Bare integers like `2` must still read back as floats losslessly;
        // JSON has one number type so no suffix is needed.
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
            ("d".into(), Value::F64(1.5)),
            ("e".into(), Value::I64(-7)),
        ]);
        let s = v.to_json();
        assert_eq!(Value::parse_json(&s).unwrap(), v);
    }

    #[test]
    fn missing_option_field_is_none() {
        let v = Value::Object(vec![("x".into(), Value::U64(1))]);
        let got: Option<u64> = __from_object_field(&v, "absent").unwrap();
        assert_eq!(got, None);
    }
}
