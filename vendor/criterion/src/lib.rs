//! Offline benchmarking shim exposing the `criterion` surface this
//! workspace uses: `Criterion`, `criterion_group!` / `criterion_main!`,
//! `Bencher::iter` / `iter_batched`, and `BatchSize`. Each benchmark runs a
//! fixed warm-up plus `sample_size` timed iterations and prints the mean —
//! plain timing, no statistics, good enough to compare kernels offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim keys off `sample_size` only.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name}: no samples");
        } else {
            let total: Duration = b.samples.iter().sum();
            let mean = total / b.samples.len() as u32;
            let min = b.samples.iter().min().unwrap();
            let max = b.samples.iter().max().unwrap();
            println!(
                "{name}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
                b.samples.len()
            );
        }
        self
    }
}

/// Batch sizing hints (accepted, not differentiated).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` iterations (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group (both the list and struct forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
