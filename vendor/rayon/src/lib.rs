//! Offline subset of the `rayon` API for this workspace.
//!
//! Implements the one pattern the repository uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with genuine parallelism
//! on `std::thread::scope`, chunked over a work-stealing atomic cursor.
//! Results are returned in input order regardless of thread interleaving, so
//! callers stay deterministic. A global thread-count override is available
//! through the usual [`ThreadPoolBuilder::build_global`] entry point.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the pool will use.
pub fn current_num_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from configuring the global pool (never produced here; the
/// override is always accepted).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global pool's thread count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Installs the setting globally. Unlike upstream, repeated calls just
    /// overwrite the previous value.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Parallel-iterator entry points.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Minimal `ParallelIterator` marker so `use rayon::prelude::*` call sites
/// that name the trait keep compiling.
pub trait ParallelIterator {}
impl<'a, T, F> ParallelIterator for ParMap<'a, T, F> {}
impl<'a, T> ParallelIterator for ParIter<'a, T> {}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map across the pool, preserving input order in the output.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Maps `items` in parallel, returning results in input order.
fn run_ordered<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(
    items: &'a [T],
    f: &F,
) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    // Chunked work stealing: chunks are claimed off an atomic cursor and the
    // (chunk index, results) pairs are re-assembled in order afterwards.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    local.push((start, items[start..end].iter().map(f).collect()));
                }
                local
            }));
        }
        for h in handles {
            pieces.extend(h.join().expect("rayon worker panicked"));
        }
    });
    pieces.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn global_override() {
        crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 2);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }
}
