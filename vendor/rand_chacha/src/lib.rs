//! Offline ChaCha-based rng for this workspace.
//!
//! Implements the real ChaCha12 block function (RFC 8439 quarter-rounds, 12
//! rounds) behind the `rand` stub's trait surface. Streams are deterministic
//! per seed and statistically strong; they are *not* guaranteed to match
//! upstream `rand_chacha` byte-for-byte, which is fine because every
//! determinism check in this repository compares run against run.

use rand::{RngCore, SeedableRng};

/// ChaCha with 12 rounds — the workspace's standard deterministic rng.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); words 14..15 are the
    /// stream nonce, fixed to zero here.
    counter: u64,
    /// Current block's output words.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONST);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        // s[14], s[15]: zero nonce.
        let input = s;
        for _ in 0..6 {
            // Two rounds (column + diagonal) per iteration → 12 rounds.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha12Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position(){
        let mut a = ChaCha12Rng::seed_from_u64(3);
        let _ = a.gen_range(0u64..1000);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_enough() {
        let mut r = ChaCha12Rng::seed_from_u64(1);
        let mut ones = 0u64;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones() as u64;
        }
        let ratio = ones as f64 / (1000.0 * 64.0);
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}
