//! Derive macros for the workspace's offline serde subset.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` against the
//! value-tree model in the vendored `serde` crate. The input grammar is
//! parsed by hand (no `syn`/`quote` in the offline container) and covers the
//! shapes this repository uses: named / tuple / unit structs, enums with
//! unit / newtype / tuple / struct variants, lifetimes and plain generics,
//! and the `transparent`, `tag`, `flatten`, `skip`, and
//! `skip_serializing_if` serde attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Trait::Serialize).parse().unwrap()
}

/// Derives `serde::Deserialize` (value-tree subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Trait::Deserialize).parse().unwrap()
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

// --- Parsed model --------------------------------------------------------

#[derive(Default, Debug)]
struct SerdeAttrs {
    transparent: bool,
    tag: Option<String>,
    flatten: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: Option<String>, // None for tuple fields
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Shape {
    Struct(Body),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Raw generic parameter list (with bounds), e.g. `'a, T: Clone`.
    generics_decl: String,
    /// Parameter names only, e.g. `'a, T`.
    generics_use: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

// --- Parser --------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    /// Consumes leading attributes, folding `#[serde(...)]` contents into
    /// the returned attribute set.
    fn attrs(&mut self) -> SerdeAttrs {
        let mut out = SerdeAttrs::default();
        while self.at_punct('#') {
            self.next(); // '#'
            if let Some(TokenTree::Group(g)) = self.next() {
                parse_attr_group(g.stream(), &mut out);
            }
        }
        out
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, …).
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or discriminant expression) up to a top-level comma,
    /// tracking `<...>` nesting.
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_attr_group(stream: TokenStream, out: &mut SerdeAttrs) {
    let mut c = Cursor::new(stream);
    // Expect: serde ( ... ) — anything else (doc, derive leftovers) ignored.
    if !c.at_ident("serde") {
        return;
    }
    c.next();
    let inner = match c.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return,
    };
    let mut ic = Cursor::new(inner);
    while let Some(t) = ic.next() {
        let key = match t {
            TokenTree::Ident(i) => i.to_string(),
            _ => continue,
        };
        let mut val = None;
        if ic.at_punct('=') {
            ic.next();
            if let Some(TokenTree::Literal(l)) = ic.next() {
                val = Some(strip_str(&l.to_string()));
            }
        }
        match key.as_str() {
            "transparent" => out.transparent = true,
            "tag" => out.tag = val,
            "flatten" => out.flatten = true,
            "skip" => out.skip = true,
            "skip_serializing_if" => out.skip_serializing_if = val,
            _ => panic!("unsupported serde attribute `{key}` (offline serde subset)"),
        }
    }
}

fn strip_str(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let attrs = c.attrs();
    c.skip_vis();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("expected struct/enum, got {t:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("expected item name, got {t:?}"),
    };

    // Generics.
    let mut generics_decl = String::new();
    let mut generics_use = String::new();
    if c.at_punct('<') {
        c.next();
        let mut depth = 1;
        let mut raw: Vec<TokenTree> = Vec::new();
        while depth > 0 {
            let t = c.next().expect("unterminated generics");
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            raw.push(t);
        }
        // Join tokens with spaces, except after `'` so lifetimes stay intact.
        let mut decl = String::new();
        for t in &raw {
            decl.push_str(&t.to_string());
            if !matches!(t, TokenTree::Punct(p) if p.as_char() == '\'') {
                decl.push(' ');
            }
        }
        generics_decl = decl.trim_end().to_string();
        generics_use = generic_param_names(&raw);
    }

    let shape = match kind.as_str() {
        "struct" => {
            match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Struct(Body::Named(parse_named_fields(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Struct(Body::Tuple(parse_tuple_fields(g.stream())))
                }
                _ => Shape::Struct(Body::Unit),
            }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body, got {t:?}"),
            };
            Shape::Enum(parse_variants(body))
        }
        k => panic!("cannot derive for `{k}`"),
    };

    Item {
        name,
        generics_decl,
        generics_use,
        attrs,
        shape,
    }
}

/// Extracts parameter names (`'a, T, N`) from a raw generic token list.
fn generic_param_names(raw: &[TokenTree]) -> String {
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    let mut at_param_start = true;
    let mut angle = 0i32;
    while i < raw.len() {
        match &raw[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start && angle == 0 => {
                if let Some(TokenTree::Ident(id)) = raw.get(i + 1) {
                    names.push(format!("'{id}"));
                }
                at_param_start = false;
            }
            TokenTree::Ident(id) if at_param_start && angle == 0 => {
                let s = id.to_string();
                if s == "const" {
                    if let Some(TokenTree::Ident(n)) = raw.get(i + 1) {
                        names.push(n.to_string());
                        i += 1;
                    }
                } else {
                    names.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        i += 1;
    }
    names.join(", ")
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            t => panic!("expected field name, got {t:?}"),
        };
        assert!(c.at_punct(':'), "expected `:` after field `{name}`");
        c.next();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        fields.push(Field {
            name: Some(name),
            attrs,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        let _attrs = c.attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _attrs = c.attrs();
        if c.peek().is_none() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            t => panic!("expected variant name, got {t:?}"),
        };
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let b = Body::Named(parse_named_fields(g.stream()));
                c.next();
                b
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let b = Body::Tuple(parse_tuple_fields(g.stream()));
                c.next();
                b
            }
            _ => Body::Unit,
        };
        // Skip an optional discriminant `= expr`.
        if c.at_punct('=') {
            c.next();
            c.skip_type();
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, body });
    }
    variants
}

// --- Code generation ------------------------------------------------------

fn impl_header(item: &Item, tr: Trait) -> String {
    let tr_path = match tr {
        Trait::Serialize => "::serde::Serialize",
        Trait::Deserialize => "::serde::Deserialize",
    };
    let decl = if item.generics_decl.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics_decl)
    };
    let args = if item.generics_use.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics_use)
    };
    format!(
        "#[automatically_derived] impl{decl} {tr_path} for {name}{args}",
        name = item.name
    )
}

fn generate(item: &Item, tr: Trait) -> String {
    let body = match (&item.shape, tr) {
        (Shape::Struct(b), Trait::Serialize) => gen_struct_ser(item, b),
        (Shape::Struct(b), Trait::Deserialize) => gen_struct_de(item, b),
        (Shape::Enum(vs), Trait::Serialize) => gen_enum_ser(item, vs),
        (Shape::Enum(vs), Trait::Deserialize) => gen_enum_de(item, vs),
    };
    let method = match tr {
        Trait::Serialize => format!("fn to_value(&self) -> ::serde::Value {{ {body} }}"),
        Trait::Deserialize => format!(
            "fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}"
        ),
    };
    format!("{} {{ {} }}", impl_header(item, tr), method)
}

/// Serialization expression for named fields, pushed onto `__obj`.
fn push_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let name = f.name.as_deref().unwrap();
        let access = format!("{access_prefix}{name}");
        if f.attrs.skip {
            continue;
        }
        if f.attrs.flatten {
            out.push_str(&format!(
                "match ::serde::Serialize::to_value(&{access}) {{ \
                   ::serde::Value::Object(__m) => __obj.extend(__m), \
                   __other => __obj.push((\"{name}\".to_string(), __other)), \
                 }} "
            ));
        } else if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!(
                "if !{pred}(&{access}) {{ \
                   __obj.push((\"{name}\".to_string(), ::serde::Serialize::to_value(&{access}))); \
                 }} "
            ));
        } else {
            out.push_str(&format!(
                "__obj.push((\"{name}\".to_string(), ::serde::Serialize::to_value(&{access}))); "
            ));
        }
    }
    out
}

fn gen_struct_ser(item: &Item, body: &Body) -> String {
    match body {
        Body::Named(fields) => {
            if item.attrs.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.attrs.skip)
                    .expect("transparent struct needs a field");
                return format!(
                    "::serde::Serialize::to_value(&self.{})",
                    f.name.as_deref().unwrap()
                );
            }
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {} ::serde::Value::Object(__obj)",
                push_named_fields(fields, "self.")
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
    }
}

fn gen_struct_de(item: &Item, body: &Body) -> String {
    let name = &item.name;
    match body {
        Body::Named(fields) => {
            if item.attrs.transparent {
                let mut inits = Vec::new();
                for f in fields {
                    let fname = f.name.as_deref().unwrap();
                    if f.attrs.skip {
                        inits.push(format!("{fname}: ::std::default::Default::default()"));
                    } else {
                        inits.push(format!("{fname}: ::serde::Deserialize::from_value(__v)?"));
                    }
                }
                return format!("Ok({name} {{ {} }})", inits.join(", "));
            }
            let mut inits = Vec::new();
            for f in fields {
                let fname = f.name.as_deref().unwrap();
                if f.attrs.skip {
                    inits.push(format!("{fname}: ::std::default::Default::default()"));
                } else if f.attrs.flatten {
                    inits.push(format!("{fname}: ::serde::Deserialize::from_value(__v)?"));
                } else {
                    inits.push(format!(
                        "{fname}: ::serde::__from_object_field(__v, \"{fname}\")?"
                    ));
                }
            }
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                           __a.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?\
                         )?"
                    )
                })
                .collect();
            format!(
                "match __v {{ ::serde::Value::Array(__a) => Ok({name}({items})), \
                   _ => Err(::serde::Error::custom(\"expected array\")) }}",
                items = items.join(", ")
            )
        }
        Body::Unit => format!("Ok({name})"),
    }
}

fn gen_enum_ser(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match (&v.body, &item.attrs.tag) {
            (Body::Unit, None) => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()), "
                ));
            }
            (Body::Unit, Some(tag)) => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::Object(vec![\
                       (\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string()))]), "
                ));
            }
            (Body::Tuple(n), None) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                       (\"{vname}\".to_string(), {inner})]), ",
                    binds.join(", ")
                ));
            }
            (Body::Named(fields), None) => {
                let binds: Vec<String> = fields
                    .iter()
                    .map(|f| f.name.clone().unwrap())
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{ \
                       let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                         ::std::vec::Vec::new(); {pushes} \
                       ::serde::Value::Object(vec![\
                         (\"{vname}\".to_string(), ::serde::Value::Object(__obj))]) }}, ",
                    binds = binds.join(", "),
                    pushes = push_named_fields(fields, "*"),
                ));
            }
            (Body::Named(fields), Some(tag)) => {
                let binds: Vec<String> = fields
                    .iter()
                    .map(|f| f.name.clone().unwrap())
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{ \
                       let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                         ::std::vec::Vec::new(); \
                       __obj.push((\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string()))); \
                       {pushes} ::serde::Value::Object(__obj) }}, ",
                    binds = binds.join(", "),
                    pushes = push_named_fields(fields, "*"),
                ));
            }
            (Body::Tuple(_), Some(_)) => {
                panic!("internally tagged tuple variants are unsupported (offline serde subset)")
            }
        }
    }
    format!("match self {{ {arms} }}")
}

fn gen_enum_de(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.attrs.tag {
        // Internally tagged: { tag: "Variant", ...fields }.
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            match &v.body {
                Body::Unit => arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}), ")),
                Body::Named(fields) => {
                    let mut inits = Vec::new();
                    for f in fields {
                        let fname = f.name.as_deref().unwrap();
                        if f.attrs.skip {
                            inits.push(format!("{fname}: ::std::default::Default::default()"));
                        } else {
                            inits.push(format!(
                                "{fname}: ::serde::__from_object_field(__v, \"{fname}\")?"
                            ));
                        }
                    }
                    arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname} {{ {} }}), ",
                        inits.join(", ")
                    ));
                }
                _ => panic!("internally tagged tuple variants are unsupported"),
            }
        }
        return format!(
            "let __tag: ::std::string::String = ::serde::__from_object_field(__v, \"{tag}\")?; \
             match __tag.as_str() {{ {arms} \
               __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}}\"))) }}"
        );
    }
    // Externally tagged.
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.body {
            Body::Unit => str_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}), ")),
            Body::Tuple(1) => obj_arms.push_str(&format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)), "
            )),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(\
                               __a.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?\
                             )?"
                        )
                    })
                    .collect();
                obj_arms.push_str(&format!(
                    "\"{vname}\" => match __inner {{ \
                       ::serde::Value::Array(__a) => Ok({name}::{vname}({items})), \
                       _ => Err(::serde::Error::custom(\"expected array\")) }}, ",
                    items = items.join(", ")
                ));
            }
            Body::Named(fields) => {
                let mut inits = Vec::new();
                for f in fields {
                    let fname = f.name.as_deref().unwrap();
                    if f.attrs.skip {
                        inits.push(format!("{fname}: ::std::default::Default::default()"));
                    } else {
                        inits.push(format!(
                            "{fname}: ::serde::__from_object_field(__inner, \"{fname}\")?"
                        ));
                    }
                }
                obj_arms.push_str(&format!(
                    "\"{vname}\" => Ok({name}::{vname} {{ {} }}), ",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{ \
           ::serde::Value::Str(__s) => match __s.as_str() {{ {str_arms} \
             __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}}\"))) }}, \
           ::serde::Value::Object(__m) if __m.len() == 1 => {{ \
             let (__k, __inner) = &__m[0]; \
             match __k.as_str() {{ {obj_arms} \
               __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}}\"))) }} }}, \
           _ => Err(::serde::Error::custom(\"expected enum representation\")) }}"
    )
}
