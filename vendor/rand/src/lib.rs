//! Offline subset of the `rand 0.8` API for this workspace.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of `rand` it actually uses: the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, uniform range sampling, [`distributions::WeightedIndex`],
//! and [`seq::SliceRandom::shuffle`]. Algorithms are self-consistent and
//! deterministic per seed (the repo's determinism tests compare run against
//! run, never against upstream rand byte streams).

/// Low-level uniformly random word source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (like upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from an rng without parameters (rand's `Standard`).
pub trait StandardDist {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty => $m:ident),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
std_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
         usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
         i64 => next_u64, isize => next_u64);

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` via 128-bit widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Distribution types (`WeightedIndex` and the `Distribution` trait).
pub mod distributions {
    use super::{Rng, RngCore};

    /// A parameterized distribution samplable with an rng.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{self:?}")
        }
    }
    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a weight table.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds from an iterator of weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: WeightLike,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = w.to_f64();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let u: f64 = super::StandardDist::sample_standard(rng) ;
            let x = u * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).unwrap())
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }

    /// Weight types accepted by [`WeightedIndex::new`].
    pub trait WeightLike {
        /// Converts to `f64`.
        fn to_f64(&self) -> f64;
    }
    macro_rules! weight_like {
        ($($t:ty),*) => {$(
            impl WeightLike for $t {
                fn to_f64(&self) -> f64 { *self as f64 }
            }
            impl WeightLike for &$t {
                fn to_f64(&self) -> f64 { **self as f64 }
            }
        )*};
    }
    weight_like!(f64, f32, u8, u16, u32, u64, usize, i32, i64);

    // Suppress an unused-import style warning for RngCore in this module.
    #[allow(unused)]
    fn _assert_traits<R: RngCore>() {}
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom`: in-place Fisher–Yates shuffle and
    /// uniform element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    #[allow(unused)]
    fn _assert_traits<R: RngCore>() {}
}

/// `rand::prelude` compatibility.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let a = r.gen_range(10u64..20);
            assert!((10..20).contains(&a));
            let b = r.gen_range(5u16..=9);
            assert!((5..=9).contains(&b));
            let c = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&c));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        use distributions::{Distribution, WeightedIndex};
        let w = [0.0f64, 1.0, 0.0];
        let d = WeightedIndex::new(w.iter()).unwrap();
        let mut r = Lcg(7);
        for _ in 0..200 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Lcg(3);
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
