//! Offline JSON facade over the workspace's vendored serde subset.
//!
//! Provides the `serde_json` API surface this repository uses:
//! [`to_string`], [`from_str`], [`Value`], and the [`json!`] macro. Output is
//! compact JSON with insertion-ordered object fields, so repeated runs of a
//! deterministic simulation export byte-identical files.

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = Value::parse_json(s)?;
    T::from_value(&v)
}

/// Builds a [`Value`] from a JSON-like literal. Covers the object / array /
/// expression forms used in this workspace (values may be any serializable
/// expression; nested braces are not supported).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $v:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from_serialize(&$v) ),* ])
    };
    ({ $( $k:literal : $v:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($k.to_string(), $crate::Value::from_serialize(&$v)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from_serialize(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_object() {
        let v = json!({ "a": 1u64, "b": 2.5f64 });
        assert_eq!(v.to_json(), r#"{"a":1,"b":2.5}"#);
    }
}
