//! Offline subset of `proptest` for this workspace.
//!
//! Supports the property-test surface this repository uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), integer / float
//! range strategies, `any::<T>()`, tuple strategies,
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Cases are sampled from a rng seeded
//! deterministically from the test name; failing inputs are printed but not
//! shrunk (upstream proptest shrinks; this subset favors simplicity).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Runner configuration (subset: `cases`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Accepted for compatibility; rejection is cheap here so the bound is
    /// generous.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Deterministic per-test rng (seeded from the test path, never from time).
pub fn __rng_for(name: &str) -> ChaCha12Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(h)
}

/// A source of sampled values.
pub trait Strategy {
    /// The sampled type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut ChaCha12Rng) -> Self::Value;
}

/// Helper used by the [`proptest!`] expansion.
pub fn sample_once<S: Strategy>(s: &S, rng: &mut ChaCha12Rng) -> S::Value {
    s.sample(rng)
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha12Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha12Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut ChaCha12Rng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
strategy_for_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut ChaCha12Rng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full value domain of `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut ChaCha12Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitives with a whole-domain strategy.
pub trait ArbitraryPrim: std::fmt::Debug {
    /// Draws from the full domain.
    fn arbitrary(rng: &mut ChaCha12Rng) -> Self;
}

macro_rules! arb_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut ChaCha12Rng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Collection strategies.
pub mod collection {
    use super::{ChaCha12Rng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut ChaCha12Rng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(16).max(__config.max_global_rejects)
                {
                    panic!("proptest: too many rejected cases");
                }
                let ($($arg,)+) = ($($crate::sample_once(&($strat), &mut __rng),)+);
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed: {}", __msg);
                    }
                }
            }
        }
    )*};
    // With an explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without a config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property (records the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        fn ranges_hold(a in 3u64..10, b in 0u8..=4, f in 0f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        fn vec_and_tuples(v in crate::collection::vec((1u16..6, 0u64..400), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (x, y) in &v {
                prop_assert!((1..6).contains(x));
                prop_assert!(*y < 400);
            }
        }

        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
