//! Overload-run determinism: same-seed invocations of the three-arm
//! flash-crowd sweep must export byte-identical `metrics.jsonl`,
//! `series.jsonl`, and `trace.jsonl` telemetry dumps — across reruns AND
//! across worker-thread counts (1/2/8), since the arrival schedules are
//! generated on the worker pool. Only the wall-clock `profile.jsonl` is
//! exempt.
//!
//! This extends the byte-identity guarantee across the whole overload
//! plane: token-bucket admission, priority-queue eviction order, brownout
//! hysteresis transitions, circuit-breaker state, the resolver's busy
//! backoff, and the per-tick aggregated shed traces.

use std::fs;
use std::path::PathBuf;

use scion_core::experiments::run_overload_with;
use scion_core::prelude::*;

fn dump_one_overload_run(tag: &str, threads: usize) -> PathBuf {
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let r = run_overload_with(ExperimentScale::Tiny, Some(7), threads, &mut tel);
    assert_eq!(r.points.len(), 5);
    for point in &r.points {
        assert_eq!(point.arms.len(), 3);
        for arm in &point.arms {
            assert!(
                arm.offered > 0,
                "{} at {}: nothing offered",
                arm.name,
                point.load_permille
            );
        }
    }

    let dir = std::env::temp_dir().join(format!(
        "scion-overload-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

#[test]
fn same_seed_overload_runs_export_identical_dumps() {
    let a = dump_one_overload_run("a", 2);
    let b = dump_one_overload_run("b", 2);
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(a.join(name)).unwrap();
        let fb = fs::read(b.join(name)).unwrap();
        assert_eq!(fa, fb, "{name} differs between same-seed overload runs");
    }
    assert!(!fs::read(a.join("metrics.jsonl")).unwrap().is_empty());
    // profile.jsonl exists but records real elapsed time, so it is
    // exempt from byte equality.
    assert!(a.join("profile.jsonl").exists());
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}

#[test]
fn overload_dumps_are_identical_across_thread_counts() {
    let one = dump_one_overload_run("t1", 1);
    let two = dump_one_overload_run("t2", 2);
    let eight = dump_one_overload_run("t8", 8);
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let f1 = fs::read(one.join(name)).unwrap();
        let f2 = fs::read(two.join(name)).unwrap();
        let f8 = fs::read(eight.join(name)).unwrap();
        assert_eq!(f1, f2, "{name} differs between 1 and 2 worker threads");
        assert_eq!(f1, f8, "{name} differs between 1 and 8 worker threads");
    }
    for dir in [one, two, eight] {
        fs::remove_dir_all(&dir).ok();
    }
}
