//! Telemetry determinism: two runs of the same seeded simulation must
//! export byte-identical `metrics.jsonl`, `series.jsonl`, and
//! `trace.jsonl` dumps. Only `profile.jsonl` — the wall-clock phase
//! profile — is allowed to differ between runs.
//!
//! This is the end-to-end guarantee the registry's `BTreeMap` keying, the
//! engine's `(time, seq)` event ordering, and the timer-driven sampler
//! are designed to provide; see `crates/telemetry/src/metrics.rs`.

use std::fs;
use std::path::PathBuf;

use scion_core::beaconing::{run_core_beaconing_chaos, run_core_beaconing_windowed_telemetry};
use scion_core::chaos::{ChaosConfig, ChurnModel};
use scion_core::prelude::*;
use scion_core::topology::isd::assign_isds;

fn dump_one_run(tag: &str) -> PathBuf {
    let topo = generate_internet(&GeneratorConfig::small(60, 42));
    let (mut core, _) = prune_to_top_degree(&topo, 12);
    assign_isds(&mut core, 4);

    let mut tel = Telemetry::new(TelemetryConfig::default());
    tel.begin_run("determinism");
    let out = run_core_beaconing_windowed_telemetry(
        &core,
        &BeaconingConfig::diversity(),
        Duration::from_mins(30),
        Duration::from_hours(1),
        7,
        &mut tel,
    );
    assert!(out.total_bytes() > 0);
    assert!(!tel.series.is_empty(), "sampler never fired");
    assert!(tel.traces.emitted() > 0, "no trace records");

    let dir = std::env::temp_dir().join(format!(
        "scion-telemetry-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

fn dump_one_churned_run(tag: &str) -> PathBuf {
    let topo = generate_internet(&GeneratorConfig::small(60, 42));
    let (mut core, _) = prune_to_top_degree(&topo, 12);
    assign_isds(&mut core, 4);

    let window = Duration::from_hours(1);
    let schedule = ChurnModel::scaled(window).generate(&core, window, 7);
    assert!(!schedule.is_empty(), "an hour of churn produces events");
    let pairs: Vec<(AsIndex, AsIndex)> = {
        let cores: Vec<AsIndex> = core.core_ases().collect();
        cores
            .iter()
            .flat_map(|&o| cores.iter().map(move |&h| (o, h)))
            .filter(|&(o, h)| o != h)
            .take(20)
            .collect()
    };
    let chaos = ChaosConfig {
        schedule: &schedule,
        probe_pairs: &pairs,
        probe_cadence: Duration::from_mins(5),
    };

    let mut tel = Telemetry::new(TelemetryConfig::default());
    tel.begin_run("churned");
    let (out, report) = run_core_beaconing_chaos(
        &core,
        &BeaconingConfig::diversity(),
        Duration::ZERO,
        window,
        7,
        &chaos,
        &mut tel,
    );
    assert!(out.total_bytes() > 0);
    assert!(!report.probes.is_empty(), "probes never fired");
    assert!(report.fault_events_applied > 0, "churn never applied");

    let dir = std::env::temp_dir().join(format!(
        "scion-telemetry-churn-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

#[test]
fn same_seed_runs_export_identical_dumps() {
    let a = dump_one_run("a");
    let b = dump_one_run("b");
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(a.join(name)).unwrap();
        let fb = fs::read(b.join(name)).unwrap();
        assert!(!fa.is_empty(), "{name} is empty");
        assert_eq!(fa, fb, "{name} differs between same-seed runs");
    }
    // profile.jsonl exists in both dumps but is exempt from the
    // byte-equality guarantee (it records real elapsed time).
    assert!(a.join("profile.jsonl").exists());
    assert!(b.join("profile.jsonl").exists());
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}

#[test]
fn same_seed_churned_runs_export_identical_dumps() {
    // The chaos layer (seeded churn schedule, fault timers, in-flight
    // cancellation, reachability probes) must preserve the byte-identity
    // guarantee end to end.
    let a = dump_one_churned_run("a");
    let b = dump_one_churned_run("b");
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(a.join(name)).unwrap();
        let fb = fs::read(b.join(name)).unwrap();
        assert!(!fa.is_empty(), "{name} is empty");
        assert_eq!(fa, fb, "{name} differs between same-seed churned runs");
    }
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}
