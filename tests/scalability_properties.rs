//! Scalability properties from §4.1, asserted on real simulation runs:
//! the k·n per-interface bound of core beaconing, the locality of
//! intra-ISD beaconing, and the diversity algorithm's overhead reduction.

use scion_core::prelude::*;
use scion_core::topology::isd::assign_isds;

fn core_world(num_ases: usize, num_core: usize, seed: u64) -> AsTopology {
    let internet = generate_internet(&GeneratorConfig::small(num_ases, seed));
    let (mut core, _) = prune_to_top_degree(&internet, num_core);
    assign_isds(&mut core, 4);
    core
}

#[test]
fn core_beaconing_respects_the_kn_interface_bound() {
    // §4.1: "propagating at most a constant threshold k PCBs per origin AS
    // in each beaconing interval results in at most k·n PCBs being sent on
    // each interface" — n origins, k = dissemination limit.
    let core = core_world(150, 12, 5);
    let cfg = BeaconingConfig::default();
    let intervals = 6u64;
    let duration = Duration::from_mins(10) * intervals;
    let out = run_core_beaconing(&core, &cfg, duration, 5);

    let n = core.num_ases() as u64;
    let k = cfg.dissemination_limit as u64;
    for ((as_idx, ifid), counter) in out.traffic.per_interface() {
        assert!(
            counter.messages <= k * n * intervals,
            "interface {as_idx:?}#{ifid} sent {} messages, bound is {}",
            counter.messages,
            k * n * intervals
        );
    }
}

#[test]
fn intra_isd_overhead_is_independent_of_other_isds() {
    // §4.1: "the number of PCBs received by non-core ASes in an ISD only
    // depends on the topology of that ISD, regardless of the size and
    // topology of the entire network." Build one ISD, then embed the
    // identical ISD inside a world with a second, larger ISD: per-AS
    // intra-ISD traffic of the first ISD must be identical.
    let build = |with_second_isd: bool| -> (AsTopology, Vec<IsdAsn>) {
        let mut topo = AsTopology::new();
        let core1 = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(1)));
        topo.set_core(core1, true);
        let mut members = vec![];
        let mut tier2 = vec![];
        for n in 0..3u64 {
            let mid = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(10 + n)));
            topo.add_link(core1, mid, Relationship::AProviderOfB);
            tier2.push(mid);
            members.push(IsdAsn::new(Isd(1), Asn::from_u64(10 + n)));
        }
        for n in 0..6u64 {
            let leaf = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(20 + n)));
            topo.add_link(tier2[(n % 3) as usize], leaf, Relationship::AProviderOfB);
            members.push(IsdAsn::new(Isd(1), Asn::from_u64(20 + n)));
        }
        if with_second_isd {
            let core2 = topo.add_as(IsdAsn::new(Isd(2), Asn::from_u64(1)));
            topo.set_core(core2, true);
            topo.add_link(core1, core2, Relationship::PeerToPeer);
            for n in 0..12u64 {
                let leaf = topo.add_as(IsdAsn::new(Isd(2), Asn::from_u64(10 + n)));
                topo.add_link(core2, leaf, Relationship::AProviderOfB);
            }
        }
        (topo, members)
    };

    let cfg = BeaconingConfig::default();
    let duration = Duration::from_hours(1);
    let (solo, members) = build(false);
    let (embedded, _) = build(true);
    let out_solo = run_intra_isd_beaconing(&solo, &cfg, duration, 9);
    let out_embedded = run_intra_isd_beaconing(&embedded, &cfg, duration, 9);

    for ia in members {
        let a = solo.by_address(ia).unwrap();
        let b = embedded.by_address(ia).unwrap();
        assert_eq!(
            out_solo.traffic.node_total(a).messages,
            out_embedded.traffic.node_total(b).messages,
            "ISD-1 member {ia} traffic changed when another ISD was added"
        );
    }
}

#[test]
fn diversity_reduces_overhead_by_a_large_factor_over_a_lifetime() {
    // The §5.2 headline at miniature scale: over a full PCB lifetime of
    // intervals, the diversity algorithm's total beaconing bytes are a
    // small fraction of the baseline's on the same topology.
    let core = core_world(150, 12, 7);
    let cfg_base = BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        ..BeaconingConfig::default()
    };
    let cfg_div = BeaconingConfig {
        algorithm: Algorithm::Diversity(DiversityParams::default()),
        ..cfg_base
    };
    let duration = Duration::from_secs(5400); // 1.5 lifetimes
    let base = run_core_beaconing(&core, &cfg_base, duration, 7);
    let div = run_core_beaconing(&core, &cfg_div, duration, 7);
    let ratio = base.total_bytes() as f64 / div.total_bytes() as f64;
    assert!(
        ratio > 4.0,
        "expected a large reduction, got only {ratio:.1}x ({} vs {})",
        base.total_bytes(),
        div.total_bytes()
    );
}

#[test]
fn diversity_reduction_is_robust_across_core_sizes() {
    // The overhead reduction is not an artifact of one topology size: at
    // both core sizes the baseline costs several times more. (The gap
    // keeps growing toward the paper's two orders of magnitude at the
    // 2000-core scale; at miniature scale we assert the floor.)
    let duration = Duration::from_secs(3600);
    let cadence = |alg| BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        algorithm: alg,
        ..BeaconingConfig::default()
    };
    for num_core in [8usize, 16] {
        let core = core_world(160, num_core, 3);
        let base = run_core_beaconing(&core, &cadence(Algorithm::Baseline), duration, 3);
        let div = run_core_beaconing(
            &core,
            &cadence(Algorithm::Diversity(DiversityParams::default())),
            duration,
            3,
        );
        let ratio = base.total_bytes() as f64 / div.total_bytes() as f64;
        assert!(
            ratio > 4.0,
            "reduction at {num_core} cores only {ratio:.1}x"
        );
    }
}
