//! Property-based invariants of the path-quality pipeline on randomized
//! topologies: disseminated quality never exceeds the optimum, runs are
//! deterministic, and more storage never hurts the diversity algorithm.

use proptest::prelude::*;

use scion_core::analysis::quality::{optimum_quality, pair_quality};
use scion_core::beaconing::paths::known_paths;
use scion_core::prelude::*;
use scion_core::topology::isd::assign_isds;

fn quality_sum(
    core: &AsTopology,
    cfg: &BeaconingConfig,
    duration: Duration,
    seed: u64,
) -> (u64, u64) {
    let out = run_core_beaconing(core, cfg, duration, seed);
    let now = SimTime::ZERO + duration;
    let cores: Vec<AsIndex> = core.core_ases().collect();
    let links = core.core_links();
    let mut achieved = 0;
    let mut optimum = 0;
    for &origin in &cores {
        for &holder in &cores {
            if origin == holder {
                continue;
            }
            optimum += optimum_quality(core, &links, origin, holder).value;
            let srv = out.server(holder).expect("core AS");
            let paths = known_paths(core, srv, core.node(origin).ia, now);
            achieved += pair_quality(core, &paths, origin, holder).value;
        }
    }
    (achieved, optimum)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs several full simulations
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_quality_never_exceeds_optimum(seed in 0u64..1000, num_core in 6usize..12) {
        let internet = generate_internet(&GeneratorConfig::small(80, seed));
        let (mut core, _) = prune_to_top_degree(&internet, num_core);
        assign_isds(&mut core, 4);
        let cfg = BeaconingConfig {
            interval: Duration::from_secs(100),
            pcb_lifetime: Duration::from_secs(3600),
            ..BeaconingConfig::diversity()
        };
        let (achieved, optimum) = quality_sum(&core, &cfg, Duration::from_secs(3600), seed);
        prop_assert!(achieved <= optimum, "achieved {achieved} > optimum {optimum}");
        prop_assert!(achieved > 0, "diversity must find some paths");
    }

    #[test]
    fn prop_runs_are_deterministic(seed in 0u64..1000) {
        let internet = generate_internet(&GeneratorConfig::small(60, seed));
        let (mut core, _) = prune_to_top_degree(&internet, 8);
        assign_isds(&mut core, 4);
        let cfg = BeaconingConfig {
            interval: Duration::from_secs(100),
            pcb_lifetime: Duration::from_secs(3600),
            ..BeaconingConfig::diversity()
        };
        let a = run_core_beaconing(&core, &cfg, Duration::from_secs(1800), seed);
        let b = run_core_beaconing(&core, &cfg, Duration::from_secs(1800), seed);
        prop_assert_eq!(a.total_bytes(), b.total_bytes());
        prop_assert_eq!(a.beacons_delivered, b.beacons_delivered);
        prop_assert_eq!(a.traffic.per_interface(), b.traffic.per_interface());
    }
}

#[test]
fn more_storage_weakly_improves_diversity_quality() {
    let internet = generate_internet(&GeneratorConfig::small(120, 31));
    let (mut core, _) = prune_to_top_degree(&internet, 10);
    assign_isds(&mut core, 5);
    let duration = Duration::from_secs(3600);
    let mut prev = 0u64;
    for storage in [5usize, 15, 60] {
        let cfg = BeaconingConfig {
            interval: Duration::from_secs(100),
            pcb_lifetime: Duration::from_secs(3600),
            storage_limit: Some(storage),
            ..BeaconingConfig::diversity()
        };
        let (achieved, _) = quality_sum(&core, &cfg, duration, 31);
        assert!(
            achieved + achieved / 10 >= prev,
            "storage {storage} dropped quality: {achieved} vs previous {prev}"
        );
        prev = prev.max(achieved);
    }
}

#[test]
fn baseline_and_diversity_both_reach_full_coverage() {
    let internet = generate_internet(&GeneratorConfig::small(100, 13));
    let (mut core, _) = prune_to_top_degree(&internet, 10);
    assign_isds(&mut core, 5);
    let duration = Duration::from_secs(3600);
    for cfg in [
        BeaconingConfig {
            interval: Duration::from_secs(100),
            pcb_lifetime: Duration::from_secs(3600),
            ..BeaconingConfig::default()
        },
        BeaconingConfig {
            interval: Duration::from_secs(100),
            pcb_lifetime: Duration::from_secs(3600),
            ..BeaconingConfig::diversity()
        },
    ] {
        let out = run_core_beaconing(&core, &cfg, duration, 13);
        let now = SimTime::ZERO + duration;
        for origin in core.core_ases() {
            for holder in core.core_ases() {
                if origin == holder {
                    continue;
                }
                let srv = out.server(holder).unwrap();
                assert!(
                    !srv.store().beacons_of(core.node(origin).ia, now).is_empty(),
                    "{:?}: no live path {} -> {}",
                    cfg.algorithm,
                    core.node(origin).ia,
                    core.node(holder).ia
                );
            }
        }
    }
}
