//! Parallel-driver determinism: the sharded beaconing driver must export
//! **byte-identical** telemetry dumps for the same seed at *every*
//! worker-thread count. Only `profile.jsonl` — the wall-clock phase
//! profile — is allowed to differ.
//!
//! This is the tentpole guarantee of the parallel execution layer: the
//! causally-closed window pop, the order-preserving shard stage
//! (`WorkerPool::run_ordered`), and the serial pop-order merge together
//! make thread count an implementation detail invisible to every
//! deterministic output. See `crates/beaconing/src/parallel.rs`.

use std::fs;
use std::path::{Path, PathBuf};

use scion_core::beaconing::{
    run_core_beaconing_parallel, run_core_beaconing_parallel_lossy, LossyConfig,
};
use scion_core::prelude::*;
use scion_core::topology::isd::assign_isds;

fn test_topology() -> AsTopology {
    let topo = generate_internet(&GeneratorConfig::small(60, 42));
    let (mut core, _) = prune_to_top_degree(&topo, 12);
    assign_isds(&mut core, 4);
    core
}

fn dump_parallel_run(tag: &str, threads: usize) -> PathBuf {
    let core = test_topology();
    let mut tel = Telemetry::new(TelemetryConfig::default());
    tel.begin_run("parallel");
    let out = run_core_beaconing_parallel(
        &core,
        &BeaconingConfig::diversity(),
        Duration::from_mins(30),
        Duration::from_hours(1),
        7,
        threads,
        &mut tel,
    );
    assert!(out.total_bytes() > 0);
    assert!(!tel.series.is_empty(), "sampler never fired");
    assert!(tel.traces.emitted() > 0, "no trace records");

    let dir = std::env::temp_dir().join(format!(
        "scion-parallel-determinism-{tag}-t{threads}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

fn dump_parallel_lossy_run(tag: &str, threads: usize) -> PathBuf {
    let core = test_topology();
    let mut tel = Telemetry::new(TelemetryConfig::default());
    tel.begin_run("parallel_lossy");
    let (out, _, loss_rep) = run_core_beaconing_parallel_lossy(
        &core,
        &BeaconingConfig::diversity(),
        Duration::ZERO,
        Duration::from_hours(1),
        7,
        threads,
        &LossyConfig::reliable(0.1),
        None,
        &mut tel,
    );
    assert!(out.total_bytes() > 0);
    assert!(loss_rep.messages_lost > 0, "10% loss must drop something");

    let dir = std::env::temp_dir().join(format!(
        "scion-parallel-lossy-determinism-{tag}-t{threads}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

fn assert_dumps_identical(reference: &Path, other: &Path, what: &str) {
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(reference.join(name)).unwrap();
        let fb = fs::read(other.join(name)).unwrap();
        assert!(!fa.is_empty(), "{name} is empty");
        assert_eq!(fa, fb, "{name} differs: {what}");
    }
    // profile.jsonl exists but is exempt (it records real elapsed time).
    assert!(reference.join("profile.jsonl").exists());
    assert!(other.join("profile.jsonl").exists());
}

#[test]
fn thread_count_does_not_change_telemetry_dumps() {
    let reference = dump_parallel_run("ref", 1);
    for threads in [2, 8] {
        let other = dump_parallel_run("other", threads);
        assert_dumps_identical(
            &reference,
            &other,
            &format!("threads=1 vs threads={threads}"),
        );
        fs::remove_dir_all(&other).ok();
    }
    fs::remove_dir_all(&reference).ok();
}

#[test]
fn thread_count_does_not_change_lossy_telemetry_dumps() {
    // The stochastic planes (loss coins, jitter, retransmit backoff) draw
    // in the serial merge, so even a lossy reliable run must stay
    // byte-identical across thread counts.
    let reference = dump_parallel_lossy_run("ref", 1);
    for threads in [2, 8] {
        let other = dump_parallel_lossy_run("other", threads);
        assert_dumps_identical(
            &reference,
            &other,
            &format!("lossy threads=1 vs threads={threads}"),
        );
        fs::remove_dir_all(&other).ok();
    }
    fs::remove_dir_all(&reference).ok();
}

#[test]
fn same_seed_same_thread_count_is_reproducible() {
    let a = dump_parallel_run("repro-a", 4);
    let b = dump_parallel_run("repro-b", 4);
    assert_dumps_identical(&a, &b, "two identical threads=4 runs");
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}
