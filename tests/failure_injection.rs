//! Failure-injection integration tests: link failures, revocation at path
//! servers, SCMP-driven failover, and beacon-expiry behaviour.

use scion_core::beaconing::paths::known_paths;
use scion_core::crypto::trc::TrustStore;
use scion_core::pathserver::ledger::{Component, Ledger, Scope};
use scion_core::pathserver::revocation::{revoke_segments, segment_uses_link};
use scion_core::pathserver::server::PathServer;
use scion_core::prelude::*;
use scion_core::types::LinkId;

/// One core providing to two dual-homed leaves.
fn dual_homed_world() -> AsTopology {
    let mut topo = AsTopology::new();
    let core = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(1)));
    topo.set_core(core, true);
    for n in [10u64, 11] {
        let leaf = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(n)));
        topo.add_link(core, leaf, Relationship::AProviderOfB);
        topo.add_link(core, leaf, Relationship::AProviderOfB);
    }
    topo
}

fn segments_for(
    topo: &AsTopology,
    leaf_ia: IsdAsn,
    duration: Duration,
    seed: u64,
) -> (Vec<PathSegment>, TrustStore) {
    let now = SimTime::ZERO + duration;
    let trust = TrustStore::bootstrap(
        topo.as_indices()
            .map(|i| (topo.node(i).ia, topo.node(i).core)),
        now + Duration::from_days(1),
    );
    let out = run_intra_isd_beaconing(topo, &BeaconingConfig::default(), duration, seed);
    let leaf = topo.by_address(leaf_ia).unwrap();
    let srv = out.server(leaf).unwrap();
    let core_ia = IsdAsn::new(Isd(1), Asn::from_u64(1));
    let segs = srv
        .store()
        .beacons_of(core_ia, now)
        .into_iter()
        .map(|b| {
            let pcb = b
                .pcb
                .extend(leaf_ia, b.ingress_if, IfId::NONE, vec![], &trust);
            PathSegment::from_terminated_pcb(SegmentType::Down, pcb)
        })
        .collect();
    (segs, trust)
}

#[test]
fn failover_survives_single_link_failure_on_dual_homed_leaf() {
    let topo = dual_homed_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
    let (segs, _) = segments_for(&topo, leaf_ia, duration, 1);
    assert!(segs.len() >= 2, "dual-homing yields >= 2 down-segments");

    let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
    for s in &segs {
        ps.register_down_segment(s.clone());
    }

    // Fail the link used by the first segment.
    let (a, b) = segs[0].links()[0];
    let failed = LinkId::new(a, b);
    let mut ledger = Ledger::new();
    let rev = revoke_segments(&mut ps, failed, 3, &mut ledger, now);
    assert!(rev.segments_revoked >= 1);

    // Remaining segments avoid the failed link, and at least one survives.
    let remaining = ps.lookup_down(leaf_ia, now);
    assert!(!remaining.is_empty(), "dual-homed leaf stays reachable");
    for s in &remaining {
        assert!(!segment_uses_link(s, failed));
    }

    // Accounting matches §4.1: one intra-ISD revocation plus per-flow
    // global SCMP notifications.
    assert_eq!(
        ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
        1
    );
    assert_eq!(
        ledger.messages_at(Component::PathRevocation, Scope::Global),
        3
    );
}

#[test]
fn double_failure_disconnects_exactly_at_the_min_cut() {
    let topo = dual_homed_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
    let (segs, _) = segments_for(&topo, leaf_ia, duration, 2);

    let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
    for s in &segs {
        ps.register_down_segment(s.clone());
    }
    // The leaf's min cut is 2 (its two parallel links). Fail both.
    let leaf = topo.by_address(leaf_ia).unwrap();
    let mut ledger = Ledger::new();
    for li in topo.node(leaf).links.clone() {
        let failed = topo.link_id(li);
        revoke_segments(&mut ps, failed, 0, &mut ledger, now);
    }
    assert!(
        ps.lookup_down(leaf_ia, now).is_empty(),
        "failing the whole min cut must disconnect"
    );
    // The other leaf is untouched.
    let other = IsdAsn::new(Isd(1), Asn::from_u64(11));
    let (other_segs, _) = segments_for(&topo, other, duration, 2);
    assert!(!other_segs.is_empty());
}

#[test]
fn beacons_expire_without_refresh() {
    // Run beaconing for half a lifetime, then check that every stored
    // beacon is gone one lifetime after the run stopped (nothing
    // refreshes once the simulation ends).
    let topo = dual_homed_world();
    let cfg = BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        ..BeaconingConfig::default()
    };
    let out = run_intra_isd_beaconing(&topo, &cfg, Duration::from_secs(1800), 3);
    let leaf = topo
        .by_address(IsdAsn::new(Isd(1), Asn::from_u64(10)))
        .unwrap();
    let srv = out.server(leaf).unwrap();
    let core_ia = IsdAsn::new(Isd(1), Asn::from_u64(1));

    let mid = SimTime::ZERO + Duration::from_secs(1800);
    assert!(!srv.store().beacons_of(core_ia, mid).is_empty());
    let after = SimTime::ZERO + Duration::from_secs(1800 + 3600);
    assert!(
        srv.store().beacons_of(core_ia, after).is_empty(),
        "all beacons must be expired one lifetime later"
    );
}

#[test]
fn diversity_keeps_connectivity_across_many_lifetimes() {
    // The connectivity objective (§4.2): even with aggressive resend
    // suppression, every pair must hold a *valid* path at the end of a
    // long run spanning several PCB lifetimes.
    let internet = generate_internet(&GeneratorConfig::small(80, 17));
    let (mut core, _) = prune_to_top_degree(&internet, 8);
    scion_core::topology::isd::assign_isds(&mut core, 4);
    let cfg = BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        ..BeaconingConfig::diversity()
    };
    let duration = Duration::from_secs(4 * 3600); // 4 lifetimes
    let out = run_core_beaconing(&core, &cfg, duration, 17);
    let now = SimTime::ZERO + duration;
    for origin in core.core_ases() {
        for holder in core.core_ases() {
            if origin == holder {
                continue;
            }
            let srv = out.server(holder).unwrap();
            let paths = known_paths(&core, srv, core.node(origin).ia, now);
            assert!(
                !paths.is_empty(),
                "connectivity lost {} -> {} after 4 lifetimes",
                core.node(origin).ia,
                core.node(holder).ia
            );
        }
    }
}
