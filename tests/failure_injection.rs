//! Failure-injection integration tests: link failures, revocation at path
//! servers, SCMP-driven failover, beacon-expiry behaviour, and scripted
//! chaos runs through the beaconing driver.
//!
//! The dual-homed fixture world and its beaconing → segment plumbing live
//! in `scion_chaos::testkit`, shared with the chaos crate's unit tests and
//! the resilience experiment.

use scion_core::beaconing::driver::run_intra_isd_beaconing_chaos;
use scion_core::beaconing::paths::known_paths;
use scion_core::beaconing::ChaosConfig;
use scion_core::chaos::testkit::{dual_homed_world, register_down_segments, segments_for};
use scion_core::chaos::Script;
use scion_core::pathserver::ledger::{Component, Ledger, Scope};
use scion_core::pathserver::revocation::{revoke_segments, segment_uses_link};
use scion_core::pathserver::server::PathServer;
use scion_core::prelude::*;
use scion_core::types::LinkId;

#[test]
fn failover_survives_single_link_failure_on_dual_homed_leaf() {
    let topo = dual_homed_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
    let (segs, _) = segments_for(&topo, leaf_ia, duration, 1);
    assert!(segs.len() >= 2, "dual-homing yields >= 2 down-segments");

    let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
    register_down_segments(&mut ps, &segs);

    // Fail the link used by the first segment.
    let (a, b) = segs[0].links()[0];
    let failed = LinkId::new(a, b);
    let mut ledger = Ledger::new();
    let rev = revoke_segments(&mut ps, failed, 3, &mut ledger, now);
    assert!(rev.segments_revoked >= 1);

    // Remaining segments avoid the failed link, and at least one survives.
    let remaining = ps
        .lookup_down(leaf_ia, now)
        .expect("core server answers down-segment lookups");
    assert!(!remaining.is_empty(), "dual-homed leaf stays reachable");
    for s in &remaining {
        assert!(!segment_uses_link(s, failed));
    }

    // Accounting matches §4.1: one intra-ISD revocation plus per-flow
    // global SCMP notifications.
    assert_eq!(
        ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
        1
    );
    assert_eq!(
        ledger.messages_at(Component::PathRevocation, Scope::Global),
        3
    );
}

#[test]
fn double_failure_disconnects_exactly_at_the_min_cut() {
    let topo = dual_homed_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
    let (segs, _) = segments_for(&topo, leaf_ia, duration, 2);

    let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
    register_down_segments(&mut ps, &segs);
    // The leaf's min cut is 2 (its two parallel links). Fail both.
    let leaf = topo.by_address(leaf_ia).unwrap();
    let mut ledger = Ledger::new();
    for li in topo.node(leaf).links.clone() {
        let failed = topo.link_id(li);
        revoke_segments(&mut ps, failed, 0, &mut ledger, now);
    }
    assert!(
        ps.lookup_down(leaf_ia, now)
            .expect("core server answers down-segment lookups")
            .is_empty(),
        "failing the whole min cut must disconnect"
    );
    // The other leaf is untouched.
    let other = IsdAsn::new(Isd(1), Asn::from_u64(11));
    let (other_segs, _) = segments_for(&topo, other, duration, 2);
    assert!(!other_segs.is_empty());
}

#[test]
fn beacons_expire_without_refresh() {
    // Run beaconing for half a lifetime, then check that every stored
    // beacon is gone one lifetime after the run stopped (nothing
    // refreshes once the simulation ends).
    let topo = dual_homed_world();
    let cfg = BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        ..BeaconingConfig::default()
    };
    let out = run_intra_isd_beaconing(&topo, &cfg, Duration::from_secs(1800), 3);
    let leaf = topo
        .by_address(IsdAsn::new(Isd(1), Asn::from_u64(10)))
        .unwrap();
    let srv = out.server(leaf).unwrap();
    let core_ia = IsdAsn::new(Isd(1), Asn::from_u64(1));

    let mid = SimTime::ZERO + Duration::from_secs(1800);
    assert!(!srv.store().beacons_of(core_ia, mid).is_empty());
    let after = SimTime::ZERO + Duration::from_secs(1800 + 3600);
    assert!(
        srv.store().beacons_of(core_ia, after).is_empty(),
        "all beacons must be expired one lifetime later"
    );
}

#[test]
fn scripted_outage_respects_the_dual_homed_min_cut() {
    // End-to-end chaos run: a scripted outage of ONE of the leaf's two
    // parallel links must not dent reachability (failover to the sibling
    // link), while an overlapping outage of BOTH — the min cut — must.
    let topo = dual_homed_world();
    let core = topo
        .by_address(IsdAsn::new(Isd(1), Asn::from_u64(1)))
        .unwrap();
    let leaf = topo
        .by_address(IsdAsn::new(Isd(1), Asn::from_u64(10)))
        .unwrap();
    let links = topo.links_between(core, leaf);
    assert_eq!(links.len(), 2);
    let t = |s: u64| SimTime::ZERO + Duration::from_secs(s);

    let pairs = vec![(core, leaf)];
    let cfg = BeaconingConfig {
        interval: Duration::from_secs(100),
        ..BeaconingConfig::default()
    };
    let run = |script: scion_core::chaos::Script| {
        let schedule = script.build();
        let chaos = ChaosConfig {
            schedule: &schedule,
            probe_pairs: &pairs,
            probe_cadence: Duration::from_secs(100),
        };
        let (_, report) = run_intra_isd_beaconing_chaos(
            &topo,
            &cfg,
            Duration::ZERO,
            Duration::from_secs(6000),
            1,
            &chaos,
            &mut scion_core::telemetry::Telemetry::disabled(),
        );
        report
    };

    // Single-link outage: the sibling link keeps the pair live throughout.
    let single = run(Script::new().link_outage(links[0], t(2000), t(4000)));
    assert_eq!(single.fault_events_applied, 2);
    assert!(
        single
            .probes
            .iter()
            .filter(|p| p.t >= t(1000))
            .all(|p| p.fraction() == 1.0),
        "dual-homing must mask a single-link outage"
    );

    // Min-cut outage: both links down in an overlapping window.
    let both = run(Script::new()
        .link_outage(links[0], t(2000), t(4000))
        .link_outage(links[1], t(2500), t(3500)));
    let during = both
        .probes
        .iter()
        .filter(|p| p.t > t(2500) && p.t < t(3500))
        .map(|p| p.fraction())
        .fold(1.0, f64::min);
    assert_eq!(during, 0.0, "failing the whole min cut must disconnect");
    assert_eq!(
        both.probes.last().unwrap().fraction(),
        1.0,
        "reachability recovers after both links return"
    );
}

#[test]
fn diversity_keeps_connectivity_across_many_lifetimes() {
    // The connectivity objective (§4.2): even with aggressive resend
    // suppression, every pair must hold a *valid* path at the end of a
    // long run spanning several PCB lifetimes.
    let internet = generate_internet(&GeneratorConfig::small(80, 17));
    let (mut core, _) = prune_to_top_degree(&internet, 8);
    scion_core::topology::isd::assign_isds(&mut core, 4);
    let cfg = BeaconingConfig {
        interval: Duration::from_secs(100),
        pcb_lifetime: Duration::from_secs(3600),
        ..BeaconingConfig::diversity()
    };
    let duration = Duration::from_secs(4 * 3600); // 4 lifetimes
    let out = run_core_beaconing(&core, &cfg, duration, 17);
    let now = SimTime::ZERO + duration;
    for origin in core.core_ases() {
        for holder in core.core_ases() {
            if origin == holder {
                continue;
            }
            let srv = out.server(holder).unwrap();
            let paths = known_paths(&core, srv, core.node(origin).ia, now);
            assert!(
                !paths.is_empty(),
                "connectivity lost {} -> {} after 4 lifetimes",
                core.node(origin).ia,
                core.node(holder).ia
            );
        }
    }
}
