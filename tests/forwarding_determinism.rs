//! Data-plane observability determinism: a same-seed `fwd` run must
//! export **byte-identical** deterministic telemetry dumps
//! (`metrics.jsonl`, `series.jsonl`, `trace.jsonl`) across invocations
//! *and* across the scalar/batched verification arms. Only
//! `profile.jsonl` — wall-clock latency histograms — may differ.
//!
//! The batched arm verifies hop-field MACs in parallel shards and then
//! replays the pipeline serially in input order (see
//! `crates/dataplane/src/batch.rs`), so thread count and batching are
//! implementation details invisible to every deterministic stream. The
//! `telediff` gate in CI is built on exactly this guarantee; the last
//! test drives the same check through `telediff::diff_dumps` itself.

use std::fs;
use std::path::{Path, PathBuf};

use scion_core::experiments::run_forwarding_with;
use scion_core::prelude::*;
use scion_core::scale::ExperimentScale;
use scion_core::telemetry::telediff::{diff_dumps, DiffConfig};

/// Runs the forwarding experiment on recording handles and exports both
/// arms' dumps under `<tmp>/scion-fwd-determinism-<tag>/{scalar,batched}`.
fn dump_forwarding_run(tag: &str, threads: usize) -> PathBuf {
    let mut tel_scalar = Telemetry::new(TelemetryConfig::default());
    let mut tel_batched = Telemetry::new(TelemetryConfig::default());
    let result = run_forwarding_with(
        ExperimentScale::Bench,
        None,
        threads,
        &mut tel_scalar,
        &mut tel_batched,
    );
    assert!(result.outcomes_identical, "arms disagree before export");
    assert!(tel_scalar.traces.emitted() > 0, "no trace records");

    let root = std::env::temp_dir().join(format!(
        "scion-fwd-determinism-{tag}-t{threads}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    tel_scalar
        .export_jsonl(&root.join("scalar"))
        .expect("export scalar telemetry");
    tel_batched
        .export_jsonl(&root.join("batched"))
        .expect("export batched telemetry");
    root
}

fn assert_dumps_identical(reference: &Path, other: &Path, what: &str) {
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(reference.join(name)).unwrap();
        let fb = fs::read(other.join(name)).unwrap();
        // The forwarding experiment has no periodic sampler, so
        // series.jsonl is legitimately empty — but must still match.
        if name != "series.jsonl" {
            assert!(!fa.is_empty(), "{name} is empty");
        }
        assert_eq!(fa, fb, "{name} differs: {what}");
    }
    // profile.jsonl exists but is exempt (it records real elapsed time).
    assert!(reference.join("profile.jsonl").exists());
    assert!(other.join("profile.jsonl").exists());
}

#[test]
fn scalar_and_batched_arms_export_identical_dumps() {
    let root = dump_forwarding_run("arms", 4);
    assert_dumps_identical(
        &root.join("scalar"),
        &root.join("batched"),
        "scalar vs batched",
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn same_seed_reruns_export_identical_dumps() {
    let a = dump_forwarding_run("rerun-a", 2);
    let b = dump_forwarding_run("rerun-b", 2);
    assert_dumps_identical(&a.join("scalar"), &b.join("scalar"), "two scalar runs");
    assert_dumps_identical(&a.join("batched"), &b.join("batched"), "two batched runs");
    // Batching must also be invisible across thread counts.
    let c = dump_forwarding_run("rerun-c", 8);
    assert_dumps_identical(
        &a.join("batched"),
        &c.join("batched"),
        "batched threads=2 vs threads=8",
    );
    for dir in [a, b, c] {
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn telediff_gate_accepts_matching_dumps_and_flags_tampering() {
    let root = dump_forwarding_run("gate", 2);
    let cfg = DiffConfig::default();
    let clean =
        diff_dumps(&root.join("scalar"), &root.join("batched"), &cfg).expect("diff clean dumps");
    assert!(clean.is_empty(), "clean dumps must match: {clean:?}");

    // Perturb one counter line of the batched dump; the gate must fail.
    let metrics = root.join("batched").join("metrics.jsonl");
    let text = fs::read_to_string(&metrics).unwrap();
    let tampered = text.replacen(":1", ":2", 1);
    assert_ne!(text, tampered, "no counter line to perturb");
    fs::write(&metrics, tampered).unwrap();
    let diffs =
        diff_dumps(&root.join("scalar"), &root.join("batched"), &cfg).expect("diff tampered dumps");
    assert!(!diffs.is_empty(), "tampered dump must be flagged");
    fs::remove_dir_all(&root).ok();
}
