//! Cross-backend ingestion determinism: the same 16-AS graph expressed as
//! a CAIDA `as-rel` dump, a topology-zoo GraphML document, and a
//! BGPStream-style RIB dump must converge — through three different
//! parsers and (for the RIB) valley-free relationship *inference* — on
//! byte-identical canonical exports with equal fingerprints. The fixtures
//! live in `tests/data/equiv.*`; see each file's header for how it maps
//! onto the shared graph.

use std::path::PathBuf;

use scion_core::experiments::{run_table1_in, World};
use scion_core::ingest::{canonical_json, ingest_spec, CanonicalTopology, TopologyStats};
use scion_core::scale::ExperimentScale;
use scion_core::telemetry::Telemetry;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name);
    path.display().to_string()
}

fn load(kind: &str, name: &str) -> CanonicalTopology {
    ingest_spec(&format!("{kind}:{}", fixture(name)), None)
        .unwrap_or_else(|e| panic!("{kind}:{name}: {e}"))
        .topology
}

#[test]
fn three_formats_yield_byte_identical_canonical_exports() {
    let asrel = load("as-rel", "equiv.as-rel");
    let graphml = load("graphml", "equiv.graphml");
    let rib = load("rib", "equiv.rib");

    // The graph itself: 16 ASes, 16 single links.
    assert_eq!(asrel.num_ases(), 16);
    assert_eq!(asrel.num_links(), 16);

    // Equal fingerprints and byte-identical canonical exports, despite the
    // RIB backend *inferring* every relationship from path shapes.
    assert_eq!(asrel.fingerprint(), graphml.fingerprint());
    assert_eq!(asrel.fingerprint(), rib.fingerprint());
    assert_eq!(canonical_json(&asrel), canonical_json(&graphml));
    assert_eq!(canonical_json(&asrel), canonical_json(&rib));
    assert_eq!(asrel.canonical_text(), rib.canonical_text());

    // The materialized topology holds the multigraph invariants.
    let topo = asrel.to_topology();
    topo.check_invariants().unwrap();
    assert_eq!(topo.num_ases(), 16);
    assert_eq!(topo.num_links(), 16);
}

#[test]
fn repeated_runs_are_byte_identical() {
    for kind_name in [
        ("as-rel", "equiv.as-rel"),
        ("graphml", "equiv.graphml"),
        ("rib", "equiv.rib"),
    ] {
        let a = load(kind_name.0, kind_name.1);
        let b = load(kind_name.0, kind_name.1);
        assert_eq!(canonical_json(&a), canonical_json(&b), "{}", kind_name.0);
        assert_eq!(a.fingerprint(), b.fingerprint(), "{}", kind_name.0);
    }
}

#[test]
fn ixp_overlay_adds_parallel_links_identically_across_backends() {
    let ixp = PathBuf::from(fixture("equiv.ixp"));
    let mut fingerprints = Vec::new();
    for kind_name in [
        ("as-rel", "equiv.as-rel"),
        ("graphml", "equiv.graphml"),
        ("rib", "equiv.rib"),
    ] {
        let spec = format!("{}:{}", kind_name.0, fixture(kind_name.1));
        let ingested = ingest_spec(&spec, Some(&ixp)).unwrap();
        let report = ingested.ixp.expect("overlay applied");
        // Members 1, 2, 11: pairs (1,2) and (1,11) are adjacent and gain
        // one parallel link each; (2,11) is not adjacent; 9999 is unknown.
        assert_eq!(report.links_added, 2, "{}", kind_name.0);
        assert_eq!(report.pairs_not_adjacent, 1);
        assert_eq!(report.members_unknown, 1);
        assert_eq!(ingested.topology.num_links(), 18);
        assert_eq!(ingested.topology.num_ases(), 16, "no adjacency invented");
        ingested.topology.to_topology().check_invariants().unwrap();
        fingerprints.push(ingested.topology.fingerprint());
    }
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), 1, "overlaid fingerprints diverge");
    // And the overlay changes the graph relative to the plain load.
    assert_ne!(
        fingerprints[0],
        load("as-rel", "equiv.as-rel").fingerprint()
    );
}

#[test]
fn stats_describe_the_equiv_graph() {
    let s = TopologyStats::compute(&load("rib", "equiv.rib"));
    assert_eq!(s.ases, 16);
    assert_eq!(s.links, 16);
    assert_eq!(s.p2c_pairs, 14);
    assert_eq!(s.p2p_pairs, 2);
    assert_eq!(s.parallel_extra_links, 0);
    assert_eq!(s.degree.min, 1);
    assert_eq!(s.degree.max, 5);
}

#[test]
fn ingested_topology_drives_a_full_table1_run() {
    let ingested = ingest_spec(&format!("graphml:{}", fixture("equiv.graphml")), None).unwrap();
    let world = World::from_internet(
        ingested.topology.to_topology(),
        ExperimentScale::Tiny.params(),
    );
    // Clamped to the fixture's actual size.
    assert_eq!(world.params.num_ases, 16);
    assert!(world.core.num_ases() <= 16);
    assert!(world.core.core_ases().count() > 0);

    let r = run_table1_in(&world, None, &mut Telemetry::disabled());
    assert!(!r.rows.is_empty());
    let beaconing = r
        .rows
        .iter()
        .find(|row| row.component == "Core Beaconing")
        .expect("core beaconing row");
    assert!(beaconing.messages > 0, "{r:?}");
}
