//! Recovery-run determinism: same-seed invocations of the three-arm
//! recovery experiment must export byte-identical `metrics.jsonl`,
//! `series.jsonl`, and `trace.jsonl` telemetry dumps — across reruns AND
//! across worker-thread counts (1/2/8), since the dataplane walk runs on
//! the parallel batch verifier. Only the wall-clock `profile.jsonl` is
//! exempt.
//!
//! This extends the byte-identity guarantee across the whole recovery
//! plane: the engine-ordered SCMP/revocation/query event interleaving,
//! the limiter's admission windows, the revocation table's TTL renewals
//! and restorations, and the resolver's retry wheel.

use std::fs;
use std::path::PathBuf;

use scion_core::experiments::run_recovery_with;
use scion_core::prelude::*;

fn dump_one_recovery_run(tag: &str, threads: usize) -> PathBuf {
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let r = run_recovery_with(ExperimentScale::Tiny, Some(7), threads, &mut tel);
    assert_eq!(r.arms.len(), 3);
    for arm in &r.arms {
        assert!(arm.packets_sent > 0, "{}: nothing sent", arm.name);
        assert!(arm.affected_flows > 0, "{}: fault hit nobody", arm.name);
    }

    let dir = std::env::temp_dir().join(format!(
        "scion-recovery-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

#[test]
fn same_seed_recovery_runs_export_identical_dumps() {
    let a = dump_one_recovery_run("a", 2);
    let b = dump_one_recovery_run("b", 2);
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(a.join(name)).unwrap();
        let fb = fs::read(b.join(name)).unwrap();
        assert_eq!(fa, fb, "{name} differs between same-seed recovery runs");
    }
    assert!(!fs::read(a.join("metrics.jsonl")).unwrap().is_empty());
    // profile.jsonl exists but records real elapsed time, so it is
    // exempt from byte equality.
    assert!(a.join("profile.jsonl").exists());
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}

#[test]
fn recovery_dumps_are_identical_across_thread_counts() {
    let one = dump_one_recovery_run("t1", 1);
    let two = dump_one_recovery_run("t2", 2);
    let eight = dump_one_recovery_run("t8", 8);
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let f1 = fs::read(one.join(name)).unwrap();
        let f2 = fs::read(two.join(name)).unwrap();
        let f8 = fs::read(eight.join(name)).unwrap();
        assert_eq!(f1, f2, "{name} differs between 1 and 2 worker threads");
        assert_eq!(f1, f8, "{name} differs between 1 and 8 worker threads");
    }
    for dir in [one, two, eight] {
        fs::remove_dir_all(&dir).ok();
    }
}
