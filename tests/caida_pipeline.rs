//! The data pipeline a user with real CAIDA data would run: parse an
//! `as-rel` document, derive the §5.1 topologies, and run the control
//! plane on them — end to end through the public API.

use scion_core::prelude::*;
use scion_core::topology::caida::{parse_as_rel, to_as_rel};
use scion_core::topology::isd::assign_isds;
use scion_core::topology::{build_intra_isd_topology, prune_to_top_degree};

/// A hand-written mini-Internet in the extended as-rel format: a tier-1
/// triangle with parallel links, regional providers, and stub leaves.
const AS_REL: &str = "\
# tier-1 clique (peering, multi-link)
1|2|0|2
1|3|0|2
2|3|0|1
# regional providers buy transit from two tier-1s each
1|10|-1
2|10|-1
2|11|-1
3|11|-1
# peering between the regionals
10|11|0
# stubs
10|100|-1
10|101|-1
11|102|-1
11|103|-1
1|104|-1
";

#[test]
fn caida_document_drives_the_full_pipeline() {
    let topo = parse_as_rel(AS_REL).expect("well-formed document");
    assert_eq!(topo.num_ases(), 10);
    topo.check_invariants().unwrap();

    // Degree pruning keeps the well-connected top; ISD assignment makes
    // everything core (the §5.1 core-beaconing construction).
    let (mut core, _) = prune_to_top_degree(&topo, 5);
    assign_isds(&mut core, 3);
    assert_eq!(core.num_ases(), 5);
    assert_eq!(core.core_ases().count(), 5);

    let out = run_core_beaconing(
        &core,
        &BeaconingConfig::diversity(),
        Duration::from_hours(2),
        1,
    );
    let now = SimTime::ZERO + Duration::from_hours(2);
    for a in core.as_indices() {
        for b in core.as_indices() {
            if a != b {
                assert!(
                    !out.server(b)
                        .unwrap()
                        .store()
                        .beacons_of(core.node(a).ia, now)
                        .is_empty(),
                    "core pair {}->{} unreachable",
                    core.node(a).ia,
                    core.node(b).ia
                );
            }
        }
    }
}

#[test]
fn intra_isd_construction_from_caida_data() {
    let topo = parse_as_rel(AS_REL).unwrap();
    // Top-1 by customer cone is a tier-1; its downward closure covers the
    // regionals and their stubs.
    let (intra, _) = build_intra_isd_topology(&topo, 1);
    assert_eq!(intra.core_ases().count(), 1);
    assert!(intra.num_ases() > 4);

    let out = run_intra_isd_beaconing(
        &intra,
        &BeaconingConfig::default(),
        Duration::from_hours(1),
        2,
    );
    let now = SimTime::ZERO + Duration::from_hours(1);
    let core_ia = intra.core_ases().map(|i| intra.node(i).ia).next().unwrap();
    for idx in intra.as_indices() {
        if intra.node(idx).core {
            continue;
        }
        assert!(
            !out.server(idx)
                .unwrap()
                .store()
                .beacons_of(core_ia, now)
                .is_empty(),
            "{} did not learn a path to its core",
            intra.node(idx).ia
        );
    }
}

#[test]
fn round_trip_preserves_structure() {
    let topo = parse_as_rel(AS_REL).unwrap();
    let doc = to_as_rel(&topo);
    let again = parse_as_rel(&doc).unwrap();
    assert_eq!(topo.num_ases(), again.num_ases());
    assert_eq!(topo.num_links(), again.num_links());
    // Same relationship structure: every AS has identical neighbor sets.
    for idx in topo.as_indices() {
        let ia = topo.node(idx).ia;
        let jdx = again.by_address(ia).unwrap();
        let names = |t: &AsTopology, i| {
            let mut v: Vec<u64> = t
                .neighbors(i)
                .into_iter()
                .map(|n| t.node(n).ia.asn.value())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(names(&topo, idx), names(&again, jdx));
    }
}
