//! Lossy-run determinism: two invocations of the lossy experiment with
//! the same seed must export byte-identical `metrics.jsonl`,
//! `series.jsonl`, and `trace.jsonl` telemetry dumps (mirroring
//! `telemetry_determinism.rs`; only the wall-clock `profile.jsonl` is
//! exempt).
//!
//! This extends the byte-identity guarantee across the loss plane: the
//! seeded per-link loss coins and jitter draws, the reliable channel's
//! deterministic backoff jitter, the retransmit timer wheel, and the
//! degradation leg's engineered star scenario.

use std::fs;
use std::path::PathBuf;

use scion_core::experiments::run_lossy_with_rates;
use scion_core::prelude::*;

fn dump_one_lossy_run(tag: &str) -> PathBuf {
    let mut tel = Telemetry::new(TelemetryConfig::default());
    let r = run_lossy_with_rates(ExperimentScale::Tiny, Some(7), &[0.05], &mut tel);
    assert_eq!(r.points.len(), 1);
    let p = &r.points[0];
    assert!(p.reliable.loss.messages_lost > 0, "5% loss drops something");
    assert!(p.reliable.loss.retransmits > 0, "drops trigger retransmits");
    assert_eq!(p.no_retry.loss.retransmits, 0);
    assert!(r.degradation.degraded_serves > 0);
    assert!(!tel.series.is_empty(), "sampler never fired");

    let dir = std::env::temp_dir().join(format!(
        "scion-lossy-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    tel.export_jsonl(&dir).expect("export telemetry");
    dir
}

#[test]
fn same_seed_lossy_runs_export_identical_dumps() {
    let a = dump_one_lossy_run("a");
    let b = dump_one_lossy_run("b");
    for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
        let fa = fs::read(a.join(name)).unwrap();
        let fb = fs::read(b.join(name)).unwrap();
        assert_eq!(fa, fb, "{name} differs between same-seed lossy runs");
    }
    assert!(!fs::read(a.join("metrics.jsonl")).unwrap().is_empty());
    // profile.jsonl exists but records real elapsed time, so it is
    // exempt from byte equality.
    assert!(a.join("profile.jsonl").exists());
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}
