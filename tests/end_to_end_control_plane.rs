//! End-to-end integration of the whole control plane: beaconing across
//! two ISDs, segment registration at path servers, lookup, three-segment
//! path combination, and cryptographic validation — the complete §2.2/§2.3
//! machinery in one scenario.

use scion_core::beaconing::server::BeaconServer;
use scion_core::crypto::trc::TrustStore;
use scion_core::pathserver::server::PathServer;
use scion_core::prelude::*;

/// Two ISDs, one core AS each, connected by a core link; every core has
/// two leaf customers; leaves of ISD 1 are dual-homed.
fn two_isd_world() -> AsTopology {
    let mut topo = AsTopology::new();
    let core1 = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(1)));
    let core2 = topo.add_as(IsdAsn::new(Isd(2), Asn::from_u64(1)));
    topo.set_core(core1, true);
    topo.set_core(core2, true);
    topo.add_link(core1, core2, Relationship::PeerToPeer);
    topo.add_link(core1, core2, Relationship::PeerToPeer); // parallel
    for (isd, core) in [(1u16, core1), (2u16, core2)] {
        for n in 10..12u64 {
            let leaf = topo.add_as(IsdAsn::new(Isd(isd), Asn::from_u64(n)));
            topo.add_link(core, leaf, Relationship::AProviderOfB);
            if isd == 1 {
                topo.add_link(core, leaf, Relationship::AProviderOfB); // dual-homed
            }
        }
    }
    topo.check_invariants().unwrap();
    topo
}

fn trust_for(topo: &AsTopology, horizon: SimTime) -> TrustStore {
    TrustStore::bootstrap(
        topo.as_indices()
            .map(|i| (topo.node(i).ia, topo.node(i).core)),
        horizon,
    )
}

/// Terminates the stored beacons of `origin` at `site` into segments.
fn terminate_segments(
    _topo: &AsTopology,
    srv: &BeaconServer,
    origin: IsdAsn,
    seg_type: SegmentType,
    trust: &TrustStore,
    now: SimTime,
) -> Vec<PathSegment> {
    srv.store()
        .beacons_of(origin, now)
        .into_iter()
        .map(|stored| {
            let pcb =
                stored
                    .pcb
                    .extend(srv.isd_asn(), stored.ingress_if, IfId::NONE, vec![], trust);
            scion_core::proto::segment::PathSegment::from_terminated_pcb(seg_type, pcb)
        })
        .collect()
}

#[test]
fn full_stack_cross_isd_path_construction() {
    let topo = two_isd_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let trust = trust_for(&topo, now + Duration::from_days(1));

    // --- Both beaconing levels run on the same world.
    let core_out = run_core_beaconing(&topo, &BeaconingConfig::default(), duration, 1);
    let intra_out = run_intra_isd_beaconing(&topo, &BeaconingConfig::default(), duration, 1);

    let core1_ia = IsdAsn::new(Isd(1), Asn::from_u64(1));
    let core2_ia = IsdAsn::new(Isd(2), Asn::from_u64(1));
    let src_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
    let dst_ia = IsdAsn::new(Isd(2), Asn::from_u64(11));
    let src = topo.by_address(src_ia).unwrap();
    let dst = topo.by_address(dst_ia).unwrap();
    let core1 = topo.by_address(core1_ia).unwrap();

    // --- The source terminates up-segments; the destination registers
    //     down-segments at its ISD's core path server; core segments are
    //     registered at ISD 1's core path server.
    let ups = terminate_segments(
        &topo,
        intra_out.server(src).unwrap(),
        core1_ia,
        SegmentType::Up,
        &trust,
        now,
    );
    assert!(
        ups.len() >= 2,
        "dual-homed leaf should hold multiple up-segments, got {}",
        ups.len()
    );

    let downs = terminate_segments(
        &topo,
        intra_out.server(dst).unwrap(),
        core2_ia,
        SegmentType::Down,
        &trust,
        now,
    );
    assert!(!downs.is_empty(), "destination has down-segments");

    let cores = terminate_segments(
        &topo,
        core_out.server(core1).unwrap(),
        core2_ia,
        SegmentType::Core,
        &trust,
        now,
    );
    assert!(
        cores.len() >= 2,
        "parallel core links should yield multiple core segments, got {}",
        cores.len()
    );

    // --- Register + look up through a core path server.
    let mut ps = PathServer::new(core2_ia, true);
    for d in &downs {
        ps.register_down_segment(d.clone(), now)
            .expect("fresh down-segment registers");
    }
    let served = ps
        .lookup_down(dst_ia, now)
        .expect("registered destination resolves");
    assert_eq!(served.len(), downs.len());

    // --- Combine: up (reversed) + core + down. Core segments at ISD1's
    //     core were built from beacons originated at core2, so they
    //     terminate at core1 and need reversal inside combine_paths.
    let mut paths = Vec::new();
    for u in &ups {
        for c in &cores {
            for d in &served {
                if let Ok(p) = combine_paths(Some(u), Some(c), Some(d)) {
                    paths.push(p);
                }
            }
        }
    }
    assert!(!paths.is_empty(), "at least one end-to-end combination");
    for p in &paths {
        assert_eq!(p.source(), src_ia);
        assert_eq!(p.destination(), dst_ia);
        assert_eq!(
            p.as_path(),
            vec![src_ia, core1_ia, core2_ia, dst_ia],
            "cross-ISD path goes leaf -> core -> core -> leaf"
        );
        p.check().unwrap();
    }
    // Distinct combinations use distinct link sequences (multi-path!).
    let distinct: std::collections::HashSet<Vec<_>> = paths.iter().map(|p| p.links()).collect();
    assert!(
        distinct.len() >= 4,
        "dual-homing x parallel core links should give >= 4 distinct paths, got {}",
        distinct.len()
    );
}

#[test]
fn beacons_surviving_the_full_stack_validate_cryptographically() {
    let topo = two_isd_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let trust = trust_for(&topo, now + Duration::from_days(1));

    let out = run_core_beaconing(&topo, &BeaconingConfig::default(), duration, 2);
    let core1 = topo
        .by_address(IsdAsn::new(Isd(1), Asn::from_u64(1)))
        .unwrap();
    let srv = out.server(core1).unwrap();
    let origin = IsdAsn::new(Isd(2), Asn::from_u64(1));
    let beacons = srv.store().beacons_of(origin, now);
    assert!(!beacons.is_empty());
    for b in beacons {
        b.pcb
            .validate(&trust, now)
            .expect("stored beacon validates");
        assert_eq!(b.pcb.origin, origin);
    }
}

#[test]
fn intra_isd_beacons_stay_within_their_isd() {
    let topo = two_isd_world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let out = run_intra_isd_beaconing(&topo, &BeaconingConfig::default(), duration, 3);

    // A leaf in ISD 2 must know its own core but never ISD 1's core
    // (intra-ISD beaconing is isolated per ISD — paper §5.1 calls
    // simulations of multiple connected ISDs "superfluous" because of it).
    let leaf2 = topo
        .by_address(IsdAsn::new(Isd(2), Asn::from_u64(10)))
        .unwrap();
    let srv = out.server(leaf2).unwrap();
    assert!(!srv
        .store()
        .beacons_of(IsdAsn::new(Isd(2), Asn::from_u64(1)), now)
        .is_empty());
    assert!(srv
        .store()
        .beacons_of(IsdAsn::new(Isd(1), Asn::from_u64(1)), now)
        .is_empty());
}
