//! Integration of the end-domain stack (§3.4) with the control plane and
//! data plane: real beacons → daemon resolution → SIG encapsulation →
//! stateless forwarding → SCMP failover; plus the peering-shortcut path
//! (§2.3) resolved from peer entries carried in real intra-ISD beacons.

use std::collections::HashSet;

use scion_core::crypto::trc::TrustStore;
use scion_core::dataplane::network::{deliver, DeliveryError};
use scion_core::endhost::asmap::{AsMap, Ipv4Prefix};
use scion_core::endhost::daemon::{ScionDaemon, SegmentSet};
use scion_core::endhost::sig::Sig;
use scion_core::prelude::*;

fn ia(asn: u64) -> IsdAsn {
    IsdAsn::new(Isd(1), Asn::from_u64(asn))
}

/// Core AS 1 providing to leaves 10 and 11 (dual-homed), with a peering
/// link between the two leaves.
fn world() -> AsTopology {
    let mut topo = AsTopology::new();
    let core = topo.add_as(ia(1));
    topo.set_core(core, true);
    for n in [10u64, 11] {
        let leaf = topo.add_as(ia(n));
        topo.add_link(core, leaf, Relationship::AProviderOfB);
        topo.add_link(core, leaf, Relationship::AProviderOfB);
    }
    let l10 = topo.by_address(ia(10)).unwrap();
    let l11 = topo.by_address(ia(11)).unwrap();
    topo.add_link(l10, l11, Relationship::PeerToPeer);
    topo
}

struct Stack {
    topo: AsTopology,
    segments: SegmentSet,
    now: SimTime,
}

fn build_stack() -> Stack {
    let topo = world();
    let duration = Duration::from_hours(1);
    let now = SimTime::ZERO + duration;
    let out = run_intra_isd_beaconing(&topo, &BeaconingConfig::default(), duration, 11);
    let trust = TrustStore::bootstrap(
        topo.as_indices()
            .map(|i| (topo.node(i).ia, topo.node(i).core)),
        now + Duration::from_days(1),
    );
    let terminate = |leaf_ia: IsdAsn, ty| -> Vec<PathSegment> {
        let leaf = topo.by_address(leaf_ia).unwrap();
        out.server(leaf)
            .unwrap()
            .store()
            .beacons_of(ia(1), now)
            .into_iter()
            .map(|b| {
                // Terminating ASes keep advertising their peering links in
                // the terminal entry (that is how both sides of a peering
                // link end up in both segments).
                let peers: Vec<scion_core::proto::pcb::PeerEntry> = topo
                    .node(leaf)
                    .links
                    .iter()
                    .filter(|&&li| topo.link(li).is_peering())
                    .map(|&li| {
                        let (other, local_if, remote_if) = topo.link(li).opposite(leaf);
                        scion_core::proto::pcb::PeerEntry {
                            peer: topo.node(other).ia,
                            peer_if: remote_if,
                            hop: scion_core::proto::hopfield::HopField::new(
                                local_if,
                                IfId::NONE,
                                b.pcb.expires_at,
                                scion_core::proto::pcb::forwarding_key(leaf_ia),
                            ),
                        }
                    })
                    .collect();
                let pcb = b
                    .pcb
                    .extend(leaf_ia, b.ingress_if, IfId::NONE, peers, &trust);
                scion_core::proto::segment::PathSegment::from_terminated_pcb(ty, pcb)
            })
            .collect()
    };
    let segments = SegmentSet {
        up: terminate(ia(10), SegmentType::Up),
        core: vec![],
        down: terminate(ia(11), SegmentType::Down),
    };
    Stack {
        topo,
        segments,
        now,
    }
}

#[test]
fn daemon_resolves_core_and_peering_paths_from_real_beacons() {
    let stack = build_stack();
    let mut daemon = ScionDaemon::new();
    let n = daemon.resolve(ia(11), &stack.segments, stack.now);
    // 2 ups x 2 downs through the core + the peering shortcut.
    assert!(
        n >= 5,
        "expected core paths plus the peering shortcut, got {n}"
    );
    // The best (shortest) path is the 2-hop peering shortcut.
    let best = daemon.best_path(ia(11)).unwrap();
    assert_eq!(
        best.as_path(),
        vec![ia(10), ia(11)],
        "peering shortcut wins"
    );
    // Core paths exist as well.
    assert!(daemon
        .cached_paths(ia(11))
        .iter()
        .any(|p| p.as_path() == vec![ia(10), ia(1), ia(11)]));
}

#[test]
fn every_resolved_path_is_deliverable_on_the_data_plane() {
    let stack = build_stack();
    let mut daemon = ScionDaemon::new();
    daemon.resolve(ia(11), &stack.segments, stack.now);
    let expiry = stack.now + Duration::from_hours(1);
    for path in daemon.cached_paths(ia(11)).to_vec() {
        let mut pkt = scion_core::dataplane::packet::Packet::along(&path, expiry, 64);
        let hops = deliver(&stack.topo, &mut pkt, &HashSet::new(), stack.now)
            .unwrap_or_else(|e| panic!("path {:?} failed: {e:?}", path.as_path()));
        assert_eq!(hops, path.len() - 1);
    }
}

#[test]
fn sig_failover_cascades_through_the_whole_stack() {
    let stack = build_stack();
    let mut daemon = ScionDaemon::new();
    daemon.resolve(ia(11), &stack.segments, stack.now);
    let mut asmap = AsMap::new();
    asmap.insert(Ipv4Prefix::parse("203.0.113.0/24").unwrap(), ia(11));
    let mut sig = Sig::new(asmap, daemon);

    let dst_ip = u32::from_be_bytes([203, 0, 113, 9]);
    let expiry = stack.now + Duration::from_hours(1);

    // Fail links one by one; each failure triggers SCMP + failover until
    // the pair's whole min cut (3: two core attachments + the peering
    // link... from 10's perspective: 2 up links + 1 peer link) is gone.
    let mut failed: HashSet<_> = HashSet::new();
    let mut distinct_first_hops = HashSet::new();
    // Stop when no usable path is left.
    while let Ok(mut pkt) = sig.encapsulate(dst_ip, 500, expiry) {
        distinct_first_hops.insert(pkt.path.hops[0].1.egress);
        match deliver(&stack.topo, &mut pkt, &failed, stack.now) {
            Ok(_) => {
                // Delivered: fail the link it used and continue.
                let first_egress = pkt.path.hops[0].1.egress;
                let src = stack.topo.by_address(ia(10)).unwrap();
                let li = stack.topo.link_by_interface(src, first_egress).unwrap();
                failed.insert(li);
                // Tell the daemon (as the border router would).
                sig.daemon.handle_scmp(
                    &scion_core::dataplane::scmp::ScmpMessage::ExternalInterfaceDown {
                        at: ia(10),
                        interface: first_egress,
                        observed_at: stack.now,
                    },
                    stack.now,
                );
            }
            Err(DeliveryError::LinkDown(scmp)) => {
                sig.daemon.handle_scmp(&scmp, stack.now);
            }
            Err(other) => panic!("unexpected drop: {other:?}"),
        }
        if failed.len() > 4 {
            break;
        }
    }
    assert!(
        distinct_first_hops.len() >= 3,
        "failover should have exercised all 3 first-hop links, used {:?}",
        distinct_first_hops
    );
    // After exhausting the min cut the SIG reports NoPath.
    assert!(sig.encapsulate(dst_ip, 500, expiry).is_err());
}
