//! Lookup resolution with timeout, bounded retry, and graceful
//! degradation.
//!
//! A local path server's upstream fetch crosses lossy inter-domain links,
//! so the lookup itself needs transport robustness: each in-flight query
//! carries a deadline, a timed-out query is retried with exponential
//! backoff up to a bounded attempt budget, and an exhausted query degrades
//! instead of failing hard — recently-expired cached segments are served
//! flagged [`Resolution::Degraded`], and the destination enters the
//! negative cache so follow-up lookups do not relaunch the retry storm.
//!
//! Like `scion_reliable`'s sender, the resolver is engine-agnostic: the
//! driver owns the wire (sending the query, delivering the response) and a
//! wake-up timer at [`Resolver::next_deadline`]; the resolver owns the
//! retry/degrade decisions. All state is ordered (`BTreeMap`/`BTreeSet`),
//! so a run's decision sequence is deterministic.

use std::collections::{BTreeMap, BTreeSet};

use scion_proto::segment::PathSegment;
use scion_types::{Duration, IsdAsn, SimTime};

use crate::server::PathServer;

/// Tuning of the lookup retry state machine.
#[derive(Clone, Copy, Debug)]
pub struct ResolverConfig {
    /// Deadline of the first attempt.
    pub base_timeout: Duration,
    /// Backoff multiplier per attempt, in percent (200 = doubling).
    pub backoff_pct: u32,
    /// Total attempts (including the first) before degrading.
    pub max_attempts: u32,
    /// How long past expiry cached segments still qualify for degraded
    /// serving.
    pub stale_grace: Duration,
    /// Negative-cache verdict lifetime after an exhausted lookup.
    pub negative_ttl: Duration,
    /// Multiplier (percent) stretching the re-armed deadline when the
    /// upstream sheds the lookup with an explicit busy signal
    /// ([`Resolver::on_busy`]); values under 100 are treated as 100.
    pub busy_penalty_pct: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        // A lookup round-trip crosses at most a handful of inter-domain
        // links (≤ 2 × 80 ms each way); 1 s covers it with margin. Three
        // attempts keep worst-case resolution under ~7 s, after which
        // serving hour-stale paths beats serving nothing (paths live for
        // hours, §4.1).
        ResolverConfig {
            base_timeout: Duration::from_secs(1),
            backoff_pct: 200,
            max_attempts: 3,
            stale_grace: PathServer::STALE_GRACE,
            negative_ttl: Duration::from_mins(5),
            busy_penalty_pct: 400,
        }
    }
}

impl ResolverConfig {
    /// The deadline offset armed after attempt `attempt` (1-based).
    pub fn timeout_for(&self, attempt: u32) -> Duration {
        let mut us = self.base_timeout.as_micros();
        for _ in 1..attempt {
            us = us
                .saturating_mul(self.backoff_pct as u64)
                .checked_div(100)
                .unwrap_or(us);
        }
        Duration::from_micros(us)
    }
}

/// What the driver must do when a lookup deadline fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryAction {
    /// Re-send the query upstream; the next deadline is already armed.
    Retry {
        /// The lookup's resolver id.
        id: u64,
        /// The destination being resolved.
        dst: IsdAsn,
        /// 1-based attempt number of the re-send.
        attempt: u32,
    },
    /// Attempt budget exhausted: resolve via
    /// [`Resolver::degrade`] and stop querying.
    Exhausted {
        /// The lookup's resolver id.
        id: u64,
        /// The destination being resolved.
        dst: IsdAsn,
    },
}

/// Terminal outcome of one lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// A live upstream (or cached) answer.
    Fresh(Vec<PathSegment>),
    /// Upstream unreachable; recently-expired cached segments served
    /// best-effort. Consumers must treat these paths as unverified.
    Degraded(Vec<PathSegment>),
    /// Upstream unreachable and nothing recent enough cached; the
    /// destination is negative-cached.
    Unreachable,
}

/// Lifetime counters of one resolver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ResolverStats {
    /// Queries launched (first attempts).
    pub started: u64,
    /// Timed-out attempts that were retried.
    pub retries: u64,
    /// Queries settled by an upstream response.
    pub resolved: u64,
    /// Queries that exhausted their attempt budget.
    pub exhausted: u64,
    /// Busy signals that re-armed a pending deadline on the penalized
    /// schedule.
    pub busy_backoffs: u64,
}

struct InFlight {
    dst: IsdAsn,
    attempts: u32,
    deadline: SimTime,
}

/// The retry state machine over one driver's in-flight lookups.
pub struct Resolver {
    cfg: ResolverConfig,
    next_id: u64,
    pending: BTreeMap<u64, InFlight>,
    due: BTreeSet<(SimTime, u64)>,
    stats: ResolverStats,
}

impl Resolver {
    /// A resolver with no in-flight lookups.
    pub fn new(cfg: ResolverConfig) -> Resolver {
        Resolver {
            cfg,
            next_id: 0,
            pending: BTreeMap::new(),
            due: BTreeSet::new(),
            stats: ResolverStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ResolverConfig {
        &self.cfg
    }

    /// Starts a lookup for `dst`, arming its first deadline. The caller
    /// performs the actual upstream send.
    pub fn begin(&mut self, now: SimTime, dst: IsdAsn) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let deadline = now + self.cfg.timeout_for(1);
        self.pending.insert(
            id,
            InFlight {
                dst,
                attempts: 1,
                deadline,
            },
        );
        self.due.insert((deadline, id));
        self.stats.started += 1;
        id
    }

    /// Settles a lookup whose upstream response arrived. Returns the
    /// destination, or `None` for a late response to a finished lookup.
    pub fn on_response(&mut self, id: u64) -> Option<IsdAsn> {
        let p = self.pending.remove(&id)?;
        self.due.remove(&(p.deadline, id));
        self.stats.resolved += 1;
        Some(p.dst)
    }

    /// Handles an explicit *busy* rejection of lookup `id`: the pending
    /// deadline is re-armed at `busy_penalty_pct` of the normal backoff,
    /// so the retry lands after the overload instead of feeding it. The
    /// attempt budget is untouched — the query was shed, not lost.
    /// Returns `true` when the lookup was pending.
    pub fn on_busy(&mut self, id: u64, now: SimTime) -> bool {
        let Some(p) = self.pending.get_mut(&id) else {
            return false;
        };
        self.due.remove(&(p.deadline, id));
        let us = self.cfg.timeout_for(p.attempts).as_micros();
        let penalty = self.cfg.busy_penalty_pct.max(100) as u64;
        p.deadline = now + Duration::from_micros(us.saturating_mul(penalty) / 100);
        self.due.insert((p.deadline, id));
        self.stats.busy_backoffs += 1;
        true
    }

    /// Pops every deadline at or before `now` in deterministic
    /// `(deadline, id)` order, re-arming retries and dropping exhausted
    /// lookups.
    pub fn due_actions(&mut self, now: SimTime) -> Vec<RetryAction> {
        let mut out = Vec::new();
        while let Some(&(deadline, id)) = self.due.iter().next() {
            if deadline > now {
                break;
            }
            self.due.remove(&(deadline, id));
            // A deadline whose pending entry is gone is a stale index
            // entry (answered and dropped concurrently); skip it rather
            // than panicking the driver.
            let Some(p) = self.pending.get_mut(&id) else {
                continue;
            };
            if p.attempts >= self.cfg.max_attempts {
                let dst = p.dst;
                self.pending.remove(&id);
                self.stats.exhausted += 1;
                out.push(RetryAction::Exhausted { id, dst });
            } else {
                p.attempts += 1;
                p.deadline = now + self.cfg.timeout_for(p.attempts);
                self.due.insert((p.deadline, id));
                self.stats.retries += 1;
                out.push(RetryAction::Retry {
                    id,
                    dst: p.dst,
                    attempt: p.attempts,
                });
            }
        }
        out
    }

    /// The earliest armed deadline, for the driver's wake-up timer.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.due.iter().next().map(|&(t, _)| t)
    }

    /// Lookups still awaiting a response.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Resolves an exhausted lookup against the local server: serve
    /// recently-expired cached segments flagged degraded when possible,
    /// otherwise negative-cache the destination.
    pub fn degrade(&self, server: &mut PathServer, dst: IsdAsn, now: SimTime) -> Resolution {
        match server.lookup_stale(dst, now, self.cfg.stale_grace) {
            Some(segs) => Resolution::Degraded(segs),
            None => {
                server.note_unreachable(dst, now, self.cfg.negative_ttl);
                Resolution::Unreachable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Isd};

    fn dst(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn cfg() -> ResolverConfig {
        ResolverConfig {
            base_timeout: Duration::from_micros(100),
            backoff_pct: 200,
            max_attempts: 3,
            ..ResolverConfig::default()
        }
    }

    #[test]
    fn busy_signal_re_arms_on_the_penalized_schedule() {
        let mut r = Resolver::new(ResolverConfig {
            busy_penalty_pct: 400,
            ..cfg()
        });
        let id = r.begin(t(0), dst(4));
        assert_eq!(r.next_deadline(), Some(t(100)));
        // The upstream sheds the query at t=50: the retry waits 4× the
        // normal timeout from the busy signal, not 1×.
        assert!(r.on_busy(id, t(50)));
        assert_eq!(r.next_deadline(), Some(t(450)));
        assert_eq!(r.stats().busy_backoffs, 1);
        // The attempt budget did not shrink: the ladder continues.
        let acts = r.due_actions(t(450));
        assert!(
            matches!(acts.as_slice(), [RetryAction::Retry { attempt: 2, .. }]),
            "got {acts:?}"
        );
        // Busy for a settled lookup is a no-op.
        assert_eq!(r.on_response(id), Some(dst(4)));
        assert!(!r.on_busy(id, t(500)));
        assert_eq!(r.stats().busy_backoffs, 1);
    }

    #[test]
    fn response_settles_and_late_responses_are_ignored() {
        let mut r = Resolver::new(cfg());
        let id = r.begin(t(0), dst(4));
        assert_eq!(r.on_response(id), Some(dst(4)));
        assert_eq!(r.on_response(id), None);
        assert_eq!(r.pending_len(), 0);
        assert!(r.due_actions(t(10_000)).is_empty());
        assert_eq!(r.stats().resolved, 1);
    }

    #[test]
    fn retries_back_off_then_exhaust() {
        let mut r = Resolver::new(cfg());
        let id = r.begin(t(0), dst(4));
        // Deadlines: 100, then +200, then the third timeout exhausts.
        assert_eq!(r.next_deadline(), Some(t(100)));
        assert_eq!(
            r.due_actions(t(100)),
            vec![RetryAction::Retry {
                id,
                dst: dst(4),
                attempt: 2
            }]
        );
        assert_eq!(r.next_deadline(), Some(t(300)));
        assert_eq!(
            r.due_actions(t(300)),
            vec![RetryAction::Retry {
                id,
                dst: dst(4),
                attempt: 3
            }]
        );
        assert_eq!(
            r.due_actions(t(700)),
            vec![RetryAction::Exhausted { id, dst: dst(4) }]
        );
        assert_eq!(r.pending_len(), 0);
        assert_eq!(r.stats().retries, 2);
        assert_eq!(r.stats().exhausted, 1);
    }

    #[test]
    fn degrade_serves_stale_then_negative_caches() {
        use scion_crypto::trc::TrustStore;
        use scion_proto::pcb::Pcb;
        use scion_proto::segment::SegmentType;
        use scion_types::IfId;

        let tr = TrustStore::bootstrap(
            [(dst(1), true), (dst(3), false), (dst(4), false)].into_iter(),
            SimTime::ZERO + Duration::from_days(30),
        );
        let seg = {
            let pcb = Pcb::originate(
                dst(1),
                IfId(1),
                SimTime::ZERO,
                Duration::from_hours(6),
                0,
                &tr,
            )
            .extend(dst(4), IfId(1), IfId::NONE, vec![], &tr);
            PathSegment::from_terminated_pcb(SegmentType::Down, pcb)
        };
        let mut server = PathServer::new(dst(3), false);
        server.cache_insert(dst(4), vec![seg], SimTime::ZERO);
        let r = Resolver::new(ResolverConfig::default());

        // 30 minutes past expiry: degraded serving.
        let now = SimTime::ZERO + Duration::from_hours(6) + Duration::from_mins(30);
        match r.degrade(&mut server, dst(4), now) {
            Resolution::Degraded(segs) => assert_eq!(segs.len(), 1),
            other => panic!("expected degraded serve, got {other:?}"),
        }
        assert!(!server.negative_cached(dst(4), now));

        // A destination with nothing cached goes straight to the
        // negative cache.
        assert_eq!(r.degrade(&mut server, dst(5), now), Resolution::Unreachable);
        assert!(server.negative_cached(dst(5), now + Duration::from_mins(1)));
        assert!(!server.negative_cached(dst(5), now + Duration::from_hours(1)));
    }
}
