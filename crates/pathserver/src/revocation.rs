//! Path revocation on link failure (§4.1 "Path Revocations").
//!
//! "The AS in which the failing link is located revokes the affected path
//! segments at the core path server, which is an intra-ISD operation.
//! Endpoints and border routers that use a path containing a failed link
//! are informed of the link failure through SCION Control Message Protocol
//! (SCMP) messages sent by the border router observing the failed link."

use std::collections::BTreeMap;

use scion_proto::segment::PathSegment;
use scion_proto::wire;
use scion_types::{Duration, LinkId, SimTime};

use crate::ledger::{Component, Ledger, Scope};
use crate::server::PathServer;

/// Result of a link-failure revocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Revocation {
    /// Segments dropped from the core path server.
    pub segments_revoked: usize,
    /// SCMP notifications issued to endpoints with active flows.
    pub scmp_notifications: u64,
}

/// True if `seg` traverses `failed`.
pub fn segment_uses_link(seg: &PathSegment, failed: LinkId) -> bool {
    seg.links()
        .iter()
        .any(|&(a, b)| LinkId::new(a, b) == failed)
}

/// Performs the two reactions to a failed link:
///
/// 1. deregisters every affected segment at `core_ps` (one intra-ISD
///    revocation message, accounted to the ledger);
/// 2. issues one SCMP message per active flow that used the link
///    (`active_flows_on_link`), accounted at the appropriate scope.
pub fn revoke_segments(
    core_ps: &mut PathServer,
    failed: LinkId,
    active_flows_on_link: u64,
    ledger: &mut Ledger,
    now: SimTime,
) -> Revocation {
    let segments_revoked = core_ps.deregister_where(|s| segment_uses_link(s, failed));

    // The revocation message itself: AS → core PS, intra-ISD.
    ledger.record(
        Component::PathRevocation,
        Scope::IntraIsd,
        wire::SCMP_REVOCATION,
    );
    ledger.record_event(Component::PathRevocation, now);

    // SCMP notifications to endpoints currently using the link. These can
    // cross ISDs (the endpoint may be anywhere), hence Global scope.
    for _ in 0..active_flows_on_link {
        ledger.record(
            Component::PathRevocation,
            Scope::Global,
            wire::SCMP_REVOCATION,
        );
    }

    Revocation {
        segments_revoked,
        scmp_notifications: active_flows_on_link,
    }
}

/// TTL'd revocation state at a path server (§4.1 deployed behavior):
/// revocations are *soft* — a revoked segment is pulled from the lookup
/// stores but parked here, and when the revocation's TTL lapses without
/// renewal the segment is reinstated. A link that is genuinely still down
/// gets re-revoked by the next SCMP-triggered signal (the data plane acts
/// as the prober), so the TTL bounds how long a spurious or stale
/// revocation can suppress a healthy path.
#[derive(Clone, Debug, Default)]
pub struct RevocationTable {
    /// Per failed link: when the revocation lapses and the segments parked
    /// under it. `BTreeMap` so restoration order is deterministic.
    parked: BTreeMap<LinkId, (SimTime, Vec<PathSegment>)>,
}

impl RevocationTable {
    /// An empty table.
    pub fn new() -> RevocationTable {
        RevocationTable::default()
    }

    /// Revokes every segment at `ps` traversing `failed`, parking the
    /// removed segments until `now + ttl`. Returns how many segments were
    /// newly pulled. A duplicate revocation of an already-revoked link
    /// removes nothing new but *renews* the TTL; a link no stored segment
    /// uses is a counted no-op (unknown links must not panic).
    pub fn revoke_with_ttl(
        &mut self,
        ps: &mut PathServer,
        failed: LinkId,
        now: SimTime,
        ttl: Duration,
    ) -> usize {
        let mut terminals = Vec::new();
        self.revoke_with_ttl_observed(ps, failed, now, ttl, &mut terminals)
    }

    /// [`RevocationTable::revoke_with_ttl`], additionally appending the
    /// terminal AS of every newly pulled segment to `terminals` (for
    /// per-destination invalidation traces).
    pub fn revoke_with_ttl_observed(
        &mut self,
        ps: &mut PathServer,
        failed: LinkId,
        now: SimTime,
        ttl: Duration,
        terminals: &mut Vec<scion_types::IsdAsn>,
    ) -> usize {
        let removed = ps.deregister_collect(|s| segment_uses_link(s, failed));
        let count = removed.len();
        terminals.extend(removed.iter().map(|s| s.terminal()));
        let entry = self
            .parked
            .entry(failed)
            .or_insert_with(|| (now + ttl, Vec::new()));
        entry.0 = now + ttl;
        entry.1.extend(removed);
        count
    }

    /// True while a revocation for `link` is in force at `now`.
    pub fn is_revoked(&self, link: LinkId, now: SimTime) -> bool {
        self.parked
            .get(&link)
            .is_some_and(|&(expires, _)| now < expires)
    }

    /// Reinstates every parked segment whose revocation has lapsed by
    /// `now`. Segments that expired naturally while parked are discarded
    /// rather than reinstated. Returns how many segments went back into
    /// the lookup stores.
    pub fn restore_due(&mut self, ps: &mut PathServer, now: SimTime) -> usize {
        let due: Vec<LinkId> = self
            .parked
            .iter()
            .filter(|(_, &(expires, _))| expires <= now)
            .map(|(&link, _)| link)
            .collect();
        let mut restored = 0;
        for link in due {
            let Some((_, segments)) = self.parked.remove(&link) else {
                continue;
            };
            for seg in segments {
                if seg.is_expired(now) {
                    continue;
                }
                if ps.reinstate_segment(seg, now).is_ok() {
                    restored += 1;
                }
            }
        }
        restored
    }

    /// The earliest instant at which [`RevocationTable::restore_due`]
    /// would do work, if any revocation is outstanding.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.parked.values().map(|&(expires, _)| expires).min()
    }

    /// Links currently under an unexpired or lapsed-but-unprocessed
    /// revocation.
    pub fn revoked_links(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_proto::segment::SegmentType;
    use scion_types::{Asn, Duration, IfId, Isd, IsdAsn, LinkEnd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        TrustStore::bootstrap(
            (1..=5).map(|n| (ia(n), n == 1)),
            SimTime::ZERO + Duration::from_days(30),
        )
    }

    fn down_seg(tr: &TrustStore, mid_egress: u16, leaf: u64) -> PathSegment {
        let pcb = Pcb::originate(
            ia(1),
            IfId(mid_egress),
            SimTime::ZERO,
            Duration::from_hours(6),
            0,
            tr,
        )
        .extend(ia(leaf), IfId(1), IfId::NONE, vec![], tr);
        PathSegment::from_terminated_pcb(SegmentType::Down, pcb)
    }

    #[test]
    fn revocation_drops_only_affected_segments() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1), true);
        ps.register_down_segment(down_seg(&tr, 7, 3), SimTime::ZERO)
            .unwrap(); // via link 1#7 <-> 3#1
        ps.register_down_segment(down_seg(&tr, 8, 4), SimTime::ZERO)
            .unwrap(); // via link 1#8 <-> 4#1
        let failed = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));

        let mut ledger = Ledger::new();
        let r = revoke_segments(&mut ps, failed, 3, &mut ledger, SimTime::ZERO);
        assert_eq!(r.segments_revoked, 1);
        assert_eq!(r.scmp_notifications, 3);
        assert!(ps.lookup_down(ia(3), SimTime::ZERO).unwrap().is_empty());
        assert_eq!(ps.lookup_down(ia(4), SimTime::ZERO).unwrap().len(), 1);
        // Ledger: 1 intra-ISD revocation + 3 global SCMP.
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
            1
        );
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::Global),
            3
        );
    }

    #[test]
    fn duplicate_revocation_is_idempotent_and_renews_ttl() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1), true);
        ps.register_down_segment(down_seg(&tr, 7, 3), SimTime::ZERO)
            .unwrap();
        let failed = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));
        let ttl = Duration::from_secs(5);

        let mut table = RevocationTable::new();
        let t0 = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(table.revoke_with_ttl(&mut ps, failed, t0, ttl), 1);
        // A second revocation for the same (still-down) link finds nothing
        // new to pull, but pushes the restoration deadline out.
        let t1 = t0 + Duration::from_secs(3);
        assert_eq!(table.revoke_with_ttl(&mut ps, failed, t1, ttl), 0);
        assert_eq!(table.next_expiry(), Some(t1 + ttl));
        assert!(table.is_revoked(failed, t0 + ttl));

        // Restoration happens once, with one copy of the segment.
        assert_eq!(table.restore_due(&mut ps, t0 + ttl), 0, "TTL was renewed");
        assert_eq!(table.restore_due(&mut ps, t1 + ttl), 1);
        assert_eq!(ps.lookup_down(ia(3), t1 + ttl).unwrap().len(), 1);
        assert_eq!(table.revoked_links(), 0);
    }

    #[test]
    fn unknown_link_revocation_is_a_counted_noop() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1), true);
        ps.register_down_segment(down_seg(&tr, 7, 3), SimTime::ZERO)
            .unwrap();
        // No stored segment traverses this link.
        let unknown = LinkId::new(LinkEnd::new(ia(2), IfId(99)), LinkEnd::new(ia(5), IfId(99)));

        let mut table = RevocationTable::new();
        let t0 = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(
            table.revoke_with_ttl(&mut ps, unknown, t0, Duration::from_secs(5)),
            0
        );
        // The existing segment is untouched and restoration has nothing
        // to reinstate.
        assert_eq!(ps.lookup_down(ia(3), t0).unwrap().len(), 1);
        assert_eq!(table.restore_due(&mut ps, t0 + Duration::from_secs(5)), 0);
    }

    #[test]
    fn naturally_expired_segment_is_not_reinstated() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1), true);
        // Lifetime 6h (see `down_seg`); park it, then let the revocation
        // lapse *after* the segment's own expiry.
        ps.register_down_segment(down_seg(&tr, 7, 3), SimTime::ZERO)
            .unwrap();
        let failed = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));

        let mut table = RevocationTable::new();
        let t0 = SimTime::ZERO + Duration::from_hours(5);
        assert_eq!(
            table.revoke_with_ttl(&mut ps, failed, t0, Duration::from_hours(2)),
            1
        );
        let t_restore = t0 + Duration::from_hours(2); // 7h > 6h lifetime
        assert_eq!(table.restore_due(&mut ps, t_restore), 0);
        assert!(ps.lookup_down(ia(3), t_restore).unwrap().is_empty());
        assert_eq!(table.revoked_links(), 0, "lapsed entry is still cleared");
    }

    #[test]
    fn segment_uses_link_is_exact() {
        let tr = trust();
        let seg = down_seg(&tr, 7, 3);
        let on = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));
        let off = LinkId::new(LinkEnd::new(ia(1), IfId(9)), LinkEnd::new(ia(3), IfId(1)));
        assert!(segment_uses_link(&seg, on));
        assert!(!segment_uses_link(&seg, off));
    }
}
