//! Path revocation on link failure (§4.1 "Path Revocations").
//!
//! "The AS in which the failing link is located revokes the affected path
//! segments at the core path server, which is an intra-ISD operation.
//! Endpoints and border routers that use a path containing a failed link
//! are informed of the link failure through SCION Control Message Protocol
//! (SCMP) messages sent by the border router observing the failed link."

use scion_proto::segment::PathSegment;
use scion_proto::wire;
use scion_types::{LinkId, SimTime};

use crate::ledger::{Component, Ledger, Scope};
use crate::server::PathServer;

/// Result of a link-failure revocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Revocation {
    /// Segments dropped from the core path server.
    pub segments_revoked: usize,
    /// SCMP notifications issued to endpoints with active flows.
    pub scmp_notifications: u64,
}

/// True if `seg` traverses `failed`.
pub fn segment_uses_link(seg: &PathSegment, failed: LinkId) -> bool {
    seg.links()
        .iter()
        .any(|&(a, b)| LinkId::new(a, b) == failed)
}

/// Performs the two reactions to a failed link:
///
/// 1. deregisters every affected segment at `core_ps` (one intra-ISD
///    revocation message, accounted to the ledger);
/// 2. issues one SCMP message per active flow that used the link
///    (`active_flows_on_link`), accounted at the appropriate scope.
pub fn revoke_segments(
    core_ps: &mut PathServer,
    failed: LinkId,
    active_flows_on_link: u64,
    ledger: &mut Ledger,
    now: SimTime,
) -> Revocation {
    let segments_revoked = core_ps.deregister_where(|s| segment_uses_link(s, failed));

    // The revocation message itself: AS → core PS, intra-ISD.
    ledger.record(
        Component::PathRevocation,
        Scope::IntraIsd,
        wire::SCMP_REVOCATION,
    );
    ledger.record_event(Component::PathRevocation, now);

    // SCMP notifications to endpoints currently using the link. These can
    // cross ISDs (the endpoint may be anywhere), hence Global scope.
    for _ in 0..active_flows_on_link {
        ledger.record(
            Component::PathRevocation,
            Scope::Global,
            wire::SCMP_REVOCATION,
        );
    }

    Revocation {
        segments_revoked,
        scmp_notifications: active_flows_on_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_proto::segment::SegmentType;
    use scion_types::{Asn, Duration, IfId, Isd, IsdAsn, LinkEnd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        TrustStore::bootstrap(
            (1..=5).map(|n| (ia(n), n == 1)),
            SimTime::ZERO + Duration::from_days(30),
        )
    }

    fn down_seg(tr: &TrustStore, mid_egress: u16, leaf: u64) -> PathSegment {
        let pcb = Pcb::originate(
            ia(1),
            IfId(mid_egress),
            SimTime::ZERO,
            Duration::from_hours(6),
            0,
            tr,
        )
        .extend(ia(leaf), IfId(1), IfId::NONE, vec![], tr);
        PathSegment::from_terminated_pcb(SegmentType::Down, pcb)
    }

    #[test]
    fn revocation_drops_only_affected_segments() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1), true);
        ps.register_down_segment(down_seg(&tr, 7, 3), SimTime::ZERO); // via link 1#7 <-> 3#1
        ps.register_down_segment(down_seg(&tr, 8, 4), SimTime::ZERO); // via link 1#8 <-> 4#1
        let failed = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));

        let mut ledger = Ledger::new();
        let r = revoke_segments(&mut ps, failed, 3, &mut ledger, SimTime::ZERO);
        assert_eq!(r.segments_revoked, 1);
        assert_eq!(r.scmp_notifications, 3);
        assert!(ps.lookup_down(ia(3), SimTime::ZERO).is_empty());
        assert_eq!(ps.lookup_down(ia(4), SimTime::ZERO).len(), 1);
        // Ledger: 1 intra-ISD revocation + 3 global SCMP.
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
            1
        );
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::Global),
            3
        );
    }

    #[test]
    fn segment_uses_link_is_exact() {
        let tr = trust();
        let seg = down_seg(&tr, 7, 3);
        let on = LinkId::new(LinkEnd::new(ia(1), IfId(7)), LinkEnd::new(ia(3), IfId(1)));
        let off = LinkId::new(LinkEnd::new(ia(1), IfId(9)), LinkEnd::new(ia(3), IfId(1)));
        assert!(segment_uses_link(&seg, on));
        assert!(!segment_uses_link(&seg, off));
    }
}
