//! Per-component control-plane accounting: the measured Table 1.
//!
//! Table 1 characterizes each control-plane component by the *scope* of
//! its messages (AS / ISD / global) and its *frequency* (hours / minutes /
//! seconds). The ledger records every message with its component and scope
//! and keeps event timestamps per component, so the table can be printed
//! from measurements rather than asserted.

use std::collections::HashMap;

use scion_types::{Duration, SimTime};

/// The SCION control-plane components of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Core-AS PCB origination and propagation.
    CoreBeaconing,
    /// Intra-ISD PCB propagation toward leaf ASes.
    IntraIsdBeaconing,
    /// Down-segment lookup at a core path server.
    DownSegmentLookup,
    /// Core-segment lookup between core path servers.
    CoreSegmentLookup,
    /// Endpoint path lookup at the local path server.
    EndpointPathLookup,
    /// Segment (de-)registration by leaf ASes.
    PathRegistration,
    /// Path revocation after a link failure.
    PathRevocation,
}

impl Component {
    /// All components, in Table 1 row order.
    pub const ALL: [Component; 7] = [
        Component::CoreBeaconing,
        Component::IntraIsdBeaconing,
        Component::DownSegmentLookup,
        Component::CoreSegmentLookup,
        Component::EndpointPathLookup,
        Component::PathRegistration,
        Component::PathRevocation,
    ];

    /// Row label matching the paper's wording.
    pub fn label(self) -> &'static str {
        match self {
            Component::CoreBeaconing => "Core Beaconing",
            Component::IntraIsdBeaconing => "Intra-ISD Beaconing",
            Component::DownSegmentLookup => "Down-Path Segment Lookup",
            Component::CoreSegmentLookup => "Core-Path Segment Lookup",
            Component::EndpointPathLookup => "Endpoint Path Lookup",
            Component::PathRegistration => "Path (De-)Registration",
            Component::PathRevocation => "Path Revocation",
        }
    }
}

/// Communication scope of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Between entities of one AS.
    IntraAs,
    /// Between ASes of one ISD.
    IntraIsd,
    /// Across ISDs.
    Global,
}

impl Scope {
    /// Column label matching the paper's wording.
    pub fn label(self) -> &'static str {
        match self {
            Scope::IntraAs => "AS",
            Scope::IntraIsd => "ISD",
            Scope::Global => "Global",
        }
    }
}

/// Frequency classes of Table 1, derived from the measured median period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrequencyClass {
    /// Median inter-event period of an hour or more.
    Hours,
    /// Median inter-event period between a minute and an hour.
    Minutes,
    /// Median inter-event period under a minute.
    Seconds,
}

impl FrequencyClass {
    /// Classifies a period.
    pub fn of(period: Duration) -> FrequencyClass {
        if period >= Duration::from_hours(1) {
            FrequencyClass::Hours
        } else if period >= Duration::from_mins(1) {
            FrequencyClass::Minutes
        } else {
            FrequencyClass::Seconds
        }
    }

    /// Column label matching the paper's wording.
    pub fn label(self) -> &'static str {
        match self {
            FrequencyClass::Hours => "Hours",
            FrequencyClass::Minutes => "Minutes",
            FrequencyClass::Seconds => "Seconds",
        }
    }
}

#[derive(Clone, Debug, Default)]
struct ComponentStats {
    messages: u64,
    bytes: u64,
    by_scope: HashMap<Scope, u64>,
    first_event: Option<SimTime>,
    last_event: Option<SimTime>,
    events: u64,
}

/// The accounting ledger.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    stats: HashMap<Component, ComponentStats>,
}

/// A printable Table 1 row.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The component this row accounts for.
    pub component: Component,
    /// The widest scope this component's messages reached.
    pub scope: Option<Scope>,
    /// Frequency class of the median inter-event period, if any events
    /// were recorded.
    pub frequency: Option<FrequencyClass>,
    /// Total messages recorded.
    pub messages: u64,
    /// Total bytes recorded.
    pub bytes: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records one message of `bytes` for `component` at `scope`.
    pub fn record(&mut self, component: Component, scope: Scope, bytes: u64) {
        let s = self.stats.entry(component).or_default();
        s.messages += 1;
        s.bytes += bytes;
        *s.by_scope.entry(scope).or_insert(0) += 1;
    }

    /// Records an aggregate of `messages` messages totalling `bytes` for
    /// `component` at `scope` (bulk accounting from pre-aggregated
    /// counters).
    pub fn record_many(&mut self, component: Component, scope: Scope, messages: u64, bytes: u64) {
        let s = self.stats.entry(component).or_default();
        s.messages += messages;
        s.bytes += bytes;
        *s.by_scope.entry(scope).or_insert(0) += messages;
    }

    /// Records one *operation event* (e.g. "a beaconing interval ran",
    /// "a lookup happened") at `at` — the basis of the frequency column.
    pub fn record_event(&mut self, component: Component, at: SimTime) {
        let s = self.stats.entry(component).or_default();
        if s.first_event.is_none() {
            s.first_event = Some(at);
        }
        s.last_event = Some(at);
        s.events += 1;
    }

    /// Total messages for a component.
    pub fn messages(&self, component: Component) -> u64 {
        self.stats.get(&component).map_or(0, |s| s.messages)
    }

    /// Total bytes for a component.
    pub fn bytes(&self, component: Component) -> u64 {
        self.stats.get(&component).map_or(0, |s| s.bytes)
    }

    /// Message count of a component at one scope.
    pub fn messages_at(&self, component: Component, scope: Scope) -> u64 {
        self.stats
            .get(&component)
            .and_then(|s| s.by_scope.get(&scope))
            .copied()
            .unwrap_or(0)
    }

    /// The widest scope the component's messages reached.
    pub fn widest_scope(&self, component: Component) -> Option<Scope> {
        let s = self.stats.get(&component)?;
        s.by_scope.keys().copied().max()
    }

    /// Mean period between operation events.
    pub fn mean_period(&self, component: Component) -> Option<Duration> {
        let s = self.stats.get(&component)?;
        let (first, last) = (s.first_event?, s.last_event?);
        if s.events < 2 {
            return None;
        }
        let span = last.since(first);
        Some(Duration::from_micros(span.as_micros() / (s.events - 1)))
    }

    /// Produces the measured Table 1.
    pub fn table(&self) -> Vec<TableRow> {
        Component::ALL
            .iter()
            .map(|&c| TableRow {
                component: c,
                scope: self.widest_scope(c),
                frequency: self.mean_period(c).map(FrequencyClass::of),
                messages: self.messages(c),
                bytes: self.bytes(c),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn records_messages_and_scopes() {
        let mut l = Ledger::new();
        l.record(Component::DownSegmentLookup, Scope::Global, 100);
        l.record(Component::DownSegmentLookup, Scope::IntraIsd, 50);
        assert_eq!(l.messages(Component::DownSegmentLookup), 2);
        assert_eq!(l.bytes(Component::DownSegmentLookup), 150);
        assert_eq!(
            l.messages_at(Component::DownSegmentLookup, Scope::Global),
            1
        );
        assert_eq!(
            l.widest_scope(Component::DownSegmentLookup),
            Some(Scope::Global)
        );
        assert_eq!(l.widest_scope(Component::PathRevocation), None);
    }

    #[test]
    fn frequency_classes() {
        assert_eq!(
            FrequencyClass::of(Duration::from_hours(6)),
            FrequencyClass::Hours
        );
        assert_eq!(
            FrequencyClass::of(Duration::from_mins(10)),
            FrequencyClass::Minutes
        );
        assert_eq!(
            FrequencyClass::of(Duration::from_secs(3)),
            FrequencyClass::Seconds
        );
    }

    #[test]
    fn mean_period_from_events() {
        let mut l = Ledger::new();
        for i in 0..7 {
            l.record_event(Component::CoreBeaconing, t(i * 600));
        }
        let p = l.mean_period(Component::CoreBeaconing).unwrap();
        assert_eq!(p, Duration::from_mins(10));
        assert_eq!(FrequencyClass::of(p), FrequencyClass::Minutes);
        // One event: no period.
        l.record_event(Component::PathRevocation, t(5));
        assert_eq!(l.mean_period(Component::PathRevocation), None);
    }

    #[test]
    fn table_covers_all_components() {
        let l = Ledger::new();
        let rows = l.table();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].component.label(), "Core Beaconing");
    }

    #[test]
    fn scope_ordering_makes_global_widest() {
        assert!(Scope::IntraAs < Scope::IntraIsd);
        assert!(Scope::IntraIsd < Scope::Global);
    }
}
