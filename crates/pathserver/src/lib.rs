//! The path-server infrastructure (paper §2.2, §4.1 and Table 1).
//!
//! Beaconing *pushes* path segments down the hierarchy; everything else in
//! SCION's control plane is *pull*: "a separate path-server infrastructure
//! operates a pull-based path segment lookup with caching, without the need
//! for global broadcast" (§4.1, Mechanism 6). This crate implements those
//! components:
//!
//! * [`server`] — path servers: core servers store the down-segments
//!   registered by their ISD's leaf ASes plus core-segments to other core
//!   ASes; local servers resolve endpoint lookups and cache remote
//!   segments (effective because paths live for hours and destination
//!   popularity is Zipf — §4.1);
//! * [`ledger`] — per-component message accounting with **scope**
//!   classification (intra-AS / intra-ISD / global) and inter-event
//!   periods: the measured reproduction of Table 1;
//! * [`workload`] — the Zipf destination-popularity model for endpoint
//!   lookups (§4.1 cites the Zipf distribution of Internet traffic);
//! * [`revocation`] — path revocation on link failure: intra-ISD
//!   revocation at the core path server plus SCMP notifications to
//!   affected endpoints (§4.1 "Path Revocations");
//! * [`resolver`] — lookup timeout and bounded retry with graceful
//!   degradation: exhausted lookups serve recently-expired cached
//!   segments flagged degraded, and negative-cache the destination to
//!   stop retry storms;
//! * [`overload`] — overload protection for the lookup plane:
//!   per-client token buckets, a bounded priority-aware admission queue
//!   with deterministic shedding, brownout stale-serving, and a circuit
//!   breaker on upstream core-server lookups.

#![warn(missing_docs)]

pub mod ledger;
pub mod overload;
pub mod resolver;
pub mod revocation;
pub mod server;
pub mod workload;

pub use ledger::{Component, Ledger, Scope};
pub use overload::{
    Admission, AdmissionQueue, BreakerDecision, BrownoutController, BrownoutTransition,
    CircuitBreaker, ClientAdmission, OverloadConfig, OverloadControl, OverloadStats, QueueOutcome,
    RequestClass, ShedReason, Ticket, TokenBucket, MILLITOKENS_PER_REQUEST,
};
pub use resolver::{Resolution, Resolver, ResolverConfig, ResolverStats, RetryAction};
pub use revocation::{revoke_segments, Revocation, RevocationTable};
pub use server::{CacheStats, LookupResult, PathServer, ServerError};
pub use workload::ZipfDestinations;
