//! Overload protection and graceful degradation for the path-lookup
//! plane.
//!
//! The paper's deployment story has path servers absorbing lookup load
//! from an Internet's worth of endhosts (§2.2, §4.1); "SCION Five Years
//! Later" calls out control-plane isolation under load as a core
//! requirement. This module is the admission side of that requirement,
//! four composable mechanisms in front of a [`crate::PathServer`]:
//!
//! 1. **Per-client token buckets** ([`TokenBucket`], [`ClientAdmission`])
//!    — a flash crowd of lookups from one client cannot starve the rest;
//!    generalizes the `ScmpLimiter` holdoff pattern from the dataplane to
//!    a refillable rate.
//! 2. **A bounded, priority-aware admission queue** ([`AdmissionQueue`])
//!    — registrations and revocations outrank lookups, cache-hit lookups
//!    outrank cache-miss fan-out; when the queue is full the
//!    lowest-priority, youngest work is shed *deterministically*.
//! 3. **Brownout mode** ([`BrownoutController`]) — when utilization
//!    crosses a threshold, cache-miss lookups are answered from
//!    stale-but-valid cache (the [`crate::Resolution::Degraded`]
//!    machinery) instead of fanning out upstream; hysteresis keeps the
//!    mode from flapping.
//! 4. **A circuit breaker on upstream lookups** ([`CircuitBreaker`]) —
//!    consecutive upstream failures trip the breaker open; while open,
//!    misses short-circuit to degraded serving, and after a cooldown a
//!    single half-open probe tests whether the upstream recovered.
//!
//! All state lives in ordered maps and integer arithmetic, so for a given
//! request sequence every admit/shed/brownout/breaker decision replays
//! byte-identically — the property `tests/overload_determinism.rs` gates.

use std::collections::BTreeMap;

use scion_types::{Duration, IsdAsn, SimTime};
use serde::Serialize;

/// Millitokens per request: buckets refill in 1/1000ths of a request so
/// sub-1-rps client rates stay exact in integer arithmetic.
pub const MILLITOKENS_PER_REQUEST: u64 = 1_000;

/// The work classes the admission queue distinguishes, highest priority
/// first. Revocations carry failure signal (losing one keeps serving dead
/// paths), registrations keep the authoritative store fresh, and of the
/// lookups the cache hits are an order of magnitude cheaper than the
/// upstream fan-out a miss triggers — so under pressure the misses go
/// first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum RequestClass {
    /// Segment revocation after a link failure.
    Revocation,
    /// Segment (re-)registration from a leaf AS.
    Registration,
    /// Lookup answerable from the local cache.
    LookupHit,
    /// Lookup requiring an upstream core-server fan-out.
    LookupMiss,
}

impl RequestClass {
    /// Shed priority: lower sheds last.
    pub fn priority(self) -> u8 {
        match self {
            RequestClass::Revocation => 0,
            RequestClass::Registration => 1,
            RequestClass::LookupHit => 2,
            RequestClass::LookupMiss => 3,
        }
    }

    /// Stable wire name, keying trace annotations.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Revocation => "revocation",
            RequestClass::Registration => "registration",
            RequestClass::LookupHit => "lookup_hit",
            RequestClass::LookupMiss => "lookup_miss",
        }
    }

    /// True for the two lookup classes (the ones subject to per-client
    /// rate limiting; infrastructure traffic bypasses the buckets).
    pub fn is_lookup(self) -> bool {
        matches!(self, RequestClass::LookupHit | RequestClass::LookupMiss)
    }

    /// All classes, priority order.
    pub const ALL: [RequestClass; 4] = [
        RequestClass::Revocation,
        RequestClass::Registration,
        RequestClass::LookupHit,
        RequestClass::LookupMiss,
    ];
}

/// A deterministic token bucket over virtual time.
///
/// Integer millitoken arithmetic: refill is `rate × elapsed_µs / 10⁶`,
/// truncated, accumulated from the last refill instant — two buckets fed
/// the same request sequence make identical decisions on any host.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Burst ceiling, millitokens. A zero-capacity bucket admits nothing.
    capacity_mt: u64,
    /// Currently available millitokens.
    available_mt: u64,
    /// Refill rate, millitokens per virtual second.
    rate_mt_per_sec: u64,
    /// Instant of the last refill accrual.
    last_refill: SimTime,
    /// Sub-millitoken refill progress, in millitoken-microseconds
    /// (1 000 000 = one millitoken): exact integer accrual, no float and
    /// no truncation loss.
    acc_mt_us: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_mt_per_sec` millitokens per second with
    /// burst capacity `capacity_mt`, starting full at `now`.
    pub fn new(rate_mt_per_sec: u64, capacity_mt: u64, now: SimTime) -> TokenBucket {
        TokenBucket {
            capacity_mt,
            available_mt: capacity_mt,
            rate_mt_per_sec,
            last_refill: now,
            acc_mt_us: 0,
        }
    }

    /// Accrues refill up to `now`. Saturates at capacity; a zero-capacity
    /// bucket stays empty no matter how long it refills.
    pub fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed_us = now.since(self.last_refill).as_micros();
        self.last_refill = now;
        self.acc_mt_us = self
            .acc_mt_us
            .saturating_add(self.rate_mt_per_sec.saturating_mul(elapsed_us));
        let earned = self.acc_mt_us / 1_000_000;
        if earned > 0 {
            self.acc_mt_us -= earned * 1_000_000;
            self.available_mt = self
                .available_mt
                .saturating_add(earned)
                .min(self.capacity_mt);
        }
        if self.available_mt == self.capacity_mt {
            // A full bucket banks nothing: refill while saturated must not
            // accumulate a hidden surplus beyond the burst ceiling.
            self.acc_mt_us = 0;
        }
    }

    /// Takes `cost_mt` millitokens if available after refilling to `now`.
    pub fn try_take(&mut self, now: SimTime, cost_mt: u64) -> bool {
        self.refill(now);
        if self.available_mt >= cost_mt {
            self.available_mt -= cost_mt;
            true
        } else {
            false
        }
    }

    /// Millitokens currently available (without accruing refill).
    pub fn available_mt(&self) -> u64 {
        self.available_mt
    }
}

/// Per-client token-bucket admission over one server's lookup traffic.
///
/// Buckets are created lazily per client AS and keyed in a `BTreeMap`, so
/// admission decisions replay deterministically for a deterministic
/// request order.
#[derive(Clone, Debug)]
pub struct ClientAdmission {
    rate_mt_per_sec: u64,
    burst_mt: u64,
    buckets: BTreeMap<IsdAsn, TokenBucket>,
    admitted: u64,
    limited: u64,
}

impl ClientAdmission {
    /// An admission table whose per-client buckets refill at
    /// `rate_mt_per_sec` with burst `burst_mt`.
    pub fn new(rate_mt_per_sec: u64, burst_mt: u64) -> ClientAdmission {
        ClientAdmission {
            rate_mt_per_sec,
            burst_mt,
            buckets: BTreeMap::new(),
            admitted: 0,
            limited: 0,
        }
    }

    /// Charges one request to `client`'s bucket at `now`. A new client's
    /// bucket starts full.
    pub fn admit(&mut self, client: IsdAsn, now: SimTime) -> bool {
        let bucket = self
            .buckets
            .entry(client)
            .or_insert_with(|| TokenBucket::new(self.rate_mt_per_sec, self.burst_mt, now));
        if bucket.try_take(now, MILLITOKENS_PER_REQUEST) {
            self.admitted += 1;
            true
        } else {
            self.limited += 1;
            false
        }
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rate-limited so far.
    pub fn limited(&self) -> u64 {
        self.limited
    }

    /// Number of client buckets in the table.
    pub fn clients(&self) -> usize {
        self.buckets.len()
    }
}

/// One admitted request waiting in the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Caller-assigned request id (the driver maps it back to its own
    /// request record).
    pub id: u64,
    /// The client AS that issued the request.
    pub client: IsdAsn,
    /// Work class, deciding shed priority.
    pub class: RequestClass,
    /// Arrival instant (for time-in-queue accounting).
    pub arrived: SimTime,
}

/// Outcome of offering a request to the bounded queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueOutcome {
    /// The request was enqueued; the queue had room.
    Enqueued,
    /// The request was enqueued by shedding a lower-priority victim.
    EnqueuedEvicting(Ticket),
    /// The queue was full of equal-or-higher-priority work; the request
    /// itself was shed.
    Rejected,
}

/// A bounded admission queue with deterministic priority-aware shedding.
///
/// Orders work by `(priority, arrival, seq)`: higher-priority classes
/// drain first, FIFO within a class, and the monotonic `seq` breaks ties
/// between identical timestamps so the shed order is stable. When full,
/// an incoming request either evicts the worst queued entry (strictly
/// lower priority, or same priority but younger) or is itself rejected.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: BTreeMap<(u8, u64, u64), Ticket>,
    next_seq: u64,
    shed: u64,
    peak_depth: usize,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` requests (`capacity` 0 sheds
    /// everything).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity,
            queue: BTreeMap::new(),
            next_seq: 0,
            shed: 0,
            peak_depth: 0,
        }
    }

    /// Offers `ticket`; on overflow the lowest-priority youngest entry
    /// (incoming included) is shed.
    pub fn offer(&mut self, ticket: Ticket) -> QueueOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (ticket.class.priority(), ticket.arrived.as_micros(), seq);
        if self.queue.len() < self.capacity {
            self.queue.insert(key, ticket);
            self.peak_depth = self.peak_depth.max(self.queue.len());
            return QueueOutcome::Enqueued;
        }
        let Some(&worst_key) = self.queue.keys().next_back() else {
            // Zero capacity: everything is shed on arrival.
            self.shed += 1;
            return QueueOutcome::Rejected;
        };
        if key < worst_key {
            let victim = self
                .queue
                .remove(&worst_key)
                .unwrap_or_else(|| unreachable!("worst key just listed"));
            self.queue.insert(key, ticket);
            self.shed += 1;
            QueueOutcome::EnqueuedEvicting(victim)
        } else {
            self.shed += 1;
            QueueOutcome::Rejected
        }
    }

    /// Pops the highest-priority oldest request.
    pub fn pop(&mut self) -> Option<Ticket> {
        let (&key, _) = self.queue.iter().next()?;
        self.queue.remove(&key)
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queue occupancy in permille of capacity (1000 = full).
    pub fn occupancy_permille(&self) -> u32 {
        if self.capacity == 0 {
            return 1000;
        }
        ((self.queue.len() * 1000) / self.capacity) as u32
    }

    /// Requests shed at this queue so far (rejected or evicted).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

/// A brownout transition reported by [`BrownoutController::observe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrownoutTransition {
    /// Utilization crossed the enter threshold: start serving stale.
    Entered,
    /// Utilization fell below the exit threshold: resume fresh fan-out.
    Exited,
}

/// Hysteretic brownout mode: above `enter_permille` utilization the
/// server answers cache-miss lookups from stale-but-valid cache instead
/// of querying upstream; it only leaves brownout once utilization drops
/// below the (lower) `exit_permille`, so the mode cannot flap on a
/// boundary load.
#[derive(Clone, Debug)]
pub struct BrownoutController {
    enter_permille: u32,
    exit_permille: u32,
    active: bool,
    entries: u64,
    exits: u64,
}

impl BrownoutController {
    /// A controller entering brownout at `enter_permille` utilization and
    /// exiting below `exit_permille` (enter must exceed exit for the
    /// hysteresis to bite; equal thresholds degenerate to a plain
    /// comparator).
    pub fn new(enter_permille: u32, exit_permille: u32) -> BrownoutController {
        BrownoutController {
            enter_permille,
            exit_permille: exit_permille.min(enter_permille),
            active: false,
            entries: 0,
            exits: 0,
        }
    }

    /// Feeds one utilization observation (permille); returns the
    /// transition it caused, if any.
    pub fn observe(&mut self, utilization_permille: u32) -> Option<BrownoutTransition> {
        if !self.active && utilization_permille >= self.enter_permille {
            self.active = true;
            self.entries += 1;
            Some(BrownoutTransition::Entered)
        } else if self.active && utilization_permille < self.exit_permille {
            self.active = false;
            self.exits += 1;
            Some(BrownoutTransition::Exited)
        } else {
            None
        }
    }

    /// True while the server is in brownout.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Times brownout was entered.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Times brownout was exited.
    pub fn exits(&self) -> u64 {
        self.exits
    }
}

/// What the breaker tells the caller to do with an upstream-bound lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: forward upstream normally.
    Forward,
    /// Half-open: forward exactly this request as the recovery probe.
    Probe,
    /// Open (or half-open with a probe already out): do not touch the
    /// upstream; serve degraded locally.
    ShortCircuit,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open {
        until: SimTime,
    },
    /// Half-open with the single allowed probe already dispatched.
    Probing,
}

/// A circuit breaker over upstream core-server lookups.
///
/// `failure_threshold` consecutive upstream failures trip it open; while
/// open every upstream-bound lookup short-circuits to degraded local
/// serving. After `cooldown` the next lookup goes out as a half-open
/// probe: success closes the breaker, failure re-opens it for another
/// cooldown.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    state: BreakerState,
    trips: u64,
    probes: u64,
    short_circuits: u64,
}

impl CircuitBreaker {
    /// A breaker tripping after `failure_threshold` consecutive failures,
    /// probing again after `cooldown`. A threshold of 0 is clamped to 1
    /// (a breaker that trips on nothing protects nothing).
    pub fn new(failure_threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            trips: 0,
            probes: 0,
            short_circuits: 0,
        }
    }

    /// Decides the fate of one upstream-bound lookup at `now`.
    pub fn decide(&mut self, now: SimTime) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Forward,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::Probing;
                self.probes += 1;
                BreakerDecision::Probe
            }
            BreakerState::Open { .. } | BreakerState::Probing => {
                self.short_circuits += 1;
                BreakerDecision::ShortCircuit
            }
        }
    }

    /// Reports an upstream success (response arrived in time): closes the
    /// breaker and clears the failure streak.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Reports an upstream failure at `now`. Returns `true` when this
    /// failure tripped the breaker open (callers emit the
    /// `BreakerTripped` trace on exactly these).
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Probing => {
                // The recovery probe failed: straight back to open.
                self.state = BreakerState::Open {
                    until: now + self.cooldown,
                };
                self.trips += 1;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cooldown,
                    };
                    self.trips += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// True while the breaker is not closed.
    pub fn is_open(&self) -> bool {
        !matches!(self.state, BreakerState::Closed)
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probes dispatched.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Upstream lookups short-circuited while open.
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits
    }
}

/// Tuning of the bundled overload control.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Bound of the admission queue.
    pub queue_capacity: usize,
    /// Per-client token-bucket refill, millitokens per second
    /// ([`MILLITOKENS_PER_REQUEST`] per request).
    pub client_rate_mt_per_sec: u64,
    /// Per-client burst capacity, millitokens.
    pub client_burst_mt: u64,
    /// Queue occupancy (permille) at which brownout engages.
    pub brownout_enter_permille: u32,
    /// Queue occupancy (permille) below which brownout releases.
    pub brownout_exit_permille: u32,
    /// Consecutive upstream failures tripping the circuit breaker.
    pub breaker_failure_threshold: u32,
    /// Breaker cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        // Queue bound ≈ 250 ms of work at the reference 1 000 rps service
        // rate, so worst-case time-in-queue stays far inside a 1 s client
        // deadline. Brownout engages at 85% occupancy and needs a drain
        // to 55% to release; the breaker mirrors the resolver's bounded
        // patience (5 strikes, 2 s cooldown).
        OverloadConfig {
            queue_capacity: 256,
            client_rate_mt_per_sec: 50 * MILLITOKENS_PER_REQUEST,
            client_burst_mt: 25 * MILLITOKENS_PER_REQUEST,
            brownout_enter_permille: 850,
            brownout_exit_permille: 550,
            breaker_failure_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ShedReason {
    /// The client's token bucket was empty.
    RateLimited,
    /// The queue was full of equal-or-higher-priority work.
    QueueFull,
    /// The request was queued but later evicted by higher-priority work.
    Evicted,
}

impl ShedReason {
    /// Stable reason code for counters and traces.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::Evicted => "evicted",
        }
    }
}

/// Outcome of offering one request to [`OverloadControl::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted and queued.
    Enqueued,
    /// Admitted by evicting a lower-priority victim; the victim's ticket
    /// is returned so the driver can send its client the busy signal.
    EnqueuedEvicting(Ticket),
    /// Shed on arrival for the given reason.
    Shed(ShedReason),
}

/// Lifetime counters of one server's overload control.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct OverloadStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed because the client's token bucket was empty.
    pub shed_rate_limited: u64,
    /// Requests shed because the queue was full.
    pub shed_queue_full: u64,
    /// Queued requests evicted by higher-priority arrivals.
    pub shed_evicted: u64,
    /// Times brownout mode was entered.
    pub brownout_entries: u64,
    /// Times brownout mode was exited.
    pub brownout_exits: u64,
    /// Cache-miss lookups answered stale because of brownout or an open
    /// breaker.
    pub stale_served: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Half-open probes dispatched.
    pub breaker_probes: u64,
    /// Upstream lookups short-circuited while the breaker was open.
    pub breaker_short_circuits: u64,
}

impl OverloadStats {
    /// Total requests shed, all reasons.
    pub fn total_shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_evicted
    }
}

/// The bundled overload-control state a [`crate::PathServer`] carries:
/// per-client buckets in front of a bounded priority queue, plus the
/// brownout controller and upstream circuit breaker.
#[derive(Clone, Debug)]
pub struct OverloadControl {
    cfg: OverloadConfig,
    clients: ClientAdmission,
    queue: AdmissionQueue,
    brownout: BrownoutController,
    breaker: CircuitBreaker,
    stats: OverloadStats,
}

impl OverloadControl {
    /// Fresh overload control under `cfg`.
    pub fn new(cfg: OverloadConfig) -> OverloadControl {
        OverloadControl {
            cfg,
            clients: ClientAdmission::new(cfg.client_rate_mt_per_sec, cfg.client_burst_mt),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            brownout: BrownoutController::new(
                cfg.brownout_enter_permille,
                cfg.brownout_exit_permille,
            ),
            breaker: CircuitBreaker::new(cfg.breaker_failure_threshold, cfg.breaker_cooldown),
            stats: OverloadStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Offers one request: token-bucket admission (lookups only), then the
    /// bounded priority queue.
    pub fn offer(
        &mut self,
        client: IsdAsn,
        class: RequestClass,
        id: u64,
        now: SimTime,
    ) -> Admission {
        if class.is_lookup() && !self.clients.admit(client, now) {
            self.stats.shed_rate_limited += 1;
            return Admission::Shed(ShedReason::RateLimited);
        }
        let ticket = Ticket {
            id,
            client,
            class,
            arrived: now,
        };
        match self.queue.offer(ticket) {
            QueueOutcome::Enqueued => {
                self.stats.admitted += 1;
                Admission::Enqueued
            }
            QueueOutcome::EnqueuedEvicting(victim) => {
                self.stats.admitted += 1;
                self.stats.shed_evicted += 1;
                Admission::EnqueuedEvicting(victim)
            }
            QueueOutcome::Rejected => {
                self.stats.shed_queue_full += 1;
                Admission::Shed(ShedReason::QueueFull)
            }
        }
    }

    /// Pops the next request to serve (highest priority, oldest first).
    pub fn next_request(&mut self) -> Option<Ticket> {
        self.queue.pop()
    }

    /// Feeds the brownout controller the current queue occupancy;
    /// returns the transition it caused, if any.
    pub fn update_brownout(&mut self) -> Option<BrownoutTransition> {
        let t = self.brownout.observe(self.queue.occupancy_permille());
        match t {
            Some(BrownoutTransition::Entered) => self.stats.brownout_entries += 1,
            Some(BrownoutTransition::Exited) => self.stats.brownout_exits += 1,
            None => {}
        }
        t
    }

    /// True while brownout is in force (serve stale instead of fanning
    /// out).
    pub fn brownout_active(&self) -> bool {
        self.brownout.active()
    }

    /// Asks the breaker what to do with one upstream-bound lookup,
    /// folding the decision into the stats.
    pub fn breaker_decide(&mut self, now: SimTime) -> BreakerDecision {
        let d = self.breaker.decide(now);
        match d {
            BreakerDecision::Probe => self.stats.breaker_probes += 1,
            BreakerDecision::ShortCircuit => self.stats.breaker_short_circuits += 1,
            BreakerDecision::Forward => {}
        }
        d
    }

    /// Reports an upstream success to the breaker.
    pub fn breaker_success(&mut self) {
        self.breaker.on_success();
    }

    /// Reports an upstream failure; `true` when the breaker tripped.
    pub fn breaker_failure(&mut self, now: SimTime) -> bool {
        let tripped = self.breaker.on_failure(now);
        if tripped {
            self.stats.breaker_trips += 1;
        }
        tripped
    }

    /// Counts one stale (degraded) answer served under brownout or an
    /// open breaker.
    pub fn note_stale_served(&mut self) {
        self.stats.stale_served += 1;
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The admission queue (for occupancy and shed accounting).
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// The per-client admission table.
    pub fn clients(&self) -> &ClientAdmission {
        &self.clients
    }

    /// The upstream circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OverloadStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Isd};

    fn ia(n: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(n))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn token_bucket_at_zero_capacity_never_admits() {
        // Satellite edge case: refill at zero capacity must stay empty.
        let mut b = TokenBucket::new(1_000_000, 0, t(0));
        assert!(!b.try_take(t(0), 1));
        b.refill(t(3_600_000_000));
        assert_eq!(b.available_mt(), 0);
        assert!(!b.try_take(t(3_600_000_000), 1));
    }

    #[test]
    fn token_bucket_burst_then_drain_boundaries() {
        // Satellite edge case: exact boundaries of a burst-then-drain.
        // 10 rps refill, 5-token burst.
        let rate = 10 * MILLITOKENS_PER_REQUEST;
        let burst = 5 * MILLITOKENS_PER_REQUEST;
        let mut b = TokenBucket::new(rate, burst, t(0));
        for _ in 0..5 {
            assert!(b.try_take(t(0), MILLITOKENS_PER_REQUEST));
        }
        // Bucket drained: the 6th take at the same instant fails.
        assert!(!b.try_take(t(0), MILLITOKENS_PER_REQUEST));
        // One token refills in exactly 100 ms. 1 µs early: still short.
        assert!(!b.try_take(t(99_999), MILLITOKENS_PER_REQUEST));
        // At the exact boundary the token is whole again.
        assert!(b.try_take(t(100_000), MILLITOKENS_PER_REQUEST));
        // Refill saturates at the burst ceiling: after an hour idle only
        // 5 tokens are available, not 36 000.
        let later = t(3_600_000_000);
        b.refill(later);
        assert_eq!(b.available_mt(), burst);
    }

    #[test]
    fn token_bucket_truncation_does_not_lose_subtoken_progress() {
        // 1 rps: refilling in 400 ms steps must still earn a token by
        // 1 s, even though each step truncates to sub-token progress.
        let mut b = TokenBucket::new(MILLITOKENS_PER_REQUEST, MILLITOKENS_PER_REQUEST, t(0));
        assert!(b.try_take(t(0), MILLITOKENS_PER_REQUEST));
        b.refill(t(400));
        b.refill(t(800));
        b.refill(t(1_000_000));
        assert_eq!(b.available_mt(), MILLITOKENS_PER_REQUEST);
    }

    #[test]
    fn client_buckets_are_independent() {
        let mut adm = ClientAdmission::new(MILLITOKENS_PER_REQUEST, MILLITOKENS_PER_REQUEST);
        assert!(adm.admit(ia(1), t(0)));
        assert!(!adm.admit(ia(1), t(0)), "client 1 drained");
        assert!(adm.admit(ia(2), t(0)), "client 2 unaffected");
        assert_eq!(adm.admitted(), 2);
        assert_eq!(adm.limited(), 1);
        assert_eq!(adm.clients(), 2);
    }

    #[test]
    fn queue_sheds_lowest_priority_youngest_first() {
        let mut q = AdmissionQueue::new(3);
        let tk = |id, class, at| Ticket {
            id,
            client: ia(9),
            class,
            arrived: t(at),
        };
        assert_eq!(
            q.offer(tk(0, RequestClass::LookupMiss, 5)),
            QueueOutcome::Enqueued
        );
        assert_eq!(
            q.offer(tk(1, RequestClass::LookupHit, 5)),
            QueueOutcome::Enqueued
        );
        assert_eq!(
            q.offer(tk(2, RequestClass::LookupMiss, 7)),
            QueueOutcome::Enqueued
        );
        // Full. A registration evicts the youngest lowest-priority entry
        // (the miss that arrived at t=7), not the older miss.
        match q.offer(tk(3, RequestClass::Registration, 8)) {
            QueueOutcome::EnqueuedEvicting(v) => assert_eq!(v.id, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        // An incoming miss younger than every queued entry is rejected
        // outright.
        assert_eq!(
            q.offer(tk(4, RequestClass::LookupMiss, 9)),
            QueueOutcome::Rejected
        );
        // Drain order: registration, hit, old miss.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|tk| tk.id).collect();
        assert_eq!(order, vec![3, 1, 0]);
        assert_eq!(q.shed(), 2);
    }

    #[test]
    fn shed_order_is_stable_under_identical_timestamps() {
        // Satellite edge case: all arrivals share one timestamp; the
        // sequence number must keep admission and shedding stable.
        let mk = |id, class| Ticket {
            id,
            client: ia(1),
            class,
            arrived: t(100),
        };
        let run = || {
            let mut q = AdmissionQueue::new(2);
            let mut events = Vec::new();
            for (id, class) in [
                (0, RequestClass::LookupMiss),
                (1, RequestClass::LookupMiss),
                (2, RequestClass::LookupMiss),
                (3, RequestClass::LookupHit),
                (4, RequestClass::Revocation),
            ] {
                events.push(match q.offer(mk(id, class)) {
                    QueueOutcome::Enqueued => format!("enq:{id}"),
                    QueueOutcome::EnqueuedEvicting(v) => format!("evict:{}:{id}", v.id),
                    QueueOutcome::Rejected => format!("rej:{id}"),
                });
            }
            while let Some(tk) = q.pop() {
                events.push(format!("pop:{}", tk.id));
            }
            events
        };
        let a = run();
        assert_eq!(a, run(), "identical timestamps must replay identically");
        // Same-class ties break by arrival sequence: the younger miss
        // (id 1) is evicted before the older one (id 0).
        assert_eq!(
            a,
            vec![
                "enq:0",
                "enq:1",
                "rej:2",
                "evict:1:3",
                "evict:0:4",
                "pop:4",
                "pop:3"
            ]
        );
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        let mut q = AdmissionQueue::new(0);
        let ticket = Ticket {
            id: 0,
            client: ia(1),
            class: RequestClass::Revocation,
            arrived: t(0),
        };
        assert_eq!(q.offer(ticket), QueueOutcome::Rejected);
        assert_eq!(q.occupancy_permille(), 1000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn brownout_hysteresis_prevents_flapping() {
        let mut b = BrownoutController::new(850, 550);
        assert_eq!(b.observe(840), None);
        assert_eq!(b.observe(850), Some(BrownoutTransition::Entered));
        assert!(b.active());
        // Dropping between the thresholds keeps brownout in force.
        assert_eq!(b.observe(600), None);
        assert!(b.active());
        assert_eq!(b.observe(549), Some(BrownoutTransition::Exited));
        assert!(!b.active());
        assert_eq!((b.entries(), b.exits()), (1, 1));
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let mut cb = CircuitBreaker::new(3, Duration::from_secs(2));
        // Two failures: still closed.
        assert!(!cb.on_failure(t(0)));
        assert!(!cb.on_failure(t(1)));
        assert_eq!(cb.decide(t(2)), BreakerDecision::Forward);
        // Third failure trips it.
        assert!(cb.on_failure(t(2)));
        assert!(cb.is_open());
        // While open, everything short-circuits.
        assert_eq!(cb.decide(t(3)), BreakerDecision::ShortCircuit);
        assert_eq!(cb.decide(t(1_999_999)), BreakerDecision::ShortCircuit);
        // Cooldown elapsed: exactly one probe goes out; the rest keep
        // short-circuiting until the probe resolves.
        assert_eq!(cb.decide(t(2_000_002)), BreakerDecision::Probe);
        assert_eq!(cb.decide(t(2_000_003)), BreakerDecision::ShortCircuit);
        // Probe failure re-opens for another cooldown.
        assert!(cb.on_failure(t(2_100_000)));
        assert_eq!(cb.decide(t(2_100_001)), BreakerDecision::ShortCircuit);
        // Next probe succeeds: breaker closes, traffic forwards again.
        assert_eq!(cb.decide(t(4_100_001)), BreakerDecision::Probe);
        cb.on_success();
        assert!(!cb.is_open());
        assert_eq!(cb.decide(t(4_100_002)), BreakerDecision::Forward);
        assert_eq!(cb.trips(), 2);
        assert_eq!(cb.probes(), 2);
        assert!(cb.short_circuits() >= 4);
    }

    #[test]
    fn overload_control_end_to_end_accounting() {
        let cfg = OverloadConfig {
            queue_capacity: 2,
            client_rate_mt_per_sec: MILLITOKENS_PER_REQUEST,
            client_burst_mt: 2 * MILLITOKENS_PER_REQUEST,
            ..OverloadConfig::default()
        };
        let mut oc = OverloadControl::new(cfg);
        // Two lookups fit the burst and the queue.
        assert_eq!(
            oc.offer(ia(1), RequestClass::LookupHit, 0, t(0)),
            Admission::Enqueued
        );
        assert_eq!(
            oc.offer(ia(1), RequestClass::LookupMiss, 1, t(0)),
            Admission::Enqueued
        );
        // Third lookup from the same client: bucket empty.
        assert_eq!(
            oc.offer(ia(1), RequestClass::LookupHit, 2, t(0)),
            Admission::Shed(ShedReason::RateLimited)
        );
        // A revocation bypasses the bucket and evicts the queued miss.
        match oc.offer(ia(1), RequestClass::Revocation, 3, t(0)) {
            Admission::EnqueuedEvicting(v) => assert_eq!(v.id, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
        // Full queue + full-priority work: a second revocation is shed as
        // queue-full.
        assert_eq!(
            oc.offer(ia(2), RequestClass::LookupMiss, 4, t(0)),
            Admission::Shed(ShedReason::QueueFull)
        );
        let s = oc.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_rate_limited, 1);
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(s.shed_evicted, 1);
        assert_eq!(s.total_shed(), 3);
        // Queue is at 2/2: brownout engages immediately at the default
        // 850‰ threshold.
        assert_eq!(oc.update_brownout(), Some(BrownoutTransition::Entered));
        assert!(oc.brownout_active());
        assert_eq!(oc.next_request().map(|tk| tk.id), Some(3));
        assert_eq!(oc.next_request().map(|tk| tk.id), Some(0));
        assert_eq!(oc.update_brownout(), Some(BrownoutTransition::Exited));
    }
}
