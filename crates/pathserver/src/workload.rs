//! Zipf destination popularity for endpoint lookups.
//!
//! §4.1: "due to the Zipf distribution of Internet traffic's destinations,
//! scalability is further improved by caching path segments for popular
//! origin ASes, such as CDN providers."

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use scion_types::IsdAsn;

/// A Zipf sampler over a fixed destination set.
#[derive(Clone, Debug)]
pub struct ZipfDestinations {
    destinations: Vec<IsdAsn>,
    /// Cumulative weights for inverse-CDF sampling.
    cumulative: Vec<f64>,
    rng: ChaCha12Rng,
}

impl ZipfDestinations {
    /// Builds a sampler over `destinations` with Zipf exponent `s`
    /// (classic web-traffic fits use s ≈ 0.8–1.1). Rank order is the given
    /// order: the first destination is the most popular. `None` for an
    /// empty destination set — workload builders decide how to surface
    /// that, the library never panics.
    pub fn try_new(destinations: Vec<IsdAsn>, s: f64, seed: u64) -> Option<ZipfDestinations> {
        if destinations.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(destinations.len());
        let mut acc = 0.0;
        for rank in 1..=destinations.len() {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Some(ZipfDestinations {
            destinations,
            cumulative,
            rng: ChaCha12Rng::seed_from_u64(seed),
        })
    }

    /// Draws the next lookup destination.
    pub fn sample(&mut self) -> IsdAsn {
        // Invariant from construction: `cumulative` is non-empty.
        let total = *self.cumulative.last().unwrap_or(&1.0);
        let x = self.rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.destinations[idx.min(self.destinations.len() - 1)]
    }

    /// Number of destinations.
    pub fn len(&self) -> usize {
        self.destinations.len()
    }

    /// True if the destination set is empty (cannot happen post-new).
    pub fn is_empty(&self) -> bool {
        self.destinations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Isd};

    fn dests(n: u64) -> Vec<IsdAsn> {
        (1..=n)
            .map(|i| IsdAsn::new(Isd(1), Asn::from_u64(i)))
            .collect()
    }

    #[test]
    fn top_rank_dominates() {
        let mut z = ZipfDestinations::try_new(dests(100), 1.0, 42).unwrap();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(z.sample()).or_insert(0u32) += 1;
        }
        let first = counts
            .get(&IsdAsn::new(Isd(1), Asn::from_u64(1)))
            .copied()
            .unwrap_or(0);
        let tail = counts
            .get(&IsdAsn::new(Isd(1), Asn::from_u64(90)))
            .copied()
            .unwrap_or(0);
        assert!(first > 1000, "rank-1 should dominate, got {first}");
        assert!(first > tail * 10, "rank-1 {first} vs rank-90 {tail}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ZipfDestinations::try_new(dests(50), 0.9, 7).unwrap();
        let mut b = ZipfDestinations::try_new(dests(50), 0.9, 7).unwrap();
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn all_destinations_reachable() {
        let mut z = ZipfDestinations::try_new(dests(5), 0.5, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(z.sample());
        }
        assert_eq!(seen.len(), 5);
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }
}
