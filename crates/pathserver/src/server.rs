//! Path servers: segment registration, lookup, and caching.
//!
//! §2.2: "A global path server infrastructure is used to disseminate path
//! segments. … The infrastructure bears similarities to DNS, where
//! information is fetched on-demand only. A core AS's path server stores
//! all the intra-ISD path segments that were registered by leaf ASes of
//! its own ISD, and core-path segments to reach other core ASes."
//!
//! §4.1: lookups are amortized by caching — "path servers and endpoints
//! cache path segments to serve subsequent requests for a given origin AS,
//! which is effective in SCION due to the long lifetime of a path".

use std::collections::HashMap;

use scion_proto::segment::{PathSegment, SegmentType};
use scion_telemetry::{ids, Label, Telemetry, TraceEvent};
use scion_types::{Duration, Isd, IsdAsn, SimTime};
use serde::Serialize;

use crate::overload::{OverloadConfig, OverloadControl};

/// Stable wire names of the segment types for trace records.
fn seg_type_name(ty: SegmentType) -> &'static str {
    match ty {
        SegmentType::Up => "up",
        SegmentType::Down => "down",
        SegmentType::Core => "core",
    }
}

/// Why a path-server operation was rejected — the typed, non-panicking
/// surface of role and segment-type misuse. Untrusted inputs (segments of
/// the wrong type arriving at the wrong server) must hit these variants,
/// never an `assert!`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The operation requires a core path server.
    NotCore {
        /// The operation that was attempted (stable code, e.g.
        /// `"register_down"`).
        op: &'static str,
    },
    /// The segment's type does not match the store it was offered to.
    WrongSegmentType {
        /// The type the store accepts.
        expected: SegmentType,
        /// The type that arrived.
        got: SegmentType,
    },
}

impl ServerError {
    /// Stable reason code, keying the `pathserver.rejected_ops` counter's
    /// trace annotations.
    pub fn reason(&self) -> &'static str {
        match self {
            ServerError::NotCore { .. } => "not_core",
            ServerError::WrongSegmentType { .. } => "wrong_segment_type",
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::NotCore { op } => {
                write!(f, "{op} requires a core path server")
            }
            ServerError::WrongSegmentType { expected, got } => {
                write!(f, "expected a {expected:?} segment, got {got:?}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Outcome of a lookup against one server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Segments served from the local store or cache.
    Hit(Vec<PathSegment>),
    /// Not available locally — the caller must query `upstream`.
    Miss,
}

/// Lifetime counters of one server's cache and degradation machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from a live cached entry.
    pub hits: u64,
    /// Lookups with no live cached answer.
    pub misses: u64,
    /// Lookups answered with recently-expired segments after upstream
    /// retries exhausted (graceful degradation).
    pub degraded_serves: u64,
    /// Lookups short-circuited by the negative cache.
    pub negative_hits: u64,
    /// Expired authoritative segments garbage-collected at registration.
    pub segments_purged: u64,
}

/// A path server. The same type serves both roles:
/// core servers hold the authoritative registrations, non-core (local)
/// servers hold their AS's own up-segments plus a TTL cache of remote
/// answers.
#[derive(Clone, Debug)]
pub struct PathServer {
    ia: IsdAsn,
    core: bool,
    /// Authoritative down-segments per destination leaf AS (core servers).
    down_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Authoritative core-segments per remote core AS (core servers).
    core_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Up-segments of the local AS (local servers).
    up_segments: Vec<PathSegment>,
    /// Response cache: destination → (segments, inserted-at). Entries are
    /// kept for [`PathServer::STALE_GRACE`] past expiry so exhausted
    /// upstream lookups can degrade onto them.
    cache: HashMap<IsdAsn, (Vec<PathSegment>, SimTime)>,
    /// Negative cache: destination → verdict-expiry. A destination whose
    /// upstream lookup recently gave up is answered locally until the
    /// verdict lapses, stopping retry storms against a dead origin.
    negative: HashMap<IsdAsn, SimTime>,
    /// Cache and degradation statistics.
    stats: CacheStats,
    /// Optional overload-control plane (admission queue, per-client token
    /// buckets, brownout, circuit breaker). `None` = legacy unbounded
    /// behavior; boxed so the common unprotected server stays small.
    overload: Option<Box<OverloadControl>>,
}

impl PathServer {
    /// How long past expiry a cached segment remains eligible for
    /// degraded serving (and is retained in the cache).
    pub const STALE_GRACE: Duration = Duration::from_hours(1);

    /// A path server for AS `ia`; `core` servers accept registrations and
    /// store the authoritative segment sets.
    pub fn new(ia: IsdAsn, core: bool) -> PathServer {
        PathServer {
            ia,
            core,
            down_segments: HashMap::new(),
            core_segments: HashMap::new(),
            up_segments: Vec::new(),
            cache: HashMap::new(),
            negative: HashMap::new(),
            stats: CacheStats::default(),
            overload: None,
        }
    }

    /// Arms the overload-control plane: subsequent request traffic can be
    /// run through [`PathServer::overload_control_mut`] for admission,
    /// priority shedding, brownout, and breaker decisions. Replaces any
    /// previously armed controller (counters restart from zero).
    pub fn enable_overload_control(&mut self, cfg: OverloadConfig) {
        self.overload = Some(Box::new(OverloadControl::new(cfg)));
    }

    /// The armed overload controller, if any.
    pub fn overload_control(&self) -> Option<&OverloadControl> {
        self.overload.as_deref()
    }

    /// Mutable access to the armed overload controller, if any.
    pub fn overload_control_mut(&mut self) -> Option<&mut OverloadControl> {
        self.overload.as_deref_mut()
    }

    /// The server's AS.
    pub fn isd_asn(&self) -> IsdAsn {
        self.ia
    }

    /// True for a core path server.
    pub fn is_core(&self) -> bool {
        self.core
    }

    /// Registers a down-segment (a leaf AS registering its reachability
    /// with its ISD core; core servers only). Expired segments of the same
    /// destination are garbage-collected first — each periodic
    /// re-registration replaces its predecessors once they lapse, so the
    /// authoritative store stays bounded over arbitrarily long runs.
    ///
    /// Rejects the registration with a typed [`ServerError`] on a
    /// non-core server or a wrong-type segment — untrusted registration
    /// traffic must never be able to panic the server.
    pub fn register_down_segment(
        &mut self,
        seg: PathSegment,
        now: SimTime,
    ) -> Result<(), ServerError> {
        if !self.core {
            return Err(ServerError::NotCore {
                op: "register_down",
            });
        }
        if seg.seg_type != SegmentType::Down {
            return Err(ServerError::WrongSegmentType {
                expected: SegmentType::Down,
                got: seg.seg_type,
            });
        }
        let entry = self.down_segments.entry(seg.terminal()).or_default();
        let before = entry.len();
        entry.retain(|s| !s.is_expired(now));
        self.stats.segments_purged += (before - entry.len()) as u64;
        entry.push(seg);
        Ok(())
    }

    /// Like [`PathServer::register_down_segment`], additionally counting
    /// the registration and emitting a [`TraceEvent::SegmentRegistered`]
    /// once it lands.
    pub fn register_down_segment_telemetry(
        &mut self,
        seg: PathSegment,
        now: SimTime,
        tel: &mut Telemetry,
    ) -> Result<(), ServerError> {
        let server = self.ia;
        let terminal = seg.terminal();
        let seg_type = seg_type_name(seg.seg_type);
        let hops = seg.hop_count() as u32;
        let purged_before = self.stats.segments_purged;
        self.register_down_segment(seg, now)?;
        if tel.is_enabled() {
            tel.inc(ids::PS_REGISTRATIONS, Label::Global, 1);
            tel.trace_event(now, || TraceEvent::SegmentRegistered {
                server,
                terminal,
                seg_type,
                hops,
            });
        }
        let purged = self.stats.segments_purged - purged_before;
        if purged > 0 {
            tel.inc(ids::PS_SEGMENTS_PURGED, Label::Global, purged);
        }
        Ok(())
    }

    /// Registers a core-segment (core servers only), garbage-collecting
    /// the destination's expired segments like
    /// [`PathServer::register_down_segment`].
    pub fn register_core_segment(
        &mut self,
        seg: PathSegment,
        now: SimTime,
    ) -> Result<(), ServerError> {
        if !self.core {
            return Err(ServerError::NotCore {
                op: "register_core",
            });
        }
        if seg.seg_type != SegmentType::Core {
            return Err(ServerError::WrongSegmentType {
                expected: SegmentType::Core,
                got: seg.seg_type,
            });
        }
        let entry = self.core_segments.entry(seg.terminal()).or_default();
        let before = entry.len();
        entry.retain(|s| !s.is_expired(now));
        self.stats.segments_purged += (before - entry.len()) as u64;
        entry.push(seg);
        Ok(())
    }

    /// Stores a local up-segment (local servers). Rejects wrong-type
    /// segments with a typed [`ServerError`].
    pub fn store_up_segment(&mut self, seg: PathSegment) -> Result<(), ServerError> {
        if seg.seg_type != SegmentType::Up {
            return Err(ServerError::WrongSegmentType {
                expected: SegmentType::Up,
                got: seg.seg_type,
            });
        }
        self.up_segments.push(seg);
        Ok(())
    }

    /// Re-registers a segment into the store its type belongs to — the
    /// restoration half of TTL'd revocation
    /// ([`crate::revocation::RevocationTable`]).
    pub fn reinstate_segment(&mut self, seg: PathSegment, now: SimTime) -> Result<(), ServerError> {
        match seg.seg_type {
            SegmentType::Down => self.register_down_segment(seg, now),
            SegmentType::Core => self.register_core_segment(seg, now),
            SegmentType::Up => self.store_up_segment(seg),
        }
    }

    /// The local AS's live up-segments.
    pub fn up_segments(&self, now: SimTime) -> Vec<PathSegment> {
        self.up_segments
            .iter()
            .filter(|s| !s.is_expired(now))
            .cloned()
            .collect()
    }

    /// De-registers segments by predicate (used by revocation: drop
    /// everything containing a failed link). Returns how many were
    /// removed across all stores.
    pub fn deregister_where(&mut self, mut pred: impl FnMut(&PathSegment) -> bool) -> usize {
        let mut removed = 0;
        for store in [&mut self.down_segments, &mut self.core_segments] {
            for segs in store.values_mut() {
                let before = segs.len();
                segs.retain(|s| !pred(s));
                removed += before - segs.len();
            }
            store.retain(|_, v| !v.is_empty());
        }
        let before = self.up_segments.len();
        self.up_segments.retain(|s| !pred(s));
        removed + before - self.up_segments.len()
    }

    /// [`PathServer::deregister_where`], but returns the removed segments
    /// instead of discarding them — the revocation table holds them for
    /// restoration when the revocation's TTL lapses.
    pub fn deregister_collect(
        &mut self,
        mut pred: impl FnMut(&PathSegment) -> bool,
    ) -> Vec<PathSegment> {
        let mut removed = Vec::new();
        for store in [&mut self.down_segments, &mut self.core_segments] {
            // Visit destinations in address order: callers (the revocation
            // table, trace emission) depend on a deterministic removal
            // order, which the hash map's own iteration can't provide.
            let mut keys: Vec<IsdAsn> = store.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let Some(segs) = store.get_mut(&key) else {
                    continue;
                };
                let mut kept = Vec::with_capacity(segs.len());
                for seg in segs.drain(..) {
                    if pred(&seg) {
                        removed.push(seg);
                    } else {
                        kept.push(seg);
                    }
                }
                *segs = kept;
            }
            store.retain(|_, v| !v.is_empty());
        }
        let mut kept = Vec::with_capacity(self.up_segments.len());
        for seg in self.up_segments.drain(..) {
            if pred(&seg) {
                removed.push(seg);
            } else {
                kept.push(seg);
            }
        }
        self.up_segments = kept;
        removed
    }

    /// Authoritative down-segment lookup at a core server. Rejects the
    /// query with a typed [`ServerError`] on a non-core server.
    pub fn lookup_down(&self, dst: IsdAsn, now: SimTime) -> Result<Vec<PathSegment>, ServerError> {
        if !self.core {
            return Err(ServerError::NotCore { op: "lookup_down" });
        }
        Ok(self
            .down_segments
            .get(&dst)
            .map(|v| v.iter().filter(|s| !s.is_expired(now)).cloned().collect())
            .unwrap_or_default())
    }

    /// Authoritative core-segment lookup at a core server: segments whose
    /// far end lies in `dst_isd` (or at the exact AS when known). Rejects
    /// the query with a typed [`ServerError`] on a non-core server.
    pub fn lookup_core(&self, dst_isd: Isd, now: SimTime) -> Result<Vec<PathSegment>, ServerError> {
        if !self.core {
            return Err(ServerError::NotCore { op: "lookup_core" });
        }
        let mut out = Vec::new();
        for (remote, segs) in &self.core_segments {
            if remote.isd == dst_isd {
                out.extend(segs.iter().filter(|s| !s.is_expired(now)).cloned());
            }
        }
        Ok(out)
    }

    /// Cached lookup at a local server: hit if a live cached answer
    /// exists, miss otherwise (caller fetches upstream and calls
    /// [`PathServer::cache_insert`]).
    ///
    /// An entry whose segments all lapsed is *kept* for
    /// [`PathServer::STALE_GRACE`] past expiry — [`PathServer::lookup_stale`]
    /// degrades onto it when the upstream fetch exhausts its retries —
    /// and evicted once every segment is long-dead.
    pub fn lookup_cached(&mut self, dst: IsdAsn, now: SimTime) -> LookupResult {
        if let Some((segs, _)) = self.cache.get_mut(&dst) {
            let live: Vec<PathSegment> = segs
                .iter()
                .filter(|s| !s.is_expired(now))
                .cloned()
                .collect();
            if !live.is_empty() {
                self.stats.hits += 1;
                return LookupResult::Hit(live);
            }
            let horizon = stale_horizon(now, Self::STALE_GRACE);
            segs.retain(|s| !s.is_expired(horizon));
            if segs.is_empty() {
                self.cache.remove(&dst);
            }
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Like [`PathServer::lookup_cached`], additionally maintaining the
    /// global lookup/hit/miss counters.
    pub fn lookup_cached_telemetry(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        tel: &mut Telemetry,
    ) -> LookupResult {
        let result = self.lookup_cached(dst, now);
        tel.inc(ids::PS_LOOKUPS, Label::Global, 1);
        if matches!(result, LookupResult::Hit(_)) {
            tel.inc(ids::PS_CACHE_HITS, Label::Global, 1);
        } else {
            tel.inc(ids::PS_CACHE_MISSES, Label::Global, 1);
        }
        result
    }

    /// Graceful degradation: serves `dst`'s recently-expired cached
    /// segments — expired no earlier than `grace` before `now` — for a
    /// caller whose upstream retries exhausted. Returns `None` when
    /// nothing recent enough is cached; the caller should then fall back
    /// to [`PathServer::note_unreachable`]. Served segments are stale by
    /// construction: the caller must surface them flagged as degraded.
    pub fn lookup_stale(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        grace: Duration,
    ) -> Option<Vec<PathSegment>> {
        let horizon = stale_horizon(now, grace);
        let stale: Vec<PathSegment> = self
            .cache
            .get(&dst)?
            .0
            .iter()
            .filter(|s| !s.is_expired(horizon))
            .cloned()
            .collect();
        if stale.is_empty() {
            return None;
        }
        self.stats.degraded_serves += 1;
        Some(stale)
    }

    /// Telemetry-recording variant of [`PathServer::lookup_stale`].
    pub fn lookup_stale_telemetry(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        grace: Duration,
        tel: &mut Telemetry,
    ) -> Option<Vec<PathSegment>> {
        let result = self.lookup_stale(dst, now, grace);
        if result.is_some() {
            tel.inc(ids::PS_DEGRADED_SERVES, Label::Global, 1);
        }
        result
    }

    /// Records that `dst`'s upstream lookup gave up at `now`: until the
    /// verdict lapses after `ttl`, [`PathServer::negative_cached`] answers
    /// locally instead of launching another retry storm.
    pub fn note_unreachable(&mut self, dst: IsdAsn, now: SimTime, ttl: Duration) {
        self.negative.insert(dst, now + ttl);
    }

    /// True when `dst` is under a live negative-cache verdict (counted as
    /// a negative hit). Lapsed verdicts are evicted on probe.
    pub fn negative_cached(&mut self, dst: IsdAsn, now: SimTime) -> bool {
        match self.negative.get(&dst) {
            Some(&until) if now < until => {
                self.stats.negative_hits += 1;
                true
            }
            Some(_) => {
                self.negative.remove(&dst);
                false
            }
            None => false,
        }
    }

    /// Inserts an upstream answer into the cache and clears any negative
    /// verdict (a successful fetch proves the destination reachable).
    pub fn cache_insert(&mut self, dst: IsdAsn, segs: Vec<PathSegment>, now: SimTime) {
        self.negative.remove(&dst);
        self.cache.insert(dst, (segs, now));
    }

    /// Number of distinct destinations with authoritative down-segments.
    pub fn down_destinations(&self) -> usize {
        self.down_segments.len()
    }

    /// Cache and degradation statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }
}

/// `now - grace`, saturating at the epoch.
fn stale_horizon(now: SimTime, grace: Duration) -> SimTime {
    SimTime::from_micros(now.as_micros().saturating_sub(grace.as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_types::{Asn, Duration, IfId};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        let mut ases = vec![];
        for isd in 1..=2u16 {
            for asn in 1..=5u64 {
                ases.push((ia(isd, asn), asn == 1));
            }
        }
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_days(30))
    }

    #[test]
    fn typed_errors_replace_role_and_type_asserts() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        let down = seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 6);
        assert_eq!(
            local.register_down_segment(down.clone(), SimTime::ZERO),
            Err(ServerError::NotCore {
                op: "register_down"
            })
        );
        assert_eq!(
            local.lookup_down(ia(1, 4), SimTime::ZERO),
            Err(ServerError::NotCore { op: "lookup_down" })
        );
        assert_eq!(
            local.lookup_core(Isd(1), SimTime::ZERO),
            Err(ServerError::NotCore { op: "lookup_core" })
        );
        assert_eq!(
            local.store_up_segment(down.clone()),
            Err(ServerError::WrongSegmentType {
                expected: SegmentType::Up,
                got: SegmentType::Down,
            })
        );

        let mut core = PathServer::new(ia(1, 1), true);
        assert_eq!(
            core.register_core_segment(down.clone(), SimTime::ZERO),
            Err(ServerError::WrongSegmentType {
                expected: SegmentType::Core,
                got: SegmentType::Down,
            })
        );
        // The happy path still lands the segment, and reinstate routes by
        // type.
        assert_eq!(
            core.register_down_segment(down.clone(), SimTime::ZERO),
            Ok(())
        );
        assert_eq!(core.deregister_collect(|_| true).len(), 1);
        assert_eq!(core.reinstate_segment(down, SimTime::ZERO), Ok(()));
        assert_eq!(core.lookup_down(ia(1, 4), SimTime::ZERO).unwrap().len(), 1);
        // Errors render for operators.
        let e = ServerError::NotCore { op: "lookup_down" };
        assert_eq!(e.reason(), "not_core");
        assert!(e.to_string().contains("lookup_down"));
    }

    fn seg(
        tr: &TrustStore,
        ty: SegmentType,
        from: IsdAsn,
        to: IsdAsn,
        lifetime_h: u64,
    ) -> PathSegment {
        let pcb = Pcb::originate(
            from,
            IfId(1),
            SimTime::ZERO,
            Duration::from_hours(lifetime_h),
            0,
            tr,
        )
        .extend(to, IfId(1), IfId::NONE, vec![], tr);
        PathSegment::from_terminated_pcb(ty, pcb)
    }

    #[test]
    fn registration_and_lookup() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
        )
        .unwrap();
        ps.register_core_segment(
            seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 6),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(ps.lookup_down(ia(1, 3), SimTime::ZERO).unwrap().len(), 1);
        assert!(ps.lookup_down(ia(1, 4), SimTime::ZERO).unwrap().is_empty());
        assert_eq!(ps.lookup_core(Isd(2), SimTime::ZERO).unwrap().len(), 1);
        assert!(ps.lookup_core(Isd(3), SimTime::ZERO).unwrap().is_empty());
        assert_eq!(ps.down_destinations(), 1);
    }

    #[test]
    fn expired_segments_not_served() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        )
        .unwrap();
        let later = SimTime::ZERO + Duration::from_hours(2);
        assert!(ps.lookup_down(ia(1, 3), later).unwrap().is_empty());
    }

    #[test]
    fn registration_garbage_collects_expired_predecessors() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        )
        .unwrap();
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        )
        .unwrap();
        // Another destination's expired segments are untouched by ia(1,3)
        // registrations — GC is per-destination.
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 1),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(ps.cache_stats().segments_purged, 0);

        // Re-registering after expiry purges the two lapsed predecessors.
        let later = SimTime::ZERO + Duration::from_hours(2);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6), later)
            .unwrap();
        assert_eq!(ps.cache_stats().segments_purged, 2);
        assert_eq!(ps.lookup_down(ia(1, 3), later).unwrap().len(), 1);

        // Core-segment registrations GC their store the same way.
        ps.register_core_segment(
            seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 1),
            SimTime::ZERO,
        )
        .unwrap();
        ps.register_core_segment(seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 6), later)
            .unwrap();
        assert_eq!(ps.cache_stats().segments_purged, 3);
    }

    #[test]
    fn non_core_cannot_take_registrations() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 3), false);
        assert_eq!(
            ps.register_down_segment(
                seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
                SimTime::ZERO,
            ),
            Err(ServerError::NotCore {
                op: "register_down"
            })
        );
        assert_eq!(ps.down_destinations(), 0, "rejected segment must not land");
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO),
            LookupResult::Miss
        );
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        assert!(matches!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(5)),
            LookupResult::Hit(_)
        ));
        let stats = local.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Expired cached segments fall out and count as miss.
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_hours(7)),
            LookupResult::Miss
        );
        assert_eq!(local.cache_stats().misses, 2);
    }

    #[test]
    fn stale_segments_served_degraded_within_grace() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        // Expired 30 minutes ago: a live lookup misses, but the degraded
        // path still serves it within the grace window.
        let now = SimTime::ZERO + Duration::from_hours(6) + Duration::from_mins(30);
        assert_eq!(local.lookup_cached(ia(2, 4), now), LookupResult::Miss);
        let stale = local.lookup_stale(ia(2, 4), now, PathServer::STALE_GRACE);
        assert_eq!(stale.map(|v| v.len()), Some(1));
        assert_eq!(local.cache_stats().degraded_serves, 1);
        // Beyond the grace window the entry is gone for good.
        let much_later = SimTime::ZERO + Duration::from_hours(8);
        assert_eq!(
            local.lookup_cached(ia(2, 4), much_later),
            LookupResult::Miss
        );
        assert!(local
            .lookup_stale(ia(2, 4), much_later, PathServer::STALE_GRACE)
            .is_none());
    }

    #[test]
    fn negative_cache_short_circuits_until_ttl() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        let ttl = Duration::from_mins(10);
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO));
        local.note_unreachable(ia(2, 4), SimTime::ZERO, ttl);
        assert!(local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(5)));
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(10)));
        assert_eq!(local.cache_stats().negative_hits, 1);
        // A successful fetch clears the verdict immediately.
        local.note_unreachable(ia(2, 4), SimTime::ZERO, ttl);
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(1)));
    }

    #[test]
    fn telemetry_counts_registrations_and_lookups() {
        use scion_telemetry::{ids, Label, Telemetry, TelemetryConfig};
        let tr = trust();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment_telemetry(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
            &mut tel,
        )
        .unwrap();
        assert_eq!(ps.down_destinations(), 1);
        let mut local = PathServer::new(ia(1, 3), false);
        let miss = local.lookup_cached_telemetry(ia(1, 4), SimTime::ZERO, &mut tel);
        assert_eq!(miss, LookupResult::Miss);
        assert_eq!(tel.metrics.counter(ids::PS_REGISTRATIONS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_LOOKUPS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_CACHE_HITS, Label::Global), 0);
        assert_eq!(tel.traces.len(), 1);
    }

    #[test]
    fn deregister_removes_matching_segments() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
        )
        .unwrap();
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 6),
            SimTime::ZERO,
        )
        .unwrap();
        let removed = ps.deregister_where(|s| s.terminal() == ia(1, 3));
        assert_eq!(removed, 1);
        assert!(ps.lookup_down(ia(1, 3), SimTime::ZERO).unwrap().is_empty());
        assert_eq!(ps.lookup_down(ia(1, 4), SimTime::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn up_segments_stored_and_filtered() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        local
            .store_up_segment(seg(&tr, SegmentType::Up, ia(1, 1), ia(1, 3), 1))
            .unwrap();
        assert_eq!(local.up_segments(SimTime::ZERO).len(), 1);
        assert!(local
            .up_segments(SimTime::ZERO + Duration::from_hours(2))
            .is_empty());
    }
}
