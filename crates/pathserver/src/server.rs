//! Path servers: segment registration, lookup, and caching.
//!
//! §2.2: "A global path server infrastructure is used to disseminate path
//! segments. … The infrastructure bears similarities to DNS, where
//! information is fetched on-demand only. A core AS's path server stores
//! all the intra-ISD path segments that were registered by leaf ASes of
//! its own ISD, and core-path segments to reach other core ASes."
//!
//! §4.1: lookups are amortized by caching — "path servers and endpoints
//! cache path segments to serve subsequent requests for a given origin AS,
//! which is effective in SCION due to the long lifetime of a path".

use std::collections::HashMap;

use scion_proto::segment::{PathSegment, SegmentType};
use scion_telemetry::{ids, Label, Telemetry, TraceEvent};
use scion_types::{Isd, IsdAsn, SimTime};

/// Stable wire names of the segment types for trace records.
fn seg_type_name(ty: SegmentType) -> &'static str {
    match ty {
        SegmentType::Up => "up",
        SegmentType::Down => "down",
        SegmentType::Core => "core",
    }
}

/// Outcome of a lookup against one server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Segments served from the local store or cache.
    Hit(Vec<PathSegment>),
    /// Not available locally — the caller must query `upstream`.
    Miss,
}

/// A path server. The same type serves both roles:
/// core servers hold the authoritative registrations, non-core (local)
/// servers hold their AS's own up-segments plus a TTL cache of remote
/// answers.
#[derive(Clone, Debug)]
pub struct PathServer {
    ia: IsdAsn,
    core: bool,
    /// Authoritative down-segments per destination leaf AS (core servers).
    down_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Authoritative core-segments per remote core AS (core servers).
    core_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Up-segments of the local AS (local servers).
    up_segments: Vec<PathSegment>,
    /// Response cache: destination → (segments, inserted-at).
    cache: HashMap<IsdAsn, (Vec<PathSegment>, SimTime)>,
    /// Cache statistics.
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl PathServer {
    pub fn new(ia: IsdAsn, core: bool) -> PathServer {
        PathServer {
            ia,
            core,
            down_segments: HashMap::new(),
            core_segments: HashMap::new(),
            up_segments: Vec::new(),
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The server's AS.
    pub fn isd_asn(&self) -> IsdAsn {
        self.ia
    }

    /// True for a core path server.
    pub fn is_core(&self) -> bool {
        self.core
    }

    /// Registers a down-segment (a leaf AS registering its reachability
    /// with its ISD core; core servers only).
    ///
    /// # Panics
    /// Panics on a non-core server or a wrong-type segment.
    pub fn register_down_segment(&mut self, seg: PathSegment) {
        assert!(self.core, "down-segments register at core path servers");
        assert_eq!(seg.seg_type, SegmentType::Down);
        self.down_segments
            .entry(seg.terminal())
            .or_default()
            .push(seg);
    }

    /// Like [`PathServer::register_down_segment`], additionally counting
    /// the registration and emitting a [`TraceEvent::SegmentRegistered`].
    pub fn register_down_segment_telemetry(
        &mut self,
        seg: PathSegment,
        now: SimTime,
        tel: &mut Telemetry,
    ) {
        if tel.is_enabled() {
            tel.inc(ids::PS_REGISTRATIONS, Label::Global, 1);
            let server = self.ia;
            let terminal = seg.terminal();
            let seg_type = seg_type_name(seg.seg_type);
            let hops = seg.hop_count() as u32;
            tel.trace_event(now, || TraceEvent::SegmentRegistered {
                server,
                terminal,
                seg_type,
                hops,
            });
        }
        self.register_down_segment(seg);
    }

    /// Registers a core-segment (core servers only).
    pub fn register_core_segment(&mut self, seg: PathSegment) {
        assert!(self.core, "core-segments register at core path servers");
        assert_eq!(seg.seg_type, SegmentType::Core);
        self.core_segments
            .entry(seg.terminal())
            .or_default()
            .push(seg);
    }

    /// Stores a local up-segment (local servers).
    pub fn store_up_segment(&mut self, seg: PathSegment) {
        assert_eq!(seg.seg_type, SegmentType::Up);
        self.up_segments.push(seg);
    }

    /// The local AS's live up-segments.
    pub fn up_segments(&self, now: SimTime) -> Vec<PathSegment> {
        self.up_segments
            .iter()
            .filter(|s| !s.is_expired(now))
            .cloned()
            .collect()
    }

    /// De-registers segments by predicate (used by revocation: drop
    /// everything containing a failed link). Returns how many were
    /// removed across all stores.
    pub fn deregister_where(&mut self, mut pred: impl FnMut(&PathSegment) -> bool) -> usize {
        let mut removed = 0;
        for store in [&mut self.down_segments, &mut self.core_segments] {
            for segs in store.values_mut() {
                let before = segs.len();
                segs.retain(|s| !pred(s));
                removed += before - segs.len();
            }
            store.retain(|_, v| !v.is_empty());
        }
        let before = self.up_segments.len();
        self.up_segments.retain(|s| !pred(s));
        removed + before - self.up_segments.len()
    }

    /// Authoritative down-segment lookup at a core server.
    pub fn lookup_down(&self, dst: IsdAsn, now: SimTime) -> Vec<PathSegment> {
        assert!(self.core);
        self.down_segments
            .get(&dst)
            .map(|v| v.iter().filter(|s| !s.is_expired(now)).cloned().collect())
            .unwrap_or_default()
    }

    /// Authoritative core-segment lookup at a core server: segments whose
    /// far end lies in `dst_isd` (or at the exact AS when known).
    pub fn lookup_core(&self, dst_isd: Isd, now: SimTime) -> Vec<PathSegment> {
        assert!(self.core);
        let mut out = Vec::new();
        for (remote, segs) in &self.core_segments {
            if remote.isd == dst_isd {
                out.extend(segs.iter().filter(|s| !s.is_expired(now)).cloned());
            }
        }
        out
    }

    /// Cached lookup at a local server: hit if a live cached answer
    /// exists, miss otherwise (caller fetches upstream and calls
    /// [`PathServer::cache_insert`]).
    pub fn lookup_cached(&mut self, dst: IsdAsn, now: SimTime) -> LookupResult {
        if let Some((segs, _)) = self.cache.get(&dst) {
            let live: Vec<PathSegment> = segs
                .iter()
                .filter(|s| !s.is_expired(now))
                .cloned()
                .collect();
            if !live.is_empty() {
                self.cache_hits += 1;
                return LookupResult::Hit(live);
            }
            self.cache.remove(&dst);
        }
        self.cache_misses += 1;
        LookupResult::Miss
    }

    /// Like [`PathServer::lookup_cached`], additionally maintaining the
    /// global lookup/hit counters.
    pub fn lookup_cached_telemetry(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        tel: &mut Telemetry,
    ) -> LookupResult {
        let result = self.lookup_cached(dst, now);
        tel.inc(ids::PS_LOOKUPS, Label::Global, 1);
        if matches!(result, LookupResult::Hit(_)) {
            tel.inc(ids::PS_CACHE_HITS, Label::Global, 1);
        }
        result
    }

    /// Inserts an upstream answer into the cache.
    pub fn cache_insert(&mut self, dst: IsdAsn, segs: Vec<PathSegment>, now: SimTime) {
        self.cache.insert(dst, (segs, now));
    }

    /// Number of distinct destinations with authoritative down-segments.
    pub fn down_destinations(&self) -> usize {
        self.down_segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_types::{Asn, Duration, IfId};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        let mut ases = vec![];
        for isd in 1..=2u16 {
            for asn in 1..=5u64 {
                ases.push((ia(isd, asn), asn == 1));
            }
        }
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_days(30))
    }

    fn seg(
        tr: &TrustStore,
        ty: SegmentType,
        from: IsdAsn,
        to: IsdAsn,
        lifetime_h: u64,
    ) -> PathSegment {
        let pcb = Pcb::originate(
            from,
            IfId(1),
            SimTime::ZERO,
            Duration::from_hours(lifetime_h),
            0,
            tr,
        )
        .extend(to, IfId(1), IfId::NONE, vec![], tr);
        PathSegment::from_terminated_pcb(ty, pcb)
    }

    #[test]
    fn registration_and_lookup() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6));
        ps.register_core_segment(seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 6));
        assert_eq!(ps.lookup_down(ia(1, 3), SimTime::ZERO).len(), 1);
        assert!(ps.lookup_down(ia(1, 4), SimTime::ZERO).is_empty());
        assert_eq!(ps.lookup_core(Isd(2), SimTime::ZERO).len(), 1);
        assert!(ps.lookup_core(Isd(3), SimTime::ZERO).is_empty());
        assert_eq!(ps.down_destinations(), 1);
    }

    #[test]
    fn expired_segments_not_served() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1));
        let later = SimTime::ZERO + Duration::from_hours(2);
        assert!(ps.lookup_down(ia(1, 3), later).is_empty());
    }

    #[test]
    #[should_panic(expected = "core path servers")]
    fn non_core_cannot_take_registrations() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 3), false);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6));
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO),
            LookupResult::Miss
        );
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        assert!(matches!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(5)),
            LookupResult::Hit(_)
        ));
        assert_eq!((local.cache_hits, local.cache_misses), (1, 1));
        // Expired cached segments fall out and count as miss.
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_hours(7)),
            LookupResult::Miss
        );
        assert_eq!(local.cache_misses, 2);
    }

    #[test]
    fn telemetry_counts_registrations_and_lookups() {
        use scion_telemetry::{ids, Label, Telemetry, TelemetryConfig};
        let tr = trust();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment_telemetry(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(ps.down_destinations(), 1);
        let mut local = PathServer::new(ia(1, 3), false);
        let miss = local.lookup_cached_telemetry(ia(1, 4), SimTime::ZERO, &mut tel);
        assert_eq!(miss, LookupResult::Miss);
        assert_eq!(tel.metrics.counter(ids::PS_REGISTRATIONS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_LOOKUPS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_CACHE_HITS, Label::Global), 0);
        assert_eq!(tel.traces.len(), 1);
    }

    #[test]
    fn deregister_removes_matching_segments() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6));
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 6));
        let removed = ps.deregister_where(|s| s.terminal() == ia(1, 3));
        assert_eq!(removed, 1);
        assert!(ps.lookup_down(ia(1, 3), SimTime::ZERO).is_empty());
        assert_eq!(ps.lookup_down(ia(1, 4), SimTime::ZERO).len(), 1);
    }

    #[test]
    fn up_segments_stored_and_filtered() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        local.store_up_segment(seg(&tr, SegmentType::Up, ia(1, 1), ia(1, 3), 1));
        assert_eq!(local.up_segments(SimTime::ZERO).len(), 1);
        assert!(local
            .up_segments(SimTime::ZERO + Duration::from_hours(2))
            .is_empty());
    }
}
