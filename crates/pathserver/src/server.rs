//! Path servers: segment registration, lookup, and caching.
//!
//! §2.2: "A global path server infrastructure is used to disseminate path
//! segments. … The infrastructure bears similarities to DNS, where
//! information is fetched on-demand only. A core AS's path server stores
//! all the intra-ISD path segments that were registered by leaf ASes of
//! its own ISD, and core-path segments to reach other core ASes."
//!
//! §4.1: lookups are amortized by caching — "path servers and endpoints
//! cache path segments to serve subsequent requests for a given origin AS,
//! which is effective in SCION due to the long lifetime of a path".

use std::collections::HashMap;

use scion_proto::segment::{PathSegment, SegmentType};
use scion_telemetry::{ids, Label, Telemetry, TraceEvent};
use scion_types::{Duration, Isd, IsdAsn, SimTime};
use serde::Serialize;

/// Stable wire names of the segment types for trace records.
fn seg_type_name(ty: SegmentType) -> &'static str {
    match ty {
        SegmentType::Up => "up",
        SegmentType::Down => "down",
        SegmentType::Core => "core",
    }
}

/// Outcome of a lookup against one server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Segments served from the local store or cache.
    Hit(Vec<PathSegment>),
    /// Not available locally — the caller must query `upstream`.
    Miss,
}

/// Lifetime counters of one server's cache and degradation machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from a live cached entry.
    pub hits: u64,
    /// Lookups with no live cached answer.
    pub misses: u64,
    /// Lookups answered with recently-expired segments after upstream
    /// retries exhausted (graceful degradation).
    pub degraded_serves: u64,
    /// Lookups short-circuited by the negative cache.
    pub negative_hits: u64,
    /// Expired authoritative segments garbage-collected at registration.
    pub segments_purged: u64,
}

/// A path server. The same type serves both roles:
/// core servers hold the authoritative registrations, non-core (local)
/// servers hold their AS's own up-segments plus a TTL cache of remote
/// answers.
#[derive(Clone, Debug)]
pub struct PathServer {
    ia: IsdAsn,
    core: bool,
    /// Authoritative down-segments per destination leaf AS (core servers).
    down_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Authoritative core-segments per remote core AS (core servers).
    core_segments: HashMap<IsdAsn, Vec<PathSegment>>,
    /// Up-segments of the local AS (local servers).
    up_segments: Vec<PathSegment>,
    /// Response cache: destination → (segments, inserted-at). Entries are
    /// kept for [`PathServer::STALE_GRACE`] past expiry so exhausted
    /// upstream lookups can degrade onto them.
    cache: HashMap<IsdAsn, (Vec<PathSegment>, SimTime)>,
    /// Negative cache: destination → verdict-expiry. A destination whose
    /// upstream lookup recently gave up is answered locally until the
    /// verdict lapses, stopping retry storms against a dead origin.
    negative: HashMap<IsdAsn, SimTime>,
    /// Cache and degradation statistics.
    stats: CacheStats,
}

impl PathServer {
    /// How long past expiry a cached segment remains eligible for
    /// degraded serving (and is retained in the cache).
    pub const STALE_GRACE: Duration = Duration::from_hours(1);

    pub fn new(ia: IsdAsn, core: bool) -> PathServer {
        PathServer {
            ia,
            core,
            down_segments: HashMap::new(),
            core_segments: HashMap::new(),
            up_segments: Vec::new(),
            cache: HashMap::new(),
            negative: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The server's AS.
    pub fn isd_asn(&self) -> IsdAsn {
        self.ia
    }

    /// True for a core path server.
    pub fn is_core(&self) -> bool {
        self.core
    }

    /// Registers a down-segment (a leaf AS registering its reachability
    /// with its ISD core; core servers only). Expired segments of the same
    /// destination are garbage-collected first — each periodic
    /// re-registration replaces its predecessors once they lapse, so the
    /// authoritative store stays bounded over arbitrarily long runs.
    ///
    /// # Panics
    /// Panics on a non-core server or a wrong-type segment.
    pub fn register_down_segment(&mut self, seg: PathSegment, now: SimTime) {
        assert!(self.core, "down-segments register at core path servers");
        assert_eq!(seg.seg_type, SegmentType::Down);
        let entry = self.down_segments.entry(seg.terminal()).or_default();
        let before = entry.len();
        entry.retain(|s| !s.is_expired(now));
        self.stats.segments_purged += (before - entry.len()) as u64;
        entry.push(seg);
    }

    /// Like [`PathServer::register_down_segment`], additionally counting
    /// the registration and emitting a [`TraceEvent::SegmentRegistered`].
    pub fn register_down_segment_telemetry(
        &mut self,
        seg: PathSegment,
        now: SimTime,
        tel: &mut Telemetry,
    ) {
        if tel.is_enabled() {
            tel.inc(ids::PS_REGISTRATIONS, Label::Global, 1);
            let server = self.ia;
            let terminal = seg.terminal();
            let seg_type = seg_type_name(seg.seg_type);
            let hops = seg.hop_count() as u32;
            tel.trace_event(now, || TraceEvent::SegmentRegistered {
                server,
                terminal,
                seg_type,
                hops,
            });
        }
        let purged_before = self.stats.segments_purged;
        self.register_down_segment(seg, now);
        let purged = self.stats.segments_purged - purged_before;
        if purged > 0 {
            tel.inc(ids::PS_SEGMENTS_PURGED, Label::Global, purged);
        }
    }

    /// Registers a core-segment (core servers only), garbage-collecting
    /// the destination's expired segments like
    /// [`PathServer::register_down_segment`].
    pub fn register_core_segment(&mut self, seg: PathSegment, now: SimTime) {
        assert!(self.core, "core-segments register at core path servers");
        assert_eq!(seg.seg_type, SegmentType::Core);
        let entry = self.core_segments.entry(seg.terminal()).or_default();
        let before = entry.len();
        entry.retain(|s| !s.is_expired(now));
        self.stats.segments_purged += (before - entry.len()) as u64;
        entry.push(seg);
    }

    /// Stores a local up-segment (local servers).
    pub fn store_up_segment(&mut self, seg: PathSegment) {
        assert_eq!(seg.seg_type, SegmentType::Up);
        self.up_segments.push(seg);
    }

    /// The local AS's live up-segments.
    pub fn up_segments(&self, now: SimTime) -> Vec<PathSegment> {
        self.up_segments
            .iter()
            .filter(|s| !s.is_expired(now))
            .cloned()
            .collect()
    }

    /// De-registers segments by predicate (used by revocation: drop
    /// everything containing a failed link). Returns how many were
    /// removed across all stores.
    pub fn deregister_where(&mut self, mut pred: impl FnMut(&PathSegment) -> bool) -> usize {
        let mut removed = 0;
        for store in [&mut self.down_segments, &mut self.core_segments] {
            for segs in store.values_mut() {
                let before = segs.len();
                segs.retain(|s| !pred(s));
                removed += before - segs.len();
            }
            store.retain(|_, v| !v.is_empty());
        }
        let before = self.up_segments.len();
        self.up_segments.retain(|s| !pred(s));
        removed + before - self.up_segments.len()
    }

    /// Authoritative down-segment lookup at a core server.
    pub fn lookup_down(&self, dst: IsdAsn, now: SimTime) -> Vec<PathSegment> {
        assert!(self.core);
        self.down_segments
            .get(&dst)
            .map(|v| v.iter().filter(|s| !s.is_expired(now)).cloned().collect())
            .unwrap_or_default()
    }

    /// Authoritative core-segment lookup at a core server: segments whose
    /// far end lies in `dst_isd` (or at the exact AS when known).
    pub fn lookup_core(&self, dst_isd: Isd, now: SimTime) -> Vec<PathSegment> {
        assert!(self.core);
        let mut out = Vec::new();
        for (remote, segs) in &self.core_segments {
            if remote.isd == dst_isd {
                out.extend(segs.iter().filter(|s| !s.is_expired(now)).cloned());
            }
        }
        out
    }

    /// Cached lookup at a local server: hit if a live cached answer
    /// exists, miss otherwise (caller fetches upstream and calls
    /// [`PathServer::cache_insert`]).
    ///
    /// An entry whose segments all lapsed is *kept* for
    /// [`PathServer::STALE_GRACE`] past expiry — [`PathServer::lookup_stale`]
    /// degrades onto it when the upstream fetch exhausts its retries —
    /// and evicted once every segment is long-dead.
    pub fn lookup_cached(&mut self, dst: IsdAsn, now: SimTime) -> LookupResult {
        if let Some((segs, _)) = self.cache.get_mut(&dst) {
            let live: Vec<PathSegment> = segs
                .iter()
                .filter(|s| !s.is_expired(now))
                .cloned()
                .collect();
            if !live.is_empty() {
                self.stats.hits += 1;
                return LookupResult::Hit(live);
            }
            let horizon = stale_horizon(now, Self::STALE_GRACE);
            segs.retain(|s| !s.is_expired(horizon));
            if segs.is_empty() {
                self.cache.remove(&dst);
            }
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Like [`PathServer::lookup_cached`], additionally maintaining the
    /// global lookup/hit/miss counters.
    pub fn lookup_cached_telemetry(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        tel: &mut Telemetry,
    ) -> LookupResult {
        let result = self.lookup_cached(dst, now);
        tel.inc(ids::PS_LOOKUPS, Label::Global, 1);
        if matches!(result, LookupResult::Hit(_)) {
            tel.inc(ids::PS_CACHE_HITS, Label::Global, 1);
        } else {
            tel.inc(ids::PS_CACHE_MISSES, Label::Global, 1);
        }
        result
    }

    /// Graceful degradation: serves `dst`'s recently-expired cached
    /// segments — expired no earlier than `grace` before `now` — for a
    /// caller whose upstream retries exhausted. Returns `None` when
    /// nothing recent enough is cached; the caller should then fall back
    /// to [`PathServer::note_unreachable`]. Served segments are stale by
    /// construction: the caller must surface them flagged as degraded.
    pub fn lookup_stale(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        grace: Duration,
    ) -> Option<Vec<PathSegment>> {
        let horizon = stale_horizon(now, grace);
        let stale: Vec<PathSegment> = self
            .cache
            .get(&dst)?
            .0
            .iter()
            .filter(|s| !s.is_expired(horizon))
            .cloned()
            .collect();
        if stale.is_empty() {
            return None;
        }
        self.stats.degraded_serves += 1;
        Some(stale)
    }

    /// Telemetry-recording variant of [`PathServer::lookup_stale`].
    pub fn lookup_stale_telemetry(
        &mut self,
        dst: IsdAsn,
        now: SimTime,
        grace: Duration,
        tel: &mut Telemetry,
    ) -> Option<Vec<PathSegment>> {
        let result = self.lookup_stale(dst, now, grace);
        if result.is_some() {
            tel.inc(ids::PS_DEGRADED_SERVES, Label::Global, 1);
        }
        result
    }

    /// Records that `dst`'s upstream lookup gave up at `now`: until the
    /// verdict lapses after `ttl`, [`PathServer::negative_cached`] answers
    /// locally instead of launching another retry storm.
    pub fn note_unreachable(&mut self, dst: IsdAsn, now: SimTime, ttl: Duration) {
        self.negative.insert(dst, now + ttl);
    }

    /// True when `dst` is under a live negative-cache verdict (counted as
    /// a negative hit). Lapsed verdicts are evicted on probe.
    pub fn negative_cached(&mut self, dst: IsdAsn, now: SimTime) -> bool {
        match self.negative.get(&dst) {
            Some(&until) if now < until => {
                self.stats.negative_hits += 1;
                true
            }
            Some(_) => {
                self.negative.remove(&dst);
                false
            }
            None => false,
        }
    }

    /// Inserts an upstream answer into the cache and clears any negative
    /// verdict (a successful fetch proves the destination reachable).
    pub fn cache_insert(&mut self, dst: IsdAsn, segs: Vec<PathSegment>, now: SimTime) {
        self.negative.remove(&dst);
        self.cache.insert(dst, (segs, now));
    }

    /// Number of distinct destinations with authoritative down-segments.
    pub fn down_destinations(&self) -> usize {
        self.down_segments.len()
    }

    /// Cache and degradation statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }
}

/// `now - grace`, saturating at the epoch.
fn stale_horizon(now: SimTime, grace: Duration) -> SimTime {
    SimTime::from_micros(now.as_micros().saturating_sub(grace.as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_types::{Asn, Duration, IfId};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        let mut ases = vec![];
        for isd in 1..=2u16 {
            for asn in 1..=5u64 {
                ases.push((ia(isd, asn), asn == 1));
            }
        }
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_days(30))
    }

    fn seg(
        tr: &TrustStore,
        ty: SegmentType,
        from: IsdAsn,
        to: IsdAsn,
        lifetime_h: u64,
    ) -> PathSegment {
        let pcb = Pcb::originate(
            from,
            IfId(1),
            SimTime::ZERO,
            Duration::from_hours(lifetime_h),
            0,
            tr,
        )
        .extend(to, IfId(1), IfId::NONE, vec![], tr);
        PathSegment::from_terminated_pcb(ty, pcb)
    }

    #[test]
    fn registration_and_lookup() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
        );
        ps.register_core_segment(
            seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 6),
            SimTime::ZERO,
        );
        assert_eq!(ps.lookup_down(ia(1, 3), SimTime::ZERO).len(), 1);
        assert!(ps.lookup_down(ia(1, 4), SimTime::ZERO).is_empty());
        assert_eq!(ps.lookup_core(Isd(2), SimTime::ZERO).len(), 1);
        assert!(ps.lookup_core(Isd(3), SimTime::ZERO).is_empty());
        assert_eq!(ps.down_destinations(), 1);
    }

    #[test]
    fn expired_segments_not_served() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        );
        let later = SimTime::ZERO + Duration::from_hours(2);
        assert!(ps.lookup_down(ia(1, 3), later).is_empty());
    }

    #[test]
    fn registration_garbage_collects_expired_predecessors() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        );
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 1),
            SimTime::ZERO,
        );
        // Another destination's expired segments are untouched by ia(1,3)
        // registrations — GC is per-destination.
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 1),
            SimTime::ZERO,
        );
        assert_eq!(ps.cache_stats().segments_purged, 0);

        // Re-registering after expiry purges the two lapsed predecessors.
        let later = SimTime::ZERO + Duration::from_hours(2);
        ps.register_down_segment(seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6), later);
        assert_eq!(ps.cache_stats().segments_purged, 2);
        assert_eq!(ps.lookup_down(ia(1, 3), later).len(), 1);

        // Core-segment registrations GC their store the same way.
        ps.register_core_segment(
            seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 1),
            SimTime::ZERO,
        );
        ps.register_core_segment(seg(&tr, SegmentType::Core, ia(1, 1), ia(2, 1), 6), later);
        assert_eq!(ps.cache_stats().segments_purged, 3);
    }

    #[test]
    #[should_panic(expected = "core path servers")]
    fn non_core_cannot_take_registrations() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 3), false);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
        );
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO),
            LookupResult::Miss
        );
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        assert!(matches!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(5)),
            LookupResult::Hit(_)
        ));
        let stats = local.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Expired cached segments fall out and count as miss.
        assert_eq!(
            local.lookup_cached(ia(2, 4), SimTime::ZERO + Duration::from_hours(7)),
            LookupResult::Miss
        );
        assert_eq!(local.cache_stats().misses, 2);
    }

    #[test]
    fn stale_segments_served_degraded_within_grace() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        // Expired 30 minutes ago: a live lookup misses, but the degraded
        // path still serves it within the grace window.
        let now = SimTime::ZERO + Duration::from_hours(6) + Duration::from_mins(30);
        assert_eq!(local.lookup_cached(ia(2, 4), now), LookupResult::Miss);
        let stale = local.lookup_stale(ia(2, 4), now, PathServer::STALE_GRACE);
        assert_eq!(stale.map(|v| v.len()), Some(1));
        assert_eq!(local.cache_stats().degraded_serves, 1);
        // Beyond the grace window the entry is gone for good.
        let much_later = SimTime::ZERO + Duration::from_hours(8);
        assert_eq!(
            local.lookup_cached(ia(2, 4), much_later),
            LookupResult::Miss
        );
        assert!(local
            .lookup_stale(ia(2, 4), much_later, PathServer::STALE_GRACE)
            .is_none());
    }

    #[test]
    fn negative_cache_short_circuits_until_ttl() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        let ttl = Duration::from_mins(10);
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO));
        local.note_unreachable(ia(2, 4), SimTime::ZERO, ttl);
        assert!(local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(5)));
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(10)));
        assert_eq!(local.cache_stats().negative_hits, 1);
        // A successful fetch clears the verdict immediately.
        local.note_unreachable(ia(2, 4), SimTime::ZERO, ttl);
        local.cache_insert(
            ia(2, 4),
            vec![seg(&tr, SegmentType::Down, ia(2, 1), ia(2, 4), 6)],
            SimTime::ZERO,
        );
        assert!(!local.negative_cached(ia(2, 4), SimTime::ZERO + Duration::from_mins(1)));
    }

    #[test]
    fn telemetry_counts_registrations_and_lookups() {
        use scion_telemetry::{ids, Label, Telemetry, TelemetryConfig};
        let tr = trust();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment_telemetry(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(ps.down_destinations(), 1);
        let mut local = PathServer::new(ia(1, 3), false);
        let miss = local.lookup_cached_telemetry(ia(1, 4), SimTime::ZERO, &mut tel);
        assert_eq!(miss, LookupResult::Miss);
        assert_eq!(tel.metrics.counter(ids::PS_REGISTRATIONS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_LOOKUPS, Label::Global), 1);
        assert_eq!(tel.metrics.counter(ids::PS_CACHE_HITS, Label::Global), 0);
        assert_eq!(tel.traces.len(), 1);
    }

    #[test]
    fn deregister_removes_matching_segments() {
        let tr = trust();
        let mut ps = PathServer::new(ia(1, 1), true);
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 3), 6),
            SimTime::ZERO,
        );
        ps.register_down_segment(
            seg(&tr, SegmentType::Down, ia(1, 1), ia(1, 4), 6),
            SimTime::ZERO,
        );
        let removed = ps.deregister_where(|s| s.terminal() == ia(1, 3));
        assert_eq!(removed, 1);
        assert!(ps.lookup_down(ia(1, 3), SimTime::ZERO).is_empty());
        assert_eq!(ps.lookup_down(ia(1, 4), SimTime::ZERO).len(), 1);
    }

    #[test]
    fn up_segments_stored_and_filtered() {
        let tr = trust();
        let mut local = PathServer::new(ia(1, 3), false);
        local.store_up_segment(seg(&tr, SegmentType::Up, ia(1, 1), ia(1, 3), 1));
        assert_eq!(local.up_segments(SimTime::ZERO).len(), 1);
        assert!(local
            .up_segments(SimTime::ZERO + Duration::from_hours(2))
            .is_empty());
    }
}
