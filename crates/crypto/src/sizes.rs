//! Wire-size constants for the overhead models.
//!
//! Sources: RFC 8205 (BGPsec) §3.1 recommends ECDSA-P-256; the paper
//! instead "assume\[s\] the use of ECDSA384 signatures in both SCION and
//! BGPsec" (§5.2), so every signed artifact here is sized for **P-384**.

/// Raw ECDSA P-384 signature: r ‖ s, two 48-byte scalars.
pub const ECDSA_P384_SIGNATURE: usize = 96;

/// Compressed SEC1 P-384 public key: 1 tag byte + 48-byte x coordinate.
pub const ECDSA_P384_PUBKEY_COMPRESSED: usize = 49;

/// Subject Key Identifier used by BGPsec to reference a router certificate
/// (RFC 8205 §3.1: 20-octet SKI).
pub const SKI: usize = 20;

/// A compact AS certificate in our control plane: subject `⟨ISD,AS⟩`
/// (8 bytes), validity window (2×8), public key, issuer id (8), issuer
/// signature.
pub const AS_CERTIFICATE: usize = 8 + 16 + ECDSA_P384_PUBKEY_COMPRESSED + 8 + ECDSA_P384_SIGNATURE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p384_sizes() {
        assert_eq!(ECDSA_P384_SIGNATURE, 96);
        assert_eq!(ECDSA_P384_PUBKEY_COMPRESSED, 49);
    }

    #[test]
    fn cert_size_adds_up() {
        assert_eq!(AS_CERTIFICATE, 8 + 16 + 49 + 8 + 96);
    }
}
