//! Simulation-grade signature scheme with ECDSA-P-384 wire sizes.
//!
//! **NOT SECURE.** A signature here is `expand(H(pub ‖ domain ‖ msg))`:
//! anyone holding the public key could forge one. That is acceptable — and
//! documented — because the reproduction evaluates scalability of honest
//! protocol machinery, not adversarial robustness (the paper's evaluation
//! does the same: it counts bytes, it does not attack the PKI). What the
//! scheme does guarantee:
//!
//! * verification succeeds exactly for the `(key, payload)` pair that signed,
//! * any payload or key mutation makes verification fail,
//! * signatures and keys have the exact P-384 sizes used in the overhead
//!   model.

use serde::{Deserialize, Serialize};

use crate::hash::Hasher;
use crate::sizes::{ECDSA_P384_PUBKEY_COMPRESSED, ECDSA_P384_SIGNATURE};

/// Domain-separation tag so signatures over different artifact kinds can
/// never be confused, even with identical payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignDomain {
    /// PCB AS entry (beaconing).
    PcbAsEntry,
    /// AS certificate issued by a core AS.
    AsCertificate,
    /// Trust Root Configuration.
    Trc,
    /// BGPsec Secure_Path segment.
    BgpsecPath,
}

impl SignDomain {
    fn tag(self) -> u64 {
        match self {
            SignDomain::PcbAsEntry => 1,
            SignDomain::AsCertificate => 2,
            SignDomain::Trc => 3,
            SignDomain::BgpsecPath => 4,
        }
    }
}

/// A public key with the compressed P-384 point size.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(pub [u8; ECDSA_P384_PUBKEY_COMPRESSED]);

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

/// A signature with the raw P-384 size.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(pub [u8; ECDSA_P384_SIGNATURE]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

impl Signature {
    /// Wire size of a signature in bytes.
    pub const WIRE_SIZE: usize = ECDSA_P384_SIGNATURE;
}

/// A signing key pair. Key material is derived deterministically from a
/// seed so that simulations are reproducible.
#[derive(Clone, Debug)]
pub struct KeyPair {
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair from a seed (e.g. hash of the AS number).
    pub fn from_seed(seed: u64) -> KeyPair {
        let mut h = Hasher::new();
        h.update(b"scion-sim-keypair");
        h.update_u64(seed);
        let mut public = [0u8; ECDSA_P384_PUBKEY_COMPRESSED];
        h.finalize_into(&mut public);
        public[0] = 0x02; // SEC1 compressed-point tag, for verisimilitude.
        KeyPair {
            public: PublicKey(public),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `payload` under `domain`.
    pub fn sign(&self, domain: SignDomain, payload: &[u8]) -> Signature {
        sign_with(self.public, domain, payload)
    }
}

fn sign_with(public: PublicKey, domain: SignDomain, payload: &[u8]) -> Signature {
    let mut h = Hasher::new();
    h.update(b"scion-sim-signature");
    h.update(&public.0);
    h.update_u64(domain.tag());
    h.update(payload);
    let mut sig = [0u8; ECDSA_P384_SIGNATURE];
    h.finalize_into(&mut sig);
    Signature(sig)
}

/// Verifies `sig` over `payload` under `public` and `domain`.
pub fn verify(public: PublicKey, domain: SignDomain, payload: &[u8], sig: &Signature) -> bool {
    sign_with(public, domain, payload) == *sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(SignDomain::PcbAsEntry, b"segment data");
        assert!(verify(
            kp.public(),
            SignDomain::PcbAsEntry,
            b"segment data",
            &sig
        ));
    }

    #[test]
    fn tampered_payload_fails() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(SignDomain::PcbAsEntry, b"segment data");
        assert!(!verify(
            kp.public(),
            SignDomain::PcbAsEntry,
            b"segment datA",
            &sig
        ));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = KeyPair::from_seed(7);
        let kp2 = KeyPair::from_seed(8);
        let sig = kp1.sign(SignDomain::PcbAsEntry, b"x");
        assert!(!verify(kp2.public(), SignDomain::PcbAsEntry, b"x", &sig));
    }

    #[test]
    fn cross_domain_fails() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(SignDomain::PcbAsEntry, b"x");
        assert!(!verify(kp.public(), SignDomain::BgpsecPath, b"x", &sig));
    }

    #[test]
    fn keypair_derivation_deterministic() {
        assert_eq!(
            KeyPair::from_seed(1).public(),
            KeyPair::from_seed(1).public()
        );
        assert_ne!(
            KeyPair::from_seed(1).public(),
            KeyPair::from_seed(2).public()
        );
    }

    #[test]
    fn wire_sizes_match_p384() {
        let kp = KeyPair::from_seed(1);
        assert_eq!(kp.public().0.len(), 49);
        assert_eq!(kp.sign(SignDomain::Trc, b"").0.len(), 96);
        assert_eq!(Signature::WIRE_SIZE, 96);
    }

    proptest! {
        #[test]
        fn prop_verify_only_exact_payload(seed in any::<u64>(),
                                          payload in proptest::collection::vec(any::<u8>(), 0..64),
                                          other in proptest::collection::vec(any::<u8>(), 0..64)) {
            let kp = KeyPair::from_seed(seed);
            let sig = kp.sign(SignDomain::AsCertificate, &payload);
            prop_assert!(verify(kp.public(), SignDomain::AsCertificate, &payload, &sig));
            if other != payload {
                prop_assert!(!verify(kp.public(), SignDomain::AsCertificate, &other, &sig));
            }
        }
    }
}
