//! Control-plane PKI substrate.
//!
//! SCION PCBs are signed hop by hop, and the paper's overhead evaluation
//! (§5.2) "assume\[s\] the use of ECDSA384 signatures in both SCION and
//! BGPsec". What the reproduction needs from cryptography is therefore:
//!
//! 1. **Exact wire sizes** — a P-384 ECDSA signature is 96 bytes raw
//!    (two 48-byte field elements); public keys are 49 bytes compressed.
//!    These constants feed every overhead computation.
//! 2. **Sign/verify semantics** — a signature made over a payload with one
//!    key must verify with the matching public key and fail for any other
//!    key or any altered payload, so the control plane's validation paths
//!    are really exercised.
//!
//! It does **not** need cryptographic strength: no adversary model is being
//! evaluated, and pulling a full ECC implementation into an offline
//! simulation buys nothing. The [`sim`] scheme is therefore a keyed-hash
//! construction — deterministic, collision-resistant enough for simulation,
//! size-faithful, and loudly documented as NOT SECURE.
//!
//! On top of the signature scheme, [`trc`] implements the trust structure
//! from §2.1–2.2: per-ISD Trust Root Configurations listing the core ASes'
//! keys, AS certificates issued by core ASes, and full chain verification
//! (signature → AS certificate → TRC).

pub mod hash;
pub mod sim;
pub mod sizes;
pub mod trc;

pub use sim::{KeyPair, PublicKey, Signature};
pub use trc::{AsCertificate, Trc, TrustStore, VerifyError};
