//! Trust Root Configurations, AS certificates, and chain verification.
//!
//! Paper §2.1: "An ISD groups ASes that agree on a set of trust roots,
//! called the Trust Root Configuration (TRC). … The ISD is governed by a set
//! of core ASes, which … manage the trust roots." §3.4: "The required
//! cryptographic certificates are issued by the core ASes."
//!
//! The model here: each ISD has a [`Trc`] listing its core ASes' public
//! keys; every AS holds an [`AsCertificate`] binding its `⟨ISD,AS⟩` to its
//! public key, signed by one of its ISD's core ASes; a PCB AS-entry
//! signature verifies against the signer's certificate, whose issuer must
//! appear in the signer's ISD TRC ([`TrustStore::verify_chain`]).

use std::collections::HashMap;

use scion_types::{Isd, IsdAsn, SimTime};

use crate::sim::{verify, KeyPair, PublicKey, SignDomain, Signature};

/// A Trust Root Configuration for one ISD.
#[derive(Clone, Debug)]
pub struct Trc {
    pub isd: Isd,
    pub version: u32,
    /// Core ASes and their root public keys.
    pub roots: Vec<(IsdAsn, PublicKey)>,
}

impl Trc {
    /// Whether `ia` is a trust root of this ISD with key `key`.
    pub fn is_root(&self, ia: IsdAsn, key: PublicKey) -> bool {
        self.roots.iter().any(|&(r, k)| r == ia && k == key)
    }
}

/// A certificate binding an AS to a public key, issued by a core AS.
#[derive(Clone, Debug)]
pub struct AsCertificate {
    pub subject: IsdAsn,
    pub subject_key: PublicKey,
    pub issuer: IsdAsn,
    pub not_after: SimTime,
    pub signature: Signature,
}

impl AsCertificate {
    /// The byte string the issuer signs.
    fn signed_payload(subject: IsdAsn, subject_key: &PublicKey, not_after: SimTime) -> Vec<u8> {
        let mut p = Vec::with_capacity(64);
        p.extend_from_slice(&subject.isd.0.to_le_bytes());
        p.extend_from_slice(&subject.asn.value().to_le_bytes());
        p.extend_from_slice(&subject_key.0);
        p.extend_from_slice(&not_after.as_micros().to_le_bytes());
        p
    }
}

/// Errors from certificate-chain verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// No TRC known for the subject's ISD.
    UnknownIsd(Isd),
    /// No certificate on file for the signer.
    UnknownAs(IsdAsn),
    /// The certificate expired before `now`.
    CertificateExpired,
    /// The certificate's issuer is not a root in the subject's ISD TRC.
    IssuerNotInTrc,
    /// The certificate's issuer signature does not verify.
    BadCertificateSignature,
    /// The artifact signature itself does not verify.
    BadSignature,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownIsd(isd) => write!(f, "no TRC for ISD {isd}"),
            VerifyError::UnknownAs(ia) => write!(f, "no certificate for {ia}"),
            VerifyError::CertificateExpired => write!(f, "certificate expired"),
            VerifyError::IssuerNotInTrc => write!(f, "certificate issuer not in TRC"),
            VerifyError::BadCertificateSignature => write!(f, "bad certificate signature"),
            VerifyError::BadSignature => write!(f, "bad artifact signature"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The global trust state: every ISD's TRC, every AS's certificate, plus
/// (simulation-side) every AS's signing key pair.
///
/// Keys live here rather than at the nodes purely for convenience: the
/// simulation is single-process and honest, so co-locating avoids threading
/// key material through every protocol struct.
#[derive(Clone, Debug, Default)]
pub struct TrustStore {
    trcs: HashMap<Isd, Trc>,
    certs: HashMap<IsdAsn, AsCertificate>,
    keys: HashMap<IsdAsn, KeyPair>,
}

impl TrustStore {
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Bootstraps trust for a whole topology: derives a key pair per AS,
    /// forms one TRC per ISD from that ISD's core ASes, and issues each
    /// AS's certificate from a deterministic core AS of its ISD (the
    /// lowest-numbered one).
    ///
    /// `cert_lifetime_end` is the expiry stamped into all certificates.
    ///
    /// # Panics
    /// Panics if some ISD has no core AS (it could not issue certificates).
    pub fn bootstrap(
        ases: impl Iterator<Item = (IsdAsn, bool)>,
        cert_lifetime_end: SimTime,
    ) -> TrustStore {
        let mut store = TrustStore::new();
        let all: Vec<(IsdAsn, bool)> = ases.collect();

        // Key pairs, derived from the AS address.
        for &(ia, _) in &all {
            let seed = (u64::from(ia.isd.0) << 48) ^ ia.asn.value();
            store.keys.insert(ia, KeyPair::from_seed(seed));
        }

        // TRCs per ISD from core ASes.
        let mut roots_by_isd: HashMap<Isd, Vec<(IsdAsn, PublicKey)>> = HashMap::new();
        for &(ia, core) in &all {
            if core {
                roots_by_isd
                    .entry(ia.isd)
                    .or_default()
                    .push((ia, store.keys[&ia].public()));
            }
        }
        for (isd, mut roots) in roots_by_isd {
            roots.sort_by_key(|&(ia, _)| ia);
            store.trcs.insert(
                isd,
                Trc {
                    isd,
                    version: 1,
                    roots,
                },
            );
        }

        // Certificates, issued by the lowest-numbered core of each ISD.
        for &(ia, _) in &all {
            let trc = store
                .trcs
                .get(&ia.isd)
                .unwrap_or_else(|| panic!("ISD {} has no core AS to issue certificates", ia.isd));
            let issuer = trc.roots[0].0;
            let subject_key = store.keys[&ia].public();
            let payload = AsCertificate::signed_payload(ia, &subject_key, cert_lifetime_end);
            let signature = store.keys[&issuer].sign(SignDomain::AsCertificate, &payload);
            store.certs.insert(
                ia,
                AsCertificate {
                    subject: ia,
                    subject_key,
                    issuer,
                    not_after: cert_lifetime_end,
                    signature,
                },
            );
        }
        store
    }

    /// The signing key pair of `ia` (simulation-side access).
    pub fn key_of(&self, ia: IsdAsn) -> Option<&KeyPair> {
        self.keys.get(&ia)
    }

    /// The certificate of `ia`.
    pub fn cert_of(&self, ia: IsdAsn) -> Option<&AsCertificate> {
        self.certs.get(&ia)
    }

    /// The TRC of `isd`.
    pub fn trc_of(&self, isd: Isd) -> Option<&Trc> {
        self.trcs.get(&isd)
    }

    /// Verifies `sig` over `payload` as produced by `signer` at time `now`,
    /// walking the full chain: artifact signature → signer certificate →
    /// issuer in the signer's ISD TRC.
    pub fn verify_chain(
        &self,
        signer: IsdAsn,
        domain: SignDomain,
        payload: &[u8],
        sig: &Signature,
        now: SimTime,
    ) -> Result<(), VerifyError> {
        let cert = self
            .certs
            .get(&signer)
            .ok_or(VerifyError::UnknownAs(signer))?;
        if now > cert.not_after {
            return Err(VerifyError::CertificateExpired);
        }
        let trc = self
            .trcs
            .get(&signer.isd)
            .ok_or(VerifyError::UnknownIsd(signer.isd))?;
        // Issuer must be a TRC root, and the cert signature must verify
        // under the issuer's root key.
        let issuer_key = trc
            .roots
            .iter()
            .find(|&&(r, _)| r == cert.issuer)
            .map(|&(_, k)| k)
            .ok_or(VerifyError::IssuerNotInTrc)?;
        let cert_payload =
            AsCertificate::signed_payload(cert.subject, &cert.subject_key, cert.not_after);
        if !verify(
            issuer_key,
            SignDomain::AsCertificate,
            &cert_payload,
            &cert.signature,
        ) {
            return Err(VerifyError::BadCertificateSignature);
        }
        if !verify(cert.subject_key, domain, payload, sig) {
            return Err(VerifyError::BadSignature);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Duration};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn sample_store() -> TrustStore {
        let ases = vec![
            (ia(1, 1), true),
            (ia(1, 2), true),
            (ia(1, 10), false),
            (ia(2, 1), true),
            (ia(2, 20), false),
        ];
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_hours(24))
    }

    #[test]
    fn bootstrap_builds_trcs_and_certs() {
        let s = sample_store();
        assert_eq!(s.trc_of(Isd(1)).unwrap().roots.len(), 2);
        assert_eq!(s.trc_of(Isd(2)).unwrap().roots.len(), 1);
        assert!(s.trc_of(Isd(3)).is_none());
        assert!(s.cert_of(ia(1, 10)).is_some());
        assert!(s.key_of(ia(2, 20)).is_some());
    }

    #[test]
    fn chain_verifies_for_valid_signature() {
        let s = sample_store();
        let signer = ia(1, 10);
        let sig = s
            .key_of(signer)
            .unwrap()
            .sign(SignDomain::PcbAsEntry, b"pcb");
        assert_eq!(
            s.verify_chain(signer, SignDomain::PcbAsEntry, b"pcb", &sig, SimTime::ZERO),
            Ok(())
        );
    }

    #[test]
    fn chain_rejects_tampered_payload() {
        let s = sample_store();
        let signer = ia(1, 10);
        let sig = s
            .key_of(signer)
            .unwrap()
            .sign(SignDomain::PcbAsEntry, b"pcb");
        assert_eq!(
            s.verify_chain(signer, SignDomain::PcbAsEntry, b"PCB", &sig, SimTime::ZERO),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn chain_rejects_wrong_signer_attribution() {
        let s = sample_store();
        let sig = s
            .key_of(ia(1, 10))
            .unwrap()
            .sign(SignDomain::PcbAsEntry, b"pcb");
        // Claiming the signature came from AS 2-20 must fail.
        assert_eq!(
            s.verify_chain(
                ia(2, 20),
                SignDomain::PcbAsEntry,
                b"pcb",
                &sig,
                SimTime::ZERO
            ),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn chain_rejects_unknown_as() {
        let s = sample_store();
        let sig = s
            .key_of(ia(1, 10))
            .unwrap()
            .sign(SignDomain::PcbAsEntry, b"pcb");
        assert_eq!(
            s.verify_chain(
                ia(1, 99),
                SignDomain::PcbAsEntry,
                b"pcb",
                &sig,
                SimTime::ZERO
            ),
            Err(VerifyError::UnknownAs(ia(1, 99)))
        );
    }

    #[test]
    fn chain_rejects_expired_certificate() {
        let s = sample_store();
        let signer = ia(1, 10);
        let sig = s
            .key_of(signer)
            .unwrap()
            .sign(SignDomain::PcbAsEntry, b"pcb");
        let later = SimTime::ZERO + Duration::from_hours(25);
        assert_eq!(
            s.verify_chain(signer, SignDomain::PcbAsEntry, b"pcb", &sig, later),
            Err(VerifyError::CertificateExpired)
        );
    }

    #[test]
    #[should_panic(expected = "no core AS")]
    fn bootstrap_requires_core_per_isd() {
        let _ = TrustStore::bootstrap(
            vec![(ia(1, 1), false)].into_iter(),
            SimTime::ZERO + Duration::from_hours(1),
        );
    }

    #[test]
    fn trc_is_root_checks_key() {
        let s = sample_store();
        let trc = s.trc_of(Isd(1)).unwrap();
        let (root_ia, root_key) = trc.roots[0];
        assert!(trc.is_root(root_ia, root_key));
        let other_key = s.key_of(ia(2, 1)).unwrap().public();
        assert!(!trc.is_root(root_ia, other_key));
    }
}
