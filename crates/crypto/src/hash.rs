//! A small, dependency-free, deterministic hash with arbitrary-length
//! output, used by the simulated signature scheme.
//!
//! Construction: absorb the input into a 4×64-bit state with splitmix64-style
//! mixing, then squeeze output blocks in counter mode. This is a
//! *simulation-grade* hash — deterministic across platforms and resistant to
//! accidental collisions, but **not** cryptographically secure (see crate
//! docs for why that is the right trade-off here).

/// splitmix64 finalizer: a well-studied 64-bit bijective mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash state: 256 bits.
#[derive(Clone, Copy, Debug)]
pub struct Hasher {
    state: [u64; 4],
    len: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher with fixed initialization vector.
    pub fn new() -> Hasher {
        Hasher {
            state: [
                0x6a09_e667_f3bc_c908,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
                0xa54f_f53a_5f1d_36f1,
            ],
            len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word) ^ (chunk.len() as u64) << 56;
            // Feed the word through all four lanes with distinct tweaks so
            // lane states diverge.
            self.state[0] = mix(self.state[0] ^ w);
            self.state[1] = mix(self.state[1].wrapping_add(w).rotate_left(17));
            self.state[2] = mix(self.state[2] ^ w.rotate_left(31));
            self.state[3] = mix(self.state[3].wrapping_add(w ^ 0xdead_beef_cafe_f00d));
        }
        self.len += data.len() as u64;
    }

    /// Convenience: absorb a `u64` in little-endian.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Squeezes `out.len()` bytes of output. Consumes the hasher so a
    /// finalized state cannot be extended (length-extension hygiene).
    pub fn finalize_into(mut self, out: &mut [u8]) {
        // Fold in the total length, then counter-mode squeeze.
        self.state[0] = mix(self.state[0] ^ self.len);
        for (i, block) in out.chunks_mut(8).enumerate() {
            let lane = i % 4;
            let v = mix(self.state[lane] ^ mix(i as u64 ^ 0x5bf0_3635));
            block.copy_from_slice(&v.to_le_bytes()[..block.len()]);
        }
    }

    /// Squeezes a fixed 32-byte digest.
    pub fn finalize32(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.finalize_into(&mut out);
        out
    }
}

/// One-shot hash of `data` into a 32-byte digest.
pub fn hash32(data: &[u8]) -> [u8; 32] {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash32(b"hello"), hash32(b"hello"));
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(hash32(b"hello"), hash32(b"hellp"));
        assert_ne!(hash32(b""), hash32(b"\0"));
    }

    #[test]
    fn length_is_absorbed() {
        // Same words, different split points must differ from a plain
        // prefix (guards against trivial padding collisions).
        assert_ne!(hash32(b"ab"), hash32(b"ab\0\0\0\0\0\0"));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hasher::new();
        h.update(b"hello ");
        h.update(b"world");
        // NOTE: chunked absorption differs from one-shot here by design
        // (chunk boundaries are part of the domain separation); what must
        // hold is determinism of the same call sequence.
        let mut h2 = Hasher::new();
        h2.update(b"hello ");
        h2.update(b"world");
        assert_eq!(h.finalize32(), h2.finalize32());
    }

    #[test]
    fn variable_length_output() {
        let mut small = [0u8; 16];
        let mut big = [0u8; 96];
        let mut h = Hasher::new();
        h.update(b"x");
        h.finalize_into(&mut small);
        let mut h = Hasher::new();
        h.update(b"x");
        h.finalize_into(&mut big);
        // Prefix property: first 16 bytes agree (same squeeze schedule).
        assert_eq!(&big[..16], &small[..]);
        // And output is not degenerate.
        assert!(big.iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn prop_no_accidental_collisions(a in proptest::collection::vec(any::<u8>(), 0..64),
                                         b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(a != b);
            prop_assert_ne!(hash32(&a), hash32(&b));
        }

        #[test]
        fn prop_u64_update_matches_bytes(v in any::<u64>()) {
            let mut h1 = Hasher::new();
            h1.update_u64(v);
            let mut h2 = Hasher::new();
            h2.update(&v.to_le_bytes());
            prop_assert_eq!(h1.finalize32(), h2.finalize32());
        }
    }
}
