//! Dinic's max-flow over undirected unit-capacity link sets.
//!
//! The networks here are small (a pair's disseminated path union is tens of
//! links; the full core topology is a few thousand), so a clean Dinic with
//! BFS level graphs and DFS blocking flows is more than fast enough:
//! O(E·√V) on unit-capacity graphs.

use std::collections::HashMap;

use scion_topology::{AsIndex, AsTopology, LinkIndex};

/// A flow network built from a subset of topology links. Undirected unit
/// edges are stored as a (forward, backward) arc pair with capacity 1 each,
/// the standard undirected-edge encoding.
pub struct FlowNetwork {
    /// arcs: (to, capacity, index of reverse arc)
    arcs: Vec<(u32, u32, u32)>,
    /// adjacency: node -> arc indices
    adj: Vec<Vec<u32>>,
    /// dense node index per AS
    node_of: HashMap<AsIndex, u32>,
}

impl FlowNetwork {
    /// Builds a network from `links` (each an undirected unit-capacity
    /// edge; parallel links stack capacity naturally by being separate
    /// edges). Duplicate link indices are deduplicated — a link can carry
    /// one unit regardless of how many disseminated paths traverse it.
    pub fn from_links(
        topo: &AsTopology,
        links: impl IntoIterator<Item = LinkIndex>,
    ) -> FlowNetwork {
        let mut net = FlowNetwork {
            arcs: Vec::new(),
            adj: Vec::new(),
            node_of: HashMap::new(),
        };
        let mut seen = std::collections::HashSet::new();
        for li in links {
            if !seen.insert(li) {
                continue;
            }
            let l = topo.link(li);
            let a = net.intern(l.a);
            let b = net.intern(l.b);
            net.add_undirected(a, b);
        }
        net
    }

    fn intern(&mut self, ia: AsIndex) -> u32 {
        if let Some(&n) = self.node_of.get(&ia) {
            return n;
        }
        let n = self.adj.len() as u32;
        self.node_of.insert(ia, n);
        self.adj.push(Vec::new());
        n
    }

    fn add_undirected(&mut self, a: u32, b: u32) {
        let i = self.arcs.len() as u32;
        self.arcs.push((b, 1, i + 1));
        self.arcs.push((a, 1, i));
        self.adj[a as usize].push(i);
        self.adj[b as usize].push(i + 1);
    }

    /// Number of nodes that appear on at least one link.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Computes the max flow (= min cut = max link-disjoint paths) between
    /// two ASes. Returns 0 if either AS touches no link in the set.
    pub fn max_flow(&mut self, src: AsIndex, dst: AsIndex) -> u64 {
        let (Some(&s), Some(&t)) = (self.node_of.get(&src), self.node_of.get(&dst)) else {
            return 0;
        };
        if s == t {
            return 0;
        }
        let n = self.adj.len();
        let mut flow = 0u64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s as usize] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &ai in &self.adj[u as usize] {
                    let (to, cap, _) = self.arcs[ai as usize];
                    if cap > 0 && level[to as usize] < 0 {
                        level[to as usize] = level[u as usize] + 1;
                        queue.push_back(to);
                    }
                }
            }
            if level[t as usize] < 0 {
                break;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            // DFS blocking flow.
            while self.dfs(s, t, &level, &mut iter) {
                flow += 1;
            }
        }
        flow
    }

    /// Finds one augmenting unit path in the level graph (iterative DFS).
    fn dfs(&mut self, s: u32, t: u32, level: &[i32], iter: &mut [usize]) -> bool {
        // Stack of (node, arc index chosen to get here).
        let mut path: Vec<(u32, u32)> = Vec::new();
        let mut u = s;
        loop {
            if u == t {
                for &(_, ai) in &path {
                    let (_, ref mut cap, rev) = self.arcs[ai as usize];
                    *cap -= 1;
                    self.arcs[rev as usize].1 += 1;
                }
                return true;
            }
            let mut advanced = false;
            while iter[u as usize] < self.adj[u as usize].len() {
                let ai = self.adj[u as usize][iter[u as usize]];
                let (to, cap, _) = self.arcs[ai as usize];
                if cap > 0 && level[to as usize] == level[u as usize] + 1 {
                    path.push((u, ai));
                    u = to;
                    advanced = true;
                    break;
                }
                iter[u as usize] += 1;
            }
            if !advanced {
                // Dead end: retreat.
                match path.pop() {
                    Some((prev, _)) => {
                        iter[u as usize] = self.adj[u as usize].len(); // exhaust
                        u = prev;
                        iter[u as usize] += 1;
                    }
                    None => return false,
                }
            }
        }
    }
}

/// One-shot max flow between `src` and `dst` over `links`.
pub fn max_flow(
    topo: &AsTopology,
    links: impl IntoIterator<Item = LinkIndex>,
    src: AsIndex,
    dst: AsIndex,
) -> u64 {
    FlowNetwork::from_links(topo, links).max_flow(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn all_links(t: &AsTopology) -> Vec<LinkIndex> {
        t.link_indices().collect()
    }

    #[test]
    fn parallel_links_stack_capacity() {
        let t = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 3)]);
        let a = t.by_address(ia(1)).unwrap();
        let b = t.by_address(ia(2)).unwrap();
        assert_eq!(max_flow(&t, all_links(&t), a, b), 3);
    }

    #[test]
    fn series_bottleneck() {
        // 1 ==3== 2 ==1== 3: bottleneck is the single 2-3 link.
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 3),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let c = t.by_address(ia(3)).unwrap();
        assert_eq!(max_flow(&t, all_links(&t), a, c), 1);
    }

    #[test]
    fn diamond_disjoint_paths() {
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (1, 3, Relationship::PeerToPeer, 1),
            (2, 4, Relationship::PeerToPeer, 1),
            (3, 4, Relationship::PeerToPeer, 1),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let d = t.by_address(ia(4)).unwrap();
        assert_eq!(max_flow(&t, all_links(&t), a, d), 2);
    }

    #[test]
    fn undirected_edges_allow_zigzag_flow() {
        // Classic case where treating edges as directed would undercount:
        // 1-2, 1-3, 2-4, 3-4, 2-3 cross edge. Flow 1->4 = 2.
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (1, 3, Relationship::PeerToPeer, 1),
            (2, 4, Relationship::PeerToPeer, 1),
            (3, 4, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let d = t.by_address(ia(4)).unwrap();
        assert_eq!(max_flow(&t, all_links(&t), a, d), 2);
    }

    #[test]
    fn disconnected_or_missing_nodes_give_zero() {
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (3, 4, Relationship::PeerToPeer, 1),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let c = t.by_address(ia(3)).unwrap();
        assert_eq!(max_flow(&t, all_links(&t), a, c), 0);
        // dst not on any provided link:
        assert_eq!(
            max_flow(&t, vec![t.link_indices().next().unwrap()], a, c),
            0
        );
        // src == dst:
        assert_eq!(max_flow(&t, all_links(&t), a, a), 0);
    }

    #[test]
    fn duplicate_links_do_not_double_capacity() {
        let t = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 1)]);
        let a = t.by_address(ia(1)).unwrap();
        let b = t.by_address(ia(2)).unwrap();
        let li = t.link_indices().next().unwrap();
        assert_eq!(max_flow(&t, vec![li, li, li], a, b), 1);
    }

    #[test]
    fn subset_of_links_restricts_flow() {
        let t = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 3)]);
        let a = t.by_address(ia(1)).unwrap();
        let b = t.by_address(ia(2)).unwrap();
        let two: Vec<LinkIndex> = t.link_indices().take(2).collect();
        assert_eq!(max_flow(&t, two, a, b), 2);
    }

    proptest! {
        /// Max-flow over a random ladder graph equals the analytically
        /// known bottleneck: min over rungs of parallel-link counts.
        #[test]
        fn prop_chain_bottleneck(counts in proptest::collection::vec(1usize..5, 1..8)) {
            let edges: Vec<(u64, u64, Relationship, usize)> = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as u64 + 1, i as u64 + 2, Relationship::PeerToPeer, c))
                .collect();
            let t = topology_from_edges(&edges);
            let first = t.by_address(ia(1)).unwrap();
            let last = t.by_address(ia(counts.len() as u64 + 1)).unwrap();
            let expected = *counts.iter().min().unwrap() as u64;
            prop_assert_eq!(max_flow(&t, t.link_indices().collect::<Vec<_>>(), first, last), expected);
        }

        /// Flow is monotone in the link set.
        #[test]
        fn prop_monotone_in_links(n_links in 1usize..10) {
            let t = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 10)]);
            let a = t.by_address(ia(1)).unwrap();
            let b = t.by_address(ia(2)).unwrap();
            let some: Vec<LinkIndex> = t.link_indices().take(n_links).collect();
            let all: Vec<LinkIndex> = t.link_indices().collect();
            prop_assert!(max_flow(&t, some, a, b) <= max_flow(&t, all, a, b));
        }
    }
}
