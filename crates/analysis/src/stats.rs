//! Distribution statistics for the figure harnesses: empirical CDFs,
//! quantiles, and five-number summaries.

use serde::Serialize;

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug, Serialize)]
pub struct Cdf {
    /// Sorted samples.
    values: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected loudly — they would
    /// poison ordering silently otherwise).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "CDF built from NaN samples"
        );
        samples.sort_by(|a, b| a.total_cmp(b));
        Cdf { values: samples }
    }

    /// From integer samples.
    pub fn from_u64(samples: impl IntoIterator<Item = u64>) -> Cdf {
        Cdf::new(samples.into_iter().map(|v| v as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.values.is_empty(), "quantile of empty CDF");
        let idx = ((q * self.values.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.values.len() - 1);
        self.values[idx]
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The `(value, cumulative fraction)` step points, thinned to at most
    /// `max_points` for plotting/printing.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.values.len();
        if n == 0 {
            return Vec::new();
        }
        let stride = (n / max_points.max(1)).max(1);
        let mut pts: Vec<(f64, f64)> = (0..n)
            .step_by(stride)
            .map(|i| (self.values[i], (i + 1) as f64 / n as f64))
            .collect();
        // Always include the final point.
        let last = (self.values[n - 1], 1.0);
        if pts.last() != Some(&last) {
            pts.push(last);
        }
        pts
    }

    /// Five-number summary.
    pub fn summary(&self) -> Summary {
        Summary {
            min: self.quantile(0.0),
            q25: self.quantile(0.25),
            median: self.quantile(0.5),
            q75: self.quantile(0.75),
            max: self.quantile(1.0),
            mean: self.mean(),
        }
    }
}

/// Five-number summary (plus mean) of a distribution — the shape behind
/// the Fig. 5 box plot.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Summary {
    pub min: f64,
    pub q25: f64,
    pub median: f64,
    pub q75: f64,
    pub max: f64,
    pub mean: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.3e}  q25 {:.3e}  median {:.3e}  q75 {:.3e}  max {:.3e}  mean {:.3e}",
            self.min, self.q25, self.median, self.q75, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_basic() {
        let c = Cdf::from_u64([1, 2, 2, 4]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.at(0.0), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::from_u64([10, 20, 30, 40]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.25), 10.0);
        assert_eq!(c.quantile(0.5), 20.0);
        assert_eq!(c.quantile(1.0), 40.0);
    }

    #[test]
    fn summary_and_mean() {
        let c = Cdf::from_u64([1, 2, 3, 4, 5]);
        let s = c.summary();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let c = Cdf::from_u64(0..1000);
        let pts = c.points(50);
        assert!(pts.len() <= 52);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let c = Cdf::new(vec![]);
        let _ = c.quantile(0.5);
    }

    proptest! {
        #[test]
        fn prop_cdf_at_is_monotone(mut xs in proptest::collection::vec(0u64..100, 1..50),
                                   a in 0f64..100.0, b in 0f64..100.0) {
            xs.sort_unstable();
            let c = Cdf::from_u64(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.at(lo) <= c.at(hi));
        }

        #[test]
        fn prop_quantile_within_range(xs in proptest::collection::vec(0u64..100, 1..50),
                                      q in 0f64..=1.0) {
            let c = Cdf::from_u64(xs.clone());
            let v = c.quantile(q);
            let min = *xs.iter().min().unwrap() as f64;
            let max = *xs.iter().max().unwrap() as f64;
            prop_assert!(v >= min && v <= max);
        }
    }
}
