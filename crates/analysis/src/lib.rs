//! Path-quality analysis for the §5.3 evaluation.
//!
//! * [`maxflow`] — Dinic's algorithm over AS multigraphs with unit link
//!   capacities. Because every inter-AS link has uniform capacity (§5.3:
//!   "assuming that all inter-AS links have uniform capacity"), max-flow
//!   between two ASes simultaneously gives
//!   - the **capacity** in multiples of inter-AS links (Fig. 6b/8), and
//!   - by Menger's theorem, the **failure resilience**: the minimum number
//!     of link failures disconnecting the pair (Fig. 6a/7). The paper makes
//!     the same identification ("maximizing the number of links which can
//!     fail before connectivity is lost … is equivalent to maximizing the
//!     number of parallel links on which traffic can be sent").
//! * [`quality`] — the per-pair metrics: optimum (full topology), an
//!   algorithm's value (union of disseminated paths), and BGP multi-path.
//! * [`stats`] — CDFs, quantiles, and distribution summaries used by the
//!   figure harnesses.

pub mod maxflow;
pub mod quality;
pub mod stats;

pub use maxflow::{max_flow, FlowNetwork};
pub use quality::{pair_quality, PairQuality};
pub use stats::{Cdf, Summary};
