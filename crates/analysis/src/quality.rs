//! Per-pair path-quality metrics (§5.3).
//!
//! For an AS pair, three link sets are compared by max-flow under uniform
//! unit link capacities:
//!
//! * **optimum** — every link of the topology ("All Paths (optimum)");
//! * **algorithm** — the union of the links of the paths the destination's
//!   beacon server disseminated/stores for the pair;
//! * **BGP multi-path** — all parallel links along the single BGP best
//!   path (computed by `scion-bgp`).
//!
//! The resulting number is simultaneously the pair's failure resilience
//! (minimum failing links that disconnect) and its capacity in multiples
//! of inter-AS links — see the crate docs for why those coincide here.

use scion_topology::{AsIndex, AsTopology, LinkIndex};

use crate::maxflow::max_flow;

/// Quality of one ordered AS pair under one path set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairQuality {
    /// Max-flow value: resilience = capacity (unit capacities).
    pub value: u64,
}

/// Computes the quality of `paths` (each a list of links) for the pair
/// `(src, dst)`: max-flow over the union of the paths' links.
pub fn pair_quality(
    topo: &AsTopology,
    paths: &[Vec<LinkIndex>],
    src: AsIndex,
    dst: AsIndex,
) -> PairQuality {
    let links: Vec<LinkIndex> = paths.iter().flatten().copied().collect();
    PairQuality {
        value: max_flow(topo, links, src, dst),
    }
}

/// The optimum quality for the pair: max-flow over the whole topology
/// restricted to `links` (pass all links, or e.g. only core links).
pub fn optimum_quality(
    topo: &AsTopology,
    links: &[LinkIndex],
    src: AsIndex,
    dst: AsIndex,
) -> PairQuality {
    PairQuality {
        value: max_flow(topo, links.iter().copied(), src, dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    #[test]
    fn algorithm_quality_bounded_by_optimum() {
        // Square with parallel top edge.
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 2),
            (2, 3, Relationship::PeerToPeer, 1),
            (1, 4, Relationship::PeerToPeer, 1),
            (4, 3, Relationship::PeerToPeer, 1),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let c = t.by_address(ia(3)).unwrap();
        let all: Vec<LinkIndex> = t.link_indices().collect();
        let opt = optimum_quality(&t, &all, a, c);
        assert_eq!(opt.value, 2); // 2-3 bottleneck on top + bottom path

        // A dissemination that only found the bottom path.
        let bottom: Vec<LinkIndex> = t
            .link_indices()
            .filter(|&li| {
                let l = t.link(li);
                let asn = |i: AsIndex| t.node(i).ia.asn.value();
                matches!((asn(l.a), asn(l.b)), (1, 4) | (4, 1) | (4, 3) | (3, 4))
            })
            .collect();
        let q = pair_quality(&t, &[bottom], a, c);
        assert_eq!(q.value, 1);
        assert!(q.value <= opt.value);
    }

    #[test]
    fn empty_path_set_has_zero_quality() {
        let t = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 1)]);
        let a = t.by_address(ia(1)).unwrap();
        let b = t.by_address(ia(2)).unwrap();
        assert_eq!(pair_quality(&t, &[], a, b).value, 0);
    }

    #[test]
    fn overlapping_paths_do_not_inflate_quality() {
        let t = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 2),
        ]);
        let a = t.by_address(ia(1)).unwrap();
        let c = t.by_address(ia(3)).unwrap();
        let l12 = t.links_between(a, t.by_address(ia(2)).unwrap())[0];
        let l23 = t.links_between(t.by_address(ia(2)).unwrap(), c);
        // Two paths share the single 1-2 link: quality stays 1.
        let p1 = vec![l12, l23[0]];
        let p2 = vec![l12, l23[1]];
        assert_eq!(pair_quality(&t, &[p1, p2], a, c).value, 1);
    }
}
