//! The receiver half: duplicate suppression.
//!
//! A retransmission races its own ack — when the data message arrived but
//! the ack was lost, the sender retransmits a message the receiver already
//! processed. The receiver must ack *every* copy (the sender still needs
//! to stop) but deliver the payload to the application exactly once. Ids
//! are unique per sender channel, so a per-receiver set of seen ids is
//! sufficient and exact.

use std::collections::HashSet;

use crate::channel::MsgId;

/// Per-node duplicate suppression over one sender id space.
#[derive(Clone, Debug, Default)]
pub struct DedupReceiver {
    seen: Vec<HashSet<u64>>,
    duplicates: u64,
}

impl DedupReceiver {
    /// A receiver table for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> DedupReceiver {
        DedupReceiver {
            seen: vec![HashSet::new(); num_nodes],
            duplicates: 0,
        }
    }

    /// Records `id` as received by `node`. Returns `true` on first sight
    /// (deliver to the application) and `false` for a duplicate (ack it,
    /// deliver nothing).
    pub fn accept(&mut self, node: usize, id: MsgId) -> bool {
        let fresh = self.seen[node].insert(id.0);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Duplicates suppressed so far, across all nodes.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Distinct messages seen by `node`.
    pub fn seen_by(&self, node: usize) -> usize {
        self.seen[node].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sight_accepts_duplicates_suppress() {
        let mut d = DedupReceiver::new(3);
        assert!(d.accept(0, MsgId(7)));
        assert!(!d.accept(0, MsgId(7)));
        assert!(!d.accept(0, MsgId(7)));
        // Another node has its own view.
        assert!(d.accept(1, MsgId(7)));
        assert_eq!(d.duplicates(), 2);
        assert_eq!(d.seen_by(0), 1);
        assert_eq!(d.seen_by(2), 0);
    }
}
