//! The sender half of the reliable channel: pending-ack tracking and the
//! timeout/retransmit/backoff state machine.
//!
//! The channel is deliberately engine-agnostic: callers register each
//! send, deliver acks as they arrive, and ask for [`TimeoutAction`]s when
//! a deadline passes. The driver owns the actual wire (scheduling the
//! engine `Deliver` events and a wake-up timer at
//! [`ReliableSender::next_deadline`]); the channel owns *when* and *what*
//! to retransmit. Jitter is a pure function of `(seed, id, attempt)` — no
//! RNG state — so the backoff schedule of any message is exactly
//! reproducible regardless of what else the run does.

use std::collections::{BTreeMap, BTreeSet};

use scion_topology::{AsIndex, LinkIndex};
use scion_types::{Duration, SimTime};
use serde::Serialize;

/// A monotonically-assigned message id, unique per [`ReliableSender`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct MsgId(pub u64);

/// Tuning of the retransmit state machine.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Timeout before the first retransmission.
    pub base_timeout: Duration,
    /// Backoff multiplier per attempt, in percent (200 = doubling).
    pub backoff_pct: u32,
    /// Upper bound on any single timeout.
    pub max_timeout: Duration,
    /// Additive jitter as a percentage of the computed timeout: attempt
    /// `k` of message `m` waits `timeout_k * (1 + u/100)` with
    /// `u = hash(seed, m, k) % (jitter_pct + 1)`.
    pub jitter_pct: u32,
    /// Total transmissions (including the first) before giving up.
    pub max_attempts: u32,
    /// Seed of the deterministic jitter hash.
    pub seed: u64,
    /// Multiplier (percent) applied on top of the normal backoff when the
    /// receiver says *busy*: an overloaded server that sheds a request
    /// must see the retry later than a lost packet would, or retries add
    /// load exactly when capacity is short. 400 = the busy retry waits 4×
    /// the normal timeout. Values under 100 are treated as 100.
    pub busy_penalty_pct: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        // First retransmit after 500 ms (covers the 2×80 ms worst-case
        // RTT of the latency model plus jitter), doubling to a 60 s cap;
        // 6 attempts push the residual failure probability at 20% link
        // loss below 1e-4 per direction.
        ReliableConfig {
            base_timeout: Duration::from_millis(500),
            backoff_pct: 200,
            max_timeout: Duration::from_secs(60),
            jitter_pct: 25,
            max_attempts: 6,
            seed: 0,
            busy_penalty_pct: 400,
        }
    }
}

impl ReliableConfig {
    /// The deadline offset armed after transmission `attempt` (1-based)
    /// of message `id`: exponential backoff, capped, plus deterministic
    /// jitter.
    pub fn timeout_for(&self, id: MsgId, attempt: u32) -> Duration {
        let mut us = self.base_timeout.as_micros();
        for _ in 1..attempt {
            us = us
                .saturating_mul(self.backoff_pct as u64)
                .checked_div(100)
                .unwrap_or(us);
            if us >= self.max_timeout.as_micros() {
                us = self.max_timeout.as_micros();
                break;
            }
        }
        us = us.min(self.max_timeout.as_micros());
        if self.jitter_pct > 0 {
            let h =
                splitmix64(self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt as u64);
            let pct = h % (self.jitter_pct as u64 + 1);
            us += us.saturating_mul(pct) / 100;
        }
        Duration::from_micros(us)
    }

    /// The deadline offset armed after a *busy* signal for transmission
    /// `attempt` of message `id`: the normal exponential+jittered backoff
    /// stretched by [`ReliableConfig::busy_penalty_pct`]. Still a pure
    /// function of `(seed, id, attempt)`.
    pub fn busy_timeout_for(&self, id: MsgId, attempt: u32) -> Duration {
        let us = self.timeout_for(id, attempt).as_micros();
        let penalty = self.busy_penalty_pct.max(100) as u64;
        Duration::from_micros(us.saturating_mul(penalty) / 100)
    }
}

/// SplitMix64: a tiny stateless mixer, good enough for jitter spreading.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the driver must do when a deadline fires.
#[derive(Clone, Debug)]
pub enum TimeoutAction<M> {
    /// Put the payload back on the wire and keep waiting (the channel has
    /// already re-armed the next deadline).
    Retransmit {
        id: MsgId,
        to: AsIndex,
        via: LinkIndex,
        payload: M,
    },
    /// `max_attempts` exhausted: the message is abandoned and its state
    /// dropped. The payload is returned so callers can degrade gracefully
    /// (e.g. a path server noting a dead origin).
    GiveUp {
        id: MsgId,
        to: AsIndex,
        via: LinkIndex,
        payload: M,
    },
}

/// Counters of one sender's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SenderStats {
    /// First transmissions registered.
    pub sent: u64,
    /// Retransmissions issued on timeout.
    pub retransmits: u64,
    /// Acks that matched a pending message.
    pub acked: u64,
    /// Deadlines that fired with the message still pending.
    pub timeouts: u64,
    /// Messages abandoned after `max_attempts`.
    pub give_ups: u64,
    /// Busy signals that re-armed a pending deadline on the penalized
    /// schedule.
    pub busy_backoffs: u64,
}

struct Pending<M> {
    to: AsIndex,
    via: LinkIndex,
    payload: M,
    /// Transmissions so far (1 after `register`).
    attempts: u32,
    deadline: SimTime,
}

/// The sender-side reliable channel over one driver's engine.
pub struct ReliableSender<M> {
    cfg: ReliableConfig,
    next_id: u64,
    pending: BTreeMap<u64, Pending<M>>,
    /// Deadline index: `(deadline, id)`, kept in lockstep with `pending`.
    due: BTreeSet<(SimTime, u64)>,
    stats: SenderStats,
}

impl<M: Clone> ReliableSender<M> {
    pub fn new(cfg: ReliableConfig) -> ReliableSender<M> {
        ReliableSender {
            cfg,
            next_id: 0,
            pending: BTreeMap::new(),
            due: BTreeSet::new(),
            stats: SenderStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReliableConfig {
        &self.cfg
    }

    /// Registers a fresh transmission, assigning its id and arming the
    /// first retransmit deadline. The caller performs the actual send.
    pub fn register(&mut self, now: SimTime, to: AsIndex, via: LinkIndex, payload: M) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        let deadline = now + self.cfg.timeout_for(id, 1);
        self.pending.insert(
            id.0,
            Pending {
                to,
                via,
                payload,
                attempts: 1,
                deadline,
            },
        );
        self.due.insert((deadline, id.0));
        self.stats.sent += 1;
        id
    }

    /// Handles an incoming ack. Returns `true` when it settled a pending
    /// message (late/duplicate acks return `false` and change nothing).
    pub fn on_ack(&mut self, id: MsgId) -> bool {
        match self.pending.remove(&id.0) {
            Some(p) => {
                self.due.remove(&(p.deadline, id.0));
                self.stats.acked += 1;
                true
            }
            None => false,
        }
    }

    /// Pops every deadline at or before `now`, re-arming retransmissions
    /// and dropping give-ups. The driver executes the returned actions in
    /// order (the order is deterministic: by deadline, then id).
    pub fn due_actions(&mut self, now: SimTime) -> Vec<TimeoutAction<M>> {
        let mut out = Vec::new();
        while let Some(&(deadline, id)) = self.due.iter().next() {
            if deadline > now {
                break;
            }
            self.due.remove(&(deadline, id));
            self.stats.timeouts += 1;
            let p = self.pending.get_mut(&id).expect("due implies pending");
            if p.attempts >= self.cfg.max_attempts {
                let p = self.pending.remove(&id).expect("present");
                self.stats.give_ups += 1;
                out.push(TimeoutAction::GiveUp {
                    id: MsgId(id),
                    to: p.to,
                    via: p.via,
                    payload: p.payload,
                });
            } else {
                p.attempts += 1;
                p.deadline = now + self.cfg.timeout_for(MsgId(id), p.attempts);
                self.due.insert((p.deadline, id));
                self.stats.retransmits += 1;
                out.push(TimeoutAction::Retransmit {
                    id: MsgId(id),
                    to: p.to,
                    via: p.via,
                    payload: p.payload.clone(),
                });
            }
        }
        out
    }

    /// Handles an explicit *busy* rejection of message `id`: the pending
    /// deadline is re-armed on the penalized schedule
    /// ([`ReliableConfig::busy_timeout_for`]) so the retry lands after the
    /// overload, not during it. The attempt budget is untouched — the
    /// request was shed, not lost. Returns `true` when the message was
    /// pending (late/duplicate busy signals change nothing).
    pub fn on_busy(&mut self, id: MsgId, now: SimTime) -> bool {
        let Some(p) = self.pending.get_mut(&id.0) else {
            return false;
        };
        self.due.remove(&(p.deadline, id.0));
        p.deadline = now + self.cfg.busy_timeout_for(id, p.attempts);
        self.due.insert((p.deadline, id.0));
        self.stats.busy_backoffs += 1;
        true
    }

    /// The earliest armed deadline, for scheduling the driver's wake-up
    /// timer. `None` when nothing is pending.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.due.iter().next().map(|&(t, _)| t)
    }

    /// Messages still awaiting an ack.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn cfg_no_jitter() -> ReliableConfig {
        ReliableConfig {
            base_timeout: Duration::from_micros(100),
            backoff_pct: 200,
            max_timeout: Duration::from_micros(1_000),
            jitter_pct: 0,
            max_attempts: 3,
            seed: 7,
            busy_penalty_pct: 400,
        }
    }

    #[test]
    fn ack_settles_pending_and_late_acks_are_ignored() {
        let mut s: ReliableSender<&'static str> = ReliableSender::new(cfg_no_jitter());
        let id = s.register(t(0), AsIndex(1), LinkIndex(0), "hello");
        assert_eq!(s.pending_len(), 1);
        assert!(s.on_ack(id));
        assert!(!s.on_ack(id), "second ack must be a no-op");
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.next_deadline(), None);
        assert!(s.due_actions(t(10_000)).is_empty());
        assert_eq!(s.stats().acked, 1);
        assert_eq!(s.stats().retransmits, 0);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut s: ReliableSender<u32> = ReliableSender::new(cfg_no_jitter());
        s.register(t(0), AsIndex(2), LinkIndex(1), 99);
        // Attempt 1 at t=0; deadlines at 100, then +200, then give-up.
        let mut retransmits = 0;
        let mut gave_up = false;
        let mut now = 0;
        for _ in 0..10 {
            let Some(deadline) = s.next_deadline() else {
                break;
            };
            now = deadline.as_micros();
            for a in s.due_actions(t(now)) {
                match a {
                    TimeoutAction::Retransmit { payload, .. } => {
                        assert_eq!(payload, 99);
                        retransmits += 1;
                    }
                    TimeoutAction::GiveUp { payload, to, .. } => {
                        assert_eq!(payload, 99);
                        assert_eq!(to, AsIndex(2));
                        gave_up = true;
                    }
                }
            }
        }
        // max_attempts = 3: original + 2 retransmits, then the third
        // deadline abandons the message.
        assert_eq!(retransmits, 2);
        assert!(gave_up, "third timeout must give up");
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.stats().give_ups, 1);
        assert_eq!(s.stats().timeouts, 3);
        // Backoff doubled: deadlines at 100, 100+200, 300+400.
        assert_eq!(now, 700);
    }

    #[test]
    fn backoff_schedule_is_exactly_reproducible() {
        let cfg = ReliableConfig {
            jitter_pct: 50,
            seed: 42,
            ..cfg_no_jitter()
        };
        let schedule = |cfg: &ReliableConfig| -> Vec<u64> {
            (1..=6)
                .flat_map(|attempt| {
                    (0..4).map(move |id| cfg.timeout_for(MsgId(id), attempt).as_micros())
                })
                .collect()
        };
        assert_eq!(schedule(&cfg), schedule(&cfg.clone()));
        // Different seed, different jitter somewhere.
        let other = ReliableConfig { seed: 43, ..cfg };
        assert_ne!(schedule(&cfg), schedule(&other));
        // Jitter never exceeds jitter_pct on top of the base backoff.
        for attempt in 1..=6u32 {
            let base = cfg_no_jitter().timeout_for(MsgId(0), attempt).as_micros();
            let jittered = cfg.timeout_for(MsgId(0), attempt).as_micros();
            assert!(jittered >= base, "jitter is additive");
            assert!(jittered <= base + base / 2, "jitter capped at 50%");
        }
    }

    #[test]
    fn backoff_caps_at_max_timeout() {
        let cfg = ReliableConfig {
            base_timeout: Duration::from_micros(100),
            backoff_pct: 1_000,
            max_timeout: Duration::from_micros(500),
            jitter_pct: 0,
            max_attempts: 10,
            seed: 0,
            busy_penalty_pct: 400,
        };
        assert_eq!(cfg.timeout_for(MsgId(0), 1).as_micros(), 100);
        assert_eq!(cfg.timeout_for(MsgId(0), 2).as_micros(), 500);
        assert_eq!(cfg.timeout_for(MsgId(0), 9).as_micros(), 500);
    }

    #[test]
    fn busy_signal_backs_off_harder_than_a_timeout() {
        // Satellite: a shed request must retry *later* than a lost one —
        // the busy penalty stretches the armed deadline 4×.
        let mut s: ReliableSender<u8> = ReliableSender::new(cfg_no_jitter());
        let id = s.register(t(0), AsIndex(0), LinkIndex(0), 1);
        assert_eq!(s.next_deadline(), Some(t(100)));
        // Busy response arrives at t=50: deadline re-arms at 50 + 4×100.
        assert!(s.on_busy(id, t(50)));
        assert_eq!(s.next_deadline(), Some(t(450)));
        assert_eq!(s.stats().busy_backoffs, 1);
        // The attempt budget is untouched: the full retransmit ladder
        // still runs after the penalized wait.
        let acts = s.due_actions(t(450));
        assert_eq!(acts.len(), 1);
        assert!(matches!(acts[0], TimeoutAction::Retransmit { .. }));
        // A busy for a settled message is a no-op.
        assert!(s.on_ack(id));
        assert!(!s.on_busy(id, t(500)));
        assert_eq!(s.stats().busy_backoffs, 1);
    }

    #[test]
    fn busy_penalty_is_deterministic_and_floored_at_normal_schedule() {
        let cfg = ReliableConfig {
            jitter_pct: 25,
            seed: 9,
            ..cfg_no_jitter()
        };
        for attempt in 1..=3 {
            let normal = cfg.timeout_for(MsgId(3), attempt);
            let busy = cfg.busy_timeout_for(MsgId(3), attempt);
            assert_eq!(busy.as_micros(), normal.as_micros() * 4);
        }
        // A penalty under 100% never schedules the busy retry *sooner*
        // than the normal timeout.
        let degenerate = ReliableConfig {
            busy_penalty_pct: 10,
            ..cfg_no_jitter()
        };
        assert_eq!(
            degenerate.busy_timeout_for(MsgId(0), 1),
            degenerate.timeout_for(MsgId(0), 1)
        );
    }

    #[test]
    fn ids_are_monotonic_and_deadlines_ordered() {
        let mut s: ReliableSender<u8> = ReliableSender::new(cfg_no_jitter());
        let a = s.register(t(0), AsIndex(0), LinkIndex(0), 1);
        let b = s.register(t(5), AsIndex(0), LinkIndex(0), 2);
        assert!(b.0 > a.0);
        // Earliest deadline is a's (registered earlier, same timeout).
        assert_eq!(s.next_deadline(), Some(t(100)));
        assert!(s.on_ack(a));
        assert_eq!(s.next_deadline(), Some(t(105)));
    }

    #[test]
    fn due_actions_pop_in_deadline_then_id_order() {
        let mut s: ReliableSender<u8> = ReliableSender::new(cfg_no_jitter());
        s.register(t(0), AsIndex(0), LinkIndex(0), 0);
        s.register(t(0), AsIndex(1), LinkIndex(0), 1);
        let acts = s.due_actions(t(100));
        assert_eq!(acts.len(), 2);
        let ids: Vec<u64> = acts
            .iter()
            .map(|a| match a {
                TimeoutAction::Retransmit { id, .. } | TimeoutAction::GiveUp { id, .. } => id.0,
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
