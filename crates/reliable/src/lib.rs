//! `scion-reliable`: reliable delivery for the simulated control plane.
//!
//! The paper's overhead and convergence results (§5, Table 1) implicitly
//! assume control-plane messages — PCBs, segment registrations, path
//! lookups — always arrive. Deployed SCION sees constant loss and churn
//! (the SCIONLab measurement study; "SCION Five Years Later"), so the
//! protocol machinery that keeps beaconing and lookup converging *anyway*
//! is part of the deployment story. This crate is that machinery, engine-
//! agnostic so every driver (beaconing, path-server workloads) can thread
//! it through its own event loop:
//!
//! * [`channel`] — the sender half: monotonically-assigned message ids, a
//!   pending-ack table, timeout-driven retransmission with exponential
//!   backoff, deterministic per-(id, attempt) jitter, and max-attempts
//!   give-up;
//! * [`dedup`] — the receiver half: per-node duplicate suppression so a
//!   retransmission whose original did arrive (its ack was lost) is acked
//!   again but never delivered to the application twice.
//!
//! Everything is virtual-time and allocation-light; nothing here touches
//! wall clocks or OS randomness, so same-seed runs replay bit for bit.

pub mod channel;
pub mod dedup;

pub use channel::{MsgId, ReliableConfig, ReliableSender, SenderStats, TimeoutAction};
pub use dedup::DedupReceiver;
