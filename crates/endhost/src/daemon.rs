//! The SCION daemon: per-host path resolution and fast failover.
//!
//! §3.4: "The control-plane component (i.e., SCION daemon) communicates
//! with the AS's control service (CS) to build end-to-end forwarding paths
//! for applications on their behalf." §4.2: after a link failure "it can
//! immediately switch to an alternative path not containing the failed
//! link" — which is why diverse path sets matter in the first place.

use std::collections::{HashMap, HashSet};

use scion_dataplane::scmp::ScmpMessage;
use scion_proto::combine::{combine_paths, peering_path, shortcut_path, EndToEndPath};
use scion_proto::segment::{PathSegment, SegmentType};
use scion_types::{Duration, IsdAsn, LinkEnd, LinkId, SimTime};

/// The segments the control service handed the daemon for one resolution:
/// the host's up-segments, core segments toward the destination ISD, and
/// the destination's down-segments.
#[derive(Clone, Debug, Default)]
pub struct SegmentSet {
    pub up: Vec<PathSegment>,
    pub core: Vec<PathSegment>,
    pub down: Vec<PathSegment>,
}

/// The SCION daemon of one host/AS.
#[derive(Clone, Debug, Default)]
pub struct ScionDaemon {
    /// Resolved paths per destination, best (shortest) first.
    cache: HashMap<IsdAsn, Vec<EndToEndPath>>,
    /// Links currently known-failed from SCMP messages, with the time of
    /// the notification.
    failed_links: HashMap<LinkId, SimTime>,
    /// How long an SCMP failure mark stays in force before it ages out
    /// and the marked paths are considered usable again. `None` keeps
    /// marks until [`ScionDaemon::expire_failures`] is called explicitly.
    failure_ttl: Option<Duration>,
    /// Paths handed out (for statistics).
    pub paths_served: u64,
    /// SCMP messages processed.
    pub scmp_processed: u64,
}

/// The links of a path as canonical [`LinkId`]s.
fn path_links(path: &EndToEndPath) -> Vec<LinkId> {
    path.links()
        .into_iter()
        .map(|(a, b): (LinkEnd, LinkEnd)| LinkId::new(a, b))
        .collect()
}

impl ScionDaemon {
    pub fn new() -> ScionDaemon {
        ScionDaemon::default()
    }

    /// A daemon whose SCMP failure marks age out after `ttl` — expiry runs
    /// automatically inside [`ScionDaemon::resolve`] and
    /// [`ScionDaemon::best_path_at`], so a repaired link's paths come back
    /// without any explicit restoration call.
    pub fn with_failure_ttl(ttl: Duration) -> ScionDaemon {
        ScionDaemon {
            failure_ttl: Some(ttl),
            ..ScionDaemon::default()
        }
    }

    /// Resolves every end-to-end path the segment set permits, caches
    /// them (shortest first, deduplicated by link sequence), and returns
    /// how many were found.
    ///
    /// Tries all of §2.3's combinations: up+core+down, up+down at a
    /// shared core, shortcuts at a common non-core AS, and peering-link
    /// crossovers.
    pub fn resolve(&mut self, dst: IsdAsn, segments: &SegmentSet, now: SimTime) -> usize {
        self.expire_failures_by_ttl(now);
        let mut found: Vec<EndToEndPath> = Vec::new();
        let live = |s: &PathSegment| !s.is_expired(now);

        let ups: Vec<&PathSegment> = segments.up.iter().filter(|s| live(s)).collect();
        let cores: Vec<&PathSegment> = segments.core.iter().filter(|s| live(s)).collect();
        let downs: Vec<&PathSegment> = segments.down.iter().filter(|s| live(s)).collect();

        for u in &ups {
            debug_assert_eq!(u.seg_type, SegmentType::Up);
            // Same-core join (no core segment needed).
            for d in &downs {
                if let Ok(p) = combine_paths(Some(u), None, Some(d)) {
                    found.push(p);
                }
                if let Ok(p) = shortcut_path(u, d) {
                    found.push(p);
                }
                if let Ok(p) = peering_path(u, d) {
                    found.push(p);
                }
                for c in &cores {
                    if let Ok(p) = combine_paths(Some(u), Some(c), Some(d)) {
                        found.push(p);
                    }
                }
            }
        }
        found.retain(|p| p.destination() == dst);
        found.sort_by_key(|p| (p.len(), p.links()));
        found.dedup_by_key(|p| p.links());
        let n = found.len();
        self.cache.insert(dst, found);
        n
    }

    /// Installs pre-combined paths toward `dst` directly (the recovery
    /// driver hands daemons their multipath set this way). Paths are
    /// cached shortest-first and deduplicated by link sequence, exactly
    /// like [`ScionDaemon::resolve`] output. Returns the cached count.
    pub fn install_paths(&mut self, dst: IsdAsn, paths: Vec<EndToEndPath>) -> usize {
        let mut found = paths;
        found.retain(|p| p.destination() == dst);
        found.sort_by_key(|p| (p.len(), p.links()));
        found.dedup_by_key(|p| p.links());
        let n = found.len();
        self.cache.insert(dst, found);
        n
    }

    /// [`ScionDaemon::best_path`] at a known instant: ages out failure
    /// marks older than the daemon's failure TTL first, so paths over a
    /// repaired (or merely unconfirmed-dead) link become eligible again.
    pub fn best_path_at(&mut self, dst: IsdAsn, now: SimTime) -> Option<EndToEndPath> {
        self.expire_failures_by_ttl(now);
        self.best_path(dst)
    }

    /// The best usable (non-failed) path toward `dst`, if any.
    pub fn best_path(&mut self, dst: IsdAsn) -> Option<EndToEndPath> {
        let failed: HashSet<LinkId> = self.failed_links.keys().copied().collect();
        let path = self
            .cache
            .get(&dst)?
            .iter()
            .find(|p| path_links(p).iter().all(|l| !failed.contains(l)))
            .cloned();
        if path.is_some() {
            self.paths_served += 1;
        }
        path
    }

    /// All cached paths toward `dst` (failed ones included; callers that
    /// want usable paths should ask [`ScionDaemon::best_path`]).
    pub fn cached_paths(&self, dst: IsdAsn) -> &[EndToEndPath] {
        self.cache.get(&dst).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Processes an SCMP failure notification: marks the link failed so
    /// subsequent [`ScionDaemon::best_path`] calls avoid it. "Hosts switch
    /// to a different path as soon as the SCMP message is received" (§4.1).
    pub fn handle_scmp(&mut self, msg: &ScmpMessage, now: SimTime) {
        self.scmp_processed += 1;
        if let ScmpMessage::ExternalInterfaceDown { at, interface, .. } = msg {
            // The failed link is identified by its near end; we mark every
            // cached link with that end.
            let near = LinkEnd::new(*at, *interface);
            let mut hit = Vec::new();
            for paths in self.cache.values() {
                for p in paths {
                    for l in path_links(p) {
                        if l.lo() == near || l.hi() == near {
                            hit.push(l);
                        }
                    }
                }
            }
            for l in hit {
                self.failed_links.insert(l, now);
            }
        }
    }

    /// Clears failure state older than `horizon` (links get repaired; the
    /// control plane re-disseminates paths over them). Returns how many
    /// marks aged out.
    pub fn expire_failures(&mut self, horizon: SimTime) -> usize {
        let before = self.failed_links.len();
        self.failed_links.retain(|_, &mut at| at >= horizon);
        before - self.failed_links.len()
    }

    /// Applies the configured failure TTL at `now`, if one is set.
    fn expire_failures_by_ttl(&mut self, now: SimTime) -> usize {
        match self.failure_ttl {
            Some(ttl) => {
                let horizon = SimTime::from_micros(now.as_micros().saturating_sub(ttl.as_micros()));
                self.expire_failures(horizon)
            }
            None => 0,
        }
    }

    /// Number of currently known-failed links.
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_types::{Asn, Duration, IfId, Isd};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        let mut ases = vec![];
        for isd in 1..=2u16 {
            for asn in 1..=9u64 {
                ases.push((ia(isd, asn), asn <= 2));
            }
        }
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_days(30))
    }

    fn seg(
        tr: &TrustStore,
        ty: SegmentType,
        hops: &[(IsdAsn, u16, u16)],
        lifetime_h: u64,
    ) -> PathSegment {
        let (first, rest) = hops.split_first().unwrap();
        let mut pcb = Pcb::originate(
            first.0,
            IfId(first.2),
            SimTime::ZERO,
            Duration::from_hours(lifetime_h),
            0,
            tr,
        );
        for &(h, ing, eg) in rest {
            pcb = pcb.extend(h, IfId(ing), IfId(eg), vec![], tr);
        }
        PathSegment::from_terminated_pcb(ty, pcb)
    }

    /// Host in 1-5, destination 2-5; two up-segments (dual-homed through
    /// different core interfaces), one core segment, one down-segment.
    fn segments(tr: &TrustStore) -> SegmentSet {
        SegmentSet {
            up: vec![
                seg(
                    tr,
                    SegmentType::Up,
                    &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)],
                    6,
                ),
                seg(
                    tr,
                    SegmentType::Up,
                    &[(ia(1, 1), 0, 2), (ia(1, 5), 2, 0)],
                    6,
                ),
            ],
            core: vec![seg(
                tr,
                SegmentType::Core,
                &[(ia(1, 1), 0, 9), (ia(2, 1), 9, 0)],
                6,
            )],
            down: vec![seg(
                tr,
                SegmentType::Down,
                &[(ia(2, 1), 0, 3), (ia(2, 5), 1, 0)],
                6,
            )],
        }
    }

    #[test]
    fn resolve_finds_all_combinations() {
        let tr = trust();
        let mut d = ScionDaemon::new();
        let n = d.resolve(ia(2, 5), &segments(&tr), SimTime::ZERO);
        assert_eq!(n, 2, "two up-segments x one core x one down");
        let best = d.best_path(ia(2, 5)).unwrap();
        assert_eq!(best.source(), ia(1, 5));
        assert_eq!(best.destination(), ia(2, 5));
        assert_eq!(d.paths_served, 1);
    }

    #[test]
    fn expired_segments_are_ignored() {
        let tr = trust();
        let mut segs = segments(&tr);
        segs.up.truncate(1);
        // Make the only remaining up-segment short-lived.
        segs.up[0] = seg(
            &tr,
            SegmentType::Up,
            &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)],
            1,
        );
        let mut d = ScionDaemon::new();
        let later = SimTime::ZERO + Duration::from_hours(2);
        assert_eq!(d.resolve(ia(2, 5), &segs, later), 0);
        assert!(d.best_path(ia(2, 5)).is_none());
    }

    #[test]
    fn scmp_triggers_instant_failover() {
        let tr = trust();
        let mut d = ScionDaemon::new();
        d.resolve(ia(2, 5), &segments(&tr), SimTime::ZERO);
        let first = d.best_path(ia(2, 5)).unwrap();

        // A border router reports the first path's first link down.
        let (near, _) = first.links()[0];
        d.handle_scmp(
            &ScmpMessage::ExternalInterfaceDown {
                at: near.ia,
                interface: near.ifid,
                observed_at: SimTime::ZERO + Duration::from_secs(5),
            },
            SimTime::ZERO + Duration::from_secs(5),
        );
        assert!(d.failed_link_count() >= 1);
        let second = d.best_path(ia(2, 5)).expect("disjoint alternative exists");
        assert_ne!(first.links(), second.links());
        // The new path avoids the failed link end.
        assert!(second.links().iter().all(|&(a, b)| a != near && b != near));
    }

    #[test]
    fn failure_expiry_restores_paths() {
        let tr = trust();
        let mut d = ScionDaemon::new();
        d.resolve(ia(2, 5), &segments(&tr), SimTime::ZERO);
        let first = d.best_path(ia(2, 5)).unwrap();
        let (near, _) = first.links()[0];
        let t_fail = SimTime::ZERO + Duration::from_secs(5);
        d.handle_scmp(
            &ScmpMessage::ExternalInterfaceDown {
                at: near.ia,
                interface: near.ifid,
                observed_at: t_fail,
            },
            t_fail,
        );
        assert_ne!(d.best_path(ia(2, 5)).unwrap().links(), first.links());
        // The failure ages out.
        d.expire_failures(t_fail + Duration::from_secs(1));
        assert_eq!(d.failed_link_count(), 0);
        assert_eq!(d.best_path(ia(2, 5)).unwrap().links(), first.links());
    }

    #[test]
    fn failure_ttl_expires_marks_inside_resolution() {
        // Satellite regression: `expire_failures` is wired into the
        // resolution surface itself — a TTL'd daemon restores failed-over
        // paths through `best_path_at`/`resolve` with no explicit call.
        let tr = trust();
        let ttl = Duration::from_secs(5);
        let mut d = ScionDaemon::with_failure_ttl(ttl);
        d.resolve(ia(2, 5), &segments(&tr), SimTime::ZERO);
        let first = d.best_path(ia(2, 5)).unwrap();
        let (near, _) = first.links()[0];
        let t_fail = SimTime::ZERO + Duration::from_secs(10);
        d.handle_scmp(
            &ScmpMessage::ExternalInterfaceDown {
                at: near.ia,
                interface: near.ifid,
                observed_at: t_fail,
            },
            t_fail,
        );

        // Inside the TTL the mark holds and failover is in force.
        let during = t_fail + Duration::from_secs(4);
        assert_ne!(
            d.best_path_at(ia(2, 5), during).unwrap().links(),
            first.links()
        );
        assert_eq!(d.failed_link_count(), 1);

        // Past the TTL, best_path_at alone restores the primary.
        let after = t_fail + ttl + Duration::from_secs(1);
        assert_eq!(
            d.best_path_at(ia(2, 5), after).unwrap().links(),
            first.links()
        );
        assert_eq!(d.failed_link_count(), 0);

        // And resolve() applies the same expiry (re-mark, then resolve).
        d.handle_scmp(
            &ScmpMessage::ExternalInterfaceDown {
                at: near.ia,
                interface: near.ifid,
                observed_at: after,
            },
            after,
        );
        assert_eq!(d.failed_link_count(), 1);
        d.resolve(
            ia(2, 5),
            &segments(&tr),
            after + ttl + Duration::from_secs(1),
        );
        assert_eq!(d.failed_link_count(), 0);
    }

    #[test]
    fn installed_paths_serve_like_resolved_ones() {
        let tr = trust();
        let mut source = ScionDaemon::new();
        source.resolve(ia(2, 5), &segments(&tr), SimTime::ZERO);
        let paths: Vec<EndToEndPath> = source.cached_paths(ia(2, 5)).to_vec();

        let mut d = ScionDaemon::new();
        // Install reversed + duplicated: ordering and dedup must match.
        let mut shuffled: Vec<EndToEndPath> = paths.iter().rev().cloned().collect();
        shuffled.extend(paths.iter().cloned());
        assert_eq!(d.install_paths(ia(2, 5), shuffled), paths.len());
        assert_eq!(d.cached_paths(ia(2, 5)), source.cached_paths(ia(2, 5)));
        assert_eq!(
            d.best_path(ia(2, 5)).unwrap().links(),
            source.best_path(ia(2, 5)).unwrap().links()
        );
    }

    #[test]
    fn all_paths_failed_means_none_served() {
        let tr = trust();
        let mut segs = segments(&tr);
        segs.up.truncate(1); // single-homed now
        let mut d = ScionDaemon::new();
        d.resolve(ia(2, 5), &segs, SimTime::ZERO);
        let only = d.best_path(ia(2, 5)).unwrap();
        let (near, _) = only.links()[0];
        d.handle_scmp(
            &ScmpMessage::ExternalInterfaceDown {
                at: near.ia,
                interface: near.ifid,
                observed_at: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
        assert!(d.best_path(ia(2, 5)).is_none());
        assert_eq!(d.cached_paths(ia(2, 5)).len(), 1, "cache keeps the path");
    }
}
