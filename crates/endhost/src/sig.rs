//! SCION-IP Gateways (§3.4, Cases b and c).
//!
//! "The SIG is responsible for encapsulating legacy IP packets in SCION
//! packets … When the SIG receives an outgoing packet, it first determines
//! the SCION AS to which the destination IP address belongs ([`AsMap`]),
//! … obtains paths to the remote AS from the control service,
//! encapsulates the packet with a SCION header, and routes it via a BR."
//!
//! [`Sig`] is the customer-premise form (one gateway per AS);
//! [`CarrierGradeSig`] (Case c) aggregates many SCION-unaware customer
//! networks behind a provider-operated gateway.

use std::collections::HashMap;

use scion_dataplane::packet::Packet;
use scion_types::{IsdAsn, SimTime};

use crate::asmap::{AsMap, Ipv4Prefix};
use crate::daemon::ScionDaemon;

/// Why encapsulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigError {
    /// No ASMap entry covers the destination IP.
    UnmappedDestination(u32),
    /// The daemon has no usable path to the destination AS.
    NoPath(IsdAsn),
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::UnmappedDestination(a) => {
                let o = a.to_be_bytes();
                write!(f, "no ASMap entry for {}.{}.{}.{}", o[0], o[1], o[2], o[3])
            }
            SigError::NoPath(ia) => write!(f, "no usable path to {ia}"),
        }
    }
}

impl std::error::Error for SigError {}

/// A customer-premise SCION-IP gateway: ASMap + daemon + encapsulation.
#[derive(Debug, Default)]
pub struct Sig {
    pub asmap: AsMap,
    pub daemon: ScionDaemon,
    /// Packets encapsulated, per destination AS.
    stats: HashMap<IsdAsn, u64>,
}

impl Sig {
    pub fn new(asmap: AsMap, daemon: ScionDaemon) -> Sig {
        Sig {
            asmap,
            daemon,
            stats: HashMap::new(),
        }
    }

    /// Encapsulates an IP packet of `payload_len` bytes destined to
    /// `dst_ip` into a SCION packet along the daemon's best path.
    ///
    /// `expiry` stamps the hop-field authorization horizon.
    pub fn encapsulate(
        &mut self,
        dst_ip: u32,
        payload_len: u32,
        expiry: SimTime,
    ) -> Result<Packet, SigError> {
        let dst_as = self
            .asmap
            .lookup(dst_ip)
            .ok_or(SigError::UnmappedDestination(dst_ip))?;
        let path = self
            .daemon
            .best_path(dst_as)
            .ok_or(SigError::NoPath(dst_as))?;
        *self.stats.entry(dst_as).or_insert(0) += 1;
        // The encapsulated payload carries the original IP packet
        // (20-byte IPv4 header + payload).
        Ok(Packet::along(&path, expiry, payload_len + 20))
    }

    /// Packets encapsulated toward `dst_as`.
    pub fn encapsulated_to(&self, dst_as: IsdAsn) -> u64 {
        self.stats.get(&dst_as).copied().unwrap_or(0)
    }
}

/// A carrier-grade SIG (Case c): the provider aggregates many customer
/// prefixes behind one gateway; "legacy hosts residing in the end-domain
/// networks remain SCION-unaware".
#[derive(Debug, Default)]
pub struct CarrierGradeSig {
    sig: Sig,
    /// Customer prefixes served by this gateway.
    customers: Vec<Ipv4Prefix>,
}

impl CarrierGradeSig {
    pub fn new(sig: Sig) -> CarrierGradeSig {
        CarrierGradeSig {
            sig,
            customers: Vec::new(),
        }
    }

    /// Registers a customer network behind the gateway.
    pub fn add_customer(&mut self, prefix: Ipv4Prefix) {
        self.customers.push(prefix);
    }

    /// Number of aggregated customer networks.
    pub fn customer_count(&self) -> usize {
        self.customers.len()
    }

    /// Encapsulates an upstream packet from a customer host; rejects
    /// traffic from sources that are not customers (anti-spoofing at the
    /// provider edge).
    pub fn encapsulate_from(
        &mut self,
        src_ip: u32,
        dst_ip: u32,
        payload_len: u32,
        expiry: SimTime,
    ) -> Result<Packet, SigError> {
        if !self.customers.iter().any(|p| p.contains(src_ip)) {
            return Err(SigError::UnmappedDestination(src_ip));
        }
        self.sig.encapsulate(dst_ip, payload_len, expiry)
    }

    /// Access to the inner gateway (daemon, ASMap, stats).
    pub fn sig_mut(&mut self) -> &mut Sig {
        &mut self.sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::SegmentSet;
    use scion_crypto::trc::TrustStore;
    use scion_proto::pcb::Pcb;
    use scion_proto::segment::{PathSegment, SegmentType};
    use scion_types::{Asn, Duration, IfId, Isd};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn addr(s: &str) -> u32 {
        let p = Ipv4Prefix::parse(&format!("{s}/32")).unwrap();
        p.network
    }

    fn ready_sig() -> Sig {
        let trust = TrustStore::bootstrap(
            vec![(ia(1, 1), true), (ia(1, 5), false), (ia(1, 6), false)].into_iter(),
            SimTime::ZERO + Duration::from_days(30),
        );
        let seg = |ty, hops: &[(IsdAsn, u16, u16)]| {
            let (first, rest) = hops.split_first().unwrap();
            let mut pcb = Pcb::originate(
                first.0,
                IfId(first.2),
                SimTime::ZERO,
                Duration::from_hours(6),
                0,
                &trust,
            );
            for &(h, ing, eg) in rest {
                pcb = pcb.extend(h, IfId(ing), IfId(eg), vec![], &trust);
            }
            PathSegment::from_terminated_pcb(ty, pcb)
        };
        let segments = SegmentSet {
            up: vec![seg(SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)])],
            core: vec![],
            down: vec![seg(
                SegmentType::Down,
                &[(ia(1, 1), 0, 2), (ia(1, 6), 1, 0)],
            )],
        };
        let mut daemon = ScionDaemon::new();
        assert!(daemon.resolve(ia(1, 6), &segments, SimTime::ZERO) > 0);

        let mut asmap = AsMap::new();
        asmap.insert(Ipv4Prefix::parse("192.0.2.0/24").unwrap(), ia(1, 6));
        Sig::new(asmap, daemon)
    }

    #[test]
    fn encapsulation_builds_scion_packet() {
        let mut sig = ready_sig();
        let pkt = sig
            .encapsulate(
                addr("192.0.2.7"),
                100,
                SimTime::ZERO + Duration::from_hours(1),
            )
            .unwrap();
        assert_eq!(pkt.source, ia(1, 5));
        assert_eq!(pkt.destination, ia(1, 6));
        assert_eq!(pkt.payload_len, 120, "inner IPv4 header accounted");
        assert_eq!(sig.encapsulated_to(ia(1, 6)), 1);
    }

    #[test]
    fn unmapped_destination_rejected() {
        let mut sig = ready_sig();
        assert!(matches!(
            sig.encapsulate(addr("198.51.100.1"), 10, SimTime::ZERO),
            Err(SigError::UnmappedDestination(_))
        ));
    }

    #[test]
    fn no_path_rejected() {
        let mut sig = ready_sig();
        sig.asmap
            .insert(Ipv4Prefix::parse("198.51.100.0/24").unwrap(), ia(1, 9));
        assert_eq!(
            sig.encapsulate(addr("198.51.100.1"), 10, SimTime::ZERO),
            Err(SigError::NoPath(ia(1, 9)))
        );
    }

    #[test]
    fn carrier_grade_sig_filters_non_customers() {
        let mut cg = CarrierGradeSig::new(ready_sig());
        cg.add_customer(Ipv4Prefix::parse("10.0.0.0/8").unwrap());
        assert_eq!(cg.customer_count(), 1);
        let exp = SimTime::ZERO + Duration::from_hours(1);
        assert!(cg
            .encapsulate_from(addr("10.1.2.3"), addr("192.0.2.7"), 64, exp)
            .is_ok());
        assert!(cg
            .encapsulate_from(addr("172.16.0.1"), addr("192.0.2.7"), 64, exp)
            .is_err());
    }
}
