//! The ASMap: IPv4-prefix → `⟨ISD, AS⟩` mapping used by SCION-IP
//! gateways (§3.4: "For the mapping between IP address space and ASes,
//! the SIG keeps the ASMap table").

use serde::{Deserialize, Serialize};

use scion_types::IsdAsn;

/// An IPv4 prefix in CIDR form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Network address (host bits must be zero).
    pub network: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, validating length and host bits.
    pub fn new(network: u32, len: u8) -> Result<Ipv4Prefix, String> {
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        let mask = Self::mask_of(len);
        if network & !mask != 0 {
            return Err(format!("network {network:#010x}/{len} has host bits set"));
        }
        Ok(Ipv4Prefix { network, len })
    }

    /// Parses dotted-quad CIDR, e.g. `"10.1.0.0/16"`.
    pub fn parse(s: &str) -> Result<Ipv4Prefix, String> {
        let (addr, len) = s.split_once('/').ok_or_else(|| format!("no '/' in {s}"))?;
        let len: u8 = len.parse().map_err(|_| format!("bad length in {s}"))?;
        let mut octets = [0u8; 4];
        let parts: Vec<&str> = addr.split('.').collect();
        if parts.len() != 4 {
            return Err(format!("bad IPv4 address in {s}"));
        }
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| format!("bad octet in {s}"))?;
        }
        Ipv4Prefix::new(u32::from_be_bytes(octets), len)
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `addr` falls inside the prefix.
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask_of(self.len) == self.network
    }
}

impl std::fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.network.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

/// The longest-prefix-match table.
#[derive(Clone, Debug, Default)]
pub struct AsMap {
    /// Entries sorted by descending prefix length so the first match is
    /// the longest.
    entries: Vec<(Ipv4Prefix, IsdAsn)>,
}

impl AsMap {
    pub fn new() -> AsMap {
        AsMap::default()
    }

    /// Registers a mapping; replaces an existing identical prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, ia: IsdAsn) {
        self.entries.retain(|&(p, _)| p != prefix);
        let pos = self.entries.partition_point(|&(p, _)| p.len >= prefix.len);
        self.entries.insert(pos, (prefix, ia));
    }

    /// Longest-prefix match for `addr`.
    pub fn lookup(&self, addr: u32) -> Option<IsdAsn> {
        self.entries
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|&(_, ia)| ia)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no mappings are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scion_types::{Asn, Isd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn addr(s: &str) -> u32 {
        let p = Ipv4Prefix::parse(&format!("{s}/32")).unwrap();
        p.network
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let p = Ipv4Prefix::parse("10.1.0.0/16").unwrap();
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert!(Ipv4Prefix::parse("10.1.0.0/33").is_err());
        assert!(Ipv4Prefix::parse("10.1.0.1/16").is_err(), "host bits");
        assert!(Ipv4Prefix::parse("10.1.0.0").is_err());
        assert!(Ipv4Prefix::parse("10.1.0/16").is_err());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut m = AsMap::new();
        m.insert(Ipv4Prefix::parse("10.0.0.0/8").unwrap(), ia(1));
        m.insert(Ipv4Prefix::parse("10.1.0.0/16").unwrap(), ia(2));
        m.insert(Ipv4Prefix::parse("10.1.2.0/24").unwrap(), ia(3));
        assert_eq!(m.lookup(addr("10.1.2.3")), Some(ia(3)));
        assert_eq!(m.lookup(addr("10.1.9.9")), Some(ia(2)));
        assert_eq!(m.lookup(addr("10.9.9.9")), Some(ia(1)));
        assert_eq!(m.lookup(addr("11.0.0.1")), None);
    }

    #[test]
    fn insert_replaces_same_prefix() {
        let mut m = AsMap::new();
        let p = Ipv4Prefix::parse("192.168.0.0/16").unwrap();
        m.insert(p, ia(1));
        m.insert(p, ia(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(addr("192.168.1.1")), Some(ia(2)));
    }

    #[test]
    fn default_route_catches_everything() {
        let mut m = AsMap::new();
        m.insert(Ipv4Prefix::new(0, 0).unwrap(), ia(9));
        assert_eq!(m.lookup(addr("203.0.113.7")), Some(ia(9)));
    }

    proptest! {
        #[test]
        fn prop_contains_consistent_with_mask(network in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            let p = Ipv4Prefix::new(network & mask, len).unwrap();
            prop_assert_eq!(p.contains(probe), probe & mask == network & mask);
        }
    }
}
