//! The end-domain deployment stack (paper §3.4).
//!
//! "A customer can use SCION in two different ways: (1) native SCION
//! applications, and (2) transparent IP-to-SCION conversion."
//!
//! * [`daemon`] — the SCION daemon: "communicates with the AS's control
//!   service to build end-to-end forwarding paths for applications on
//!   their behalf". Combines up/core/down segments (including shortcut
//!   and peering crossovers), caches resolved paths, and reacts to SCMP
//!   link-failure messages by switching to a disjoint cached path — the
//!   fast-failover property the paper's customers bought.
//! * [`asmap`] — the SIG's table "for the mapping between IP address
//!   space and ASes" (§3.4, the ASMap): longest-prefix matching from IPv4
//!   prefixes to `⟨ISD, AS⟩`.
//! * [`sig`] — the SCION-IP Gateway: "encapsulating legacy IP packets in
//!   SCION packets", in both CPE form (Case b) and carrier-grade form
//!   (Case c, one gateway aggregating many customer prefixes).

pub mod asmap;
pub mod daemon;
pub mod sig;

pub use asmap::{AsMap, Ipv4Prefix};
pub use daemon::{ScionDaemon, SegmentSet};
pub use sig::{CarrierGradeSig, Sig, SigError};
