//! PeeringDB-flavoured IXP-metadata overlay.
//!
//! An overlay document lists Internet exchange points and their member
//! ASes in a simple line format:
//!
//! ```text
//! # ixp|<ixp id>|<name>
//! ixp|31|DE-CIX Frankfurt
//! member|31|64500
//! member|31|64501
//! ```
//!
//! [`IxpOverlay::apply`] enriches an already-normalized topology with
//! parallel-link multiplicity: for every IXP, each *already-adjacent*
//! pair of its members gains one extra parallel link per shared exchange
//! — modelling the common reality that two networks interconnect both
//! privately and across one or more public fabrics. The overlay never
//! invents adjacency (a shared switch does not imply a BGP session), so
//! the graph's reachability and relationship structure are unchanged;
//! only link multiplicity grows. Member ASNs absent from the topology
//! are counted and ignored.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::error::IngestError;
use crate::normalize::CanonicalTopology;

/// One parsed exchange point.
#[derive(Clone, Debug)]
pub struct Ixp {
    pub id: u64,
    pub name: String,
    pub members: BTreeSet<u64>,
}

/// A parsed IXP-metadata document.
#[derive(Clone, Debug, Default)]
pub struct IxpOverlay {
    /// Exchanges by id, insertion-ordered by id.
    pub ixps: BTreeMap<u64, Ixp>,
}

/// What applying an overlay did (for reports and telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct IxpApplyReport {
    /// Exchanges in the overlay document.
    pub ixps: usize,
    /// Member entries naming ASes present in the topology.
    pub members_matched: usize,
    /// Member entries naming ASes absent from the topology.
    pub members_unknown: usize,
    /// Parallel links added (one per adjacent member pair per shared IXP).
    pub links_added: usize,
    /// Member pairs sharing an IXP but not adjacent (no link invented).
    pub pairs_not_adjacent: usize,
}

impl IxpOverlay {
    /// Reads and parses an overlay document from disk.
    pub fn from_path(path: impl AsRef<Path>) -> Result<IxpOverlay, IngestError> {
        let path: PathBuf = path.as_ref().into();
        let text = std::fs::read_to_string(&path).map_err(|e| IngestError::io(&path, e))?;
        parse_ixp(&text)
    }

    /// Enriches `topo` in place; see the module docs for semantics.
    pub fn apply(&self, topo: &mut CanonicalTopology) -> IxpApplyReport {
        let mut report = IxpApplyReport {
            ixps: self.ixps.len(),
            ..IxpApplyReport::default()
        };
        let present: BTreeSet<u64> = topo.ases.iter().copied().collect();
        // How many extra links each unordered adjacent pair gains.
        let mut boost: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        let adjacent: BTreeSet<(u64, u64)> = topo
            .edges
            .iter()
            .map(|e| (e.a.min(e.b), e.a.max(e.b)))
            .collect();
        for ixp in self.ixps.values() {
            let mut matched: Vec<u64> = Vec::new();
            for &m in &ixp.members {
                if present.contains(&m) {
                    matched.push(m);
                    report.members_matched += 1;
                } else {
                    report.members_unknown += 1;
                }
            }
            for (i, &a) in matched.iter().enumerate() {
                for &b in &matched[i + 1..] {
                    let key = (a.min(b), a.max(b));
                    if adjacent.contains(&key) {
                        *boost.entry(key).or_insert(0) += 1;
                        report.links_added += 1;
                    } else {
                        report.pairs_not_adjacent += 1;
                    }
                }
            }
        }
        for e in &mut topo.edges {
            if let Some(&extra) = boost.get(&(e.a.min(e.b), e.a.max(e.b))) {
                e.mult = e.mult.saturating_add(extra);
            }
        }
        report
    }
}

/// Parses the `ixp|…` / `member|…` line format.
pub fn parse_ixp(text: &str) -> Result<IxpOverlay, IngestError> {
    let mut overlay = IxpOverlay::default();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        let parse_u64 = |s: &str| {
            s.parse::<u64>().map_err(|_| IngestError::Parse {
                kind: "ixp",
                line: lineno,
                message: format!("bad number {s:?}"),
            })
        };
        match fields.as_slice() {
            ["ixp", id, name] => {
                let id = parse_u64(id)?;
                overlay.ixps.entry(id).or_insert_with(|| Ixp {
                    id,
                    name: name.to_string(),
                    members: BTreeSet::new(),
                });
            }
            ["member", id, asn] => {
                let id = parse_u64(id)?;
                let asn = parse_u64(asn)?;
                let ixp = overlay.ixps.get_mut(&id).ok_or(IngestError::Parse {
                    kind: "ixp",
                    line: lineno,
                    message: format!("member references undeclared ixp {id}"),
                })?;
                ixp.members.insert(asn);
            }
            _ => {
                return Err(IngestError::Parse {
                    kind: "ixp",
                    line: lineno,
                    message: format!("expected ixp|id|name or member|id|asn, got {line:?}"),
                });
            }
        }
    }
    if overlay.ixps.is_empty() {
        return Err(IngestError::Empty { kind: "ixp" });
    }
    Ok(overlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::raw::{RawRel, RawTopology};

    fn topo() -> CanonicalTopology {
        let mut r = RawTopology::default();
        r.push(1, 2, RawRel::Provider, 1);
        r.push(2, 3, RawRel::Peer, 1);
        normalize(&r).unwrap()
    }

    #[test]
    fn boosts_adjacent_members_only() {
        let overlay = parse_ixp("ixp|7|Test-IX\nmember|7|1\nmember|7|2\nmember|7|3\n").unwrap();
        let mut t = topo();
        let before = t.fingerprint();
        let rep = overlay.apply(&mut t);
        // Pairs (1,2) and (2,3) are adjacent; (1,3) is not.
        assert_eq!(rep.links_added, 2);
        assert_eq!(rep.pairs_not_adjacent, 1);
        assert_eq!(rep.members_matched, 3);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.num_ases(), 3, "no adjacency invented");
        assert_ne!(t.fingerprint(), before, "overlay changes the fingerprint");
        t.to_topology().check_invariants().unwrap();
    }

    #[test]
    fn unknown_members_are_counted_not_fatal() {
        let overlay = parse_ixp("ixp|1|X\nmember|1|999\nmember|1|1\n").unwrap();
        let mut t = topo();
        let rep = overlay.apply(&mut t);
        assert_eq!(rep.members_unknown, 1);
        assert_eq!(rep.links_added, 0);
    }

    #[test]
    fn shared_ixps_stack() {
        let overlay =
            parse_ixp("ixp|1|A\nmember|1|1\nmember|1|2\nixp|2|B\nmember|2|1\nmember|2|2\n")
                .unwrap();
        let mut t = topo();
        let rep = overlay.apply(&mut t);
        assert_eq!(rep.links_added, 2);
        let e = t.edges.iter().find(|e| (e.a, e.b) == (1, 2)).unwrap();
        assert_eq!(e.mult, 3);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_ixp("member|1|2\n"),
            Err(IngestError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_ixp("ixp|x|name\n"),
            Err(IngestError::Parse { .. })
        ));
        assert!(matches!(
            parse_ixp("# only comments\n"),
            Err(IngestError::Empty { .. })
        ));
    }
}
