//! The shared normalization/validation pipeline.
//!
//! Every backend's [`crate::raw::RawTopology`] goes through the same five
//! steps, so equivalent inputs in different formats converge on the same
//! canonical form:
//!
//! 1. **Self-loop removal** — an AS cannot link to itself; dropped with a
//!    counter.
//! 2. **Canonical orientation** — provider→customer edges keep the
//!    provider first; peering edges are oriented `(min ASN, max ASN)`.
//! 3. **Duplicate merging** — repeated `(pair, relationship)` entries sum
//!    their multiplicities; a pair claimed with *conflicting*
//!    relationships deterministically resolves to the variant with the
//!    largest accumulated multiplicity (ties break on the canonical
//!    variant ordering), with a conflict counter.
//! 4. **Largest-connected-component extraction** — RIB dumps and GraphML
//!    files routinely carry disconnected fragments; experiments need one
//!    connected Internet. The surviving component is the largest, ties
//!    broken toward the one containing the smallest ASN.
//! 5. **Canonical ordering** — edges sort by `(min ASN, max ASN,
//!    relationship, provider ASN)`; ASes sort ascending.
//!
//! The result is a [`CanonicalTopology`]: a deterministic edge list whose
//! serialized form ([`CanonicalTopology::canonical_text`]) is byte-stable
//! across backends and runs, and whose fingerprint
//! ([`CanonicalTopology::fingerprint`]) names the graph for
//! reproducibility records.

use std::collections::BTreeMap;

use serde::Serialize;

use scion_topology::{AsTopology, Relationship};
use scion_types::{Asn, Isd, IsdAsn};

use crate::error::IngestError;
use crate::raw::{RawRel, RawTopology};

/// Counters from one normalization run (for reports and telemetry; not
/// part of the canonical form, since equivalent documents in different
/// formats legitimately differ here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct NormalizeReport {
    /// Raw edges the backend parsed.
    pub input_edges: usize,
    /// Self-loop edges dropped.
    pub self_loops_dropped: usize,
    /// Extra same-relationship entries merged into an existing pair.
    pub duplicates_merged: usize,
    /// Pairs claimed with conflicting relationships (resolved, not fatal).
    pub conflicts_resolved: usize,
    /// Connected components discarded (0 when the input was connected).
    pub components_pruned: usize,
    /// ASes discarded with those components.
    pub ases_pruned: usize,
    /// Unique pairs discarded with those components.
    pub pairs_pruned: usize,
}

/// One canonical edge: `a` is the provider for provider→customer edges
/// and the smaller ASN for peering edges; `mult` counts parallel links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CanonicalEdge {
    pub a: u64,
    pub b: u64,
    pub rel: Relationship,
    pub mult: u32,
}

/// The normalized, canonically-ordered topology.
#[derive(Clone, Debug, PartialEq)]
pub struct CanonicalTopology {
    /// All ASNs, ascending.
    pub ases: Vec<u64>,
    /// Canonical edge list (see module docs for the ordering).
    pub edges: Vec<CanonicalEdge>,
    /// What normalization did to the raw input.
    pub report: NormalizeReport,
}

impl CanonicalTopology {
    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.ases.len()
    }

    /// Number of physical links (parallel links counted individually).
    pub fn num_links(&self) -> usize {
        self.edges.iter().map(|e| e.mult as usize).sum()
    }

    /// The canonical serialized form: one header line, then one
    /// `a|b|rel|mult` line per edge in canonical order. Byte-identical
    /// for equivalent inputs regardless of source format.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# scion-ingest canonical v1\n");
        for e in &self.edges {
            let rel = match e.rel {
                Relationship::AProviderOfB => -1,
                Relationship::PeerToPeer => 0,
            };
            writeln!(out, "{}|{}|{}|{}", e.a, e.b, rel, e.mult).expect("write to String");
        }
        out
    }

    /// 128-bit hex fingerprint of the canonical form.
    pub fn fingerprint(&self) -> String {
        let digest = scion_crypto::hash::hash32(self.canonical_text().as_bytes());
        digest[..16].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Materializes the canonical form as an [`AsTopology`]: ASes added
    /// in ascending-ASN order, links in canonical edge order (multiplicity
    /// expands to parallel links), everything in ISD 1 — ISD assignment
    /// and core selection stay a separate, downstream step, exactly as
    /// for the synthetic generator.
    pub fn to_topology(&self) -> AsTopology {
        let mut topo = AsTopology::new();
        let mut idx_of = BTreeMap::new();
        for &asn in &self.ases {
            idx_of.insert(asn, topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(asn))));
        }
        for e in &self.edges {
            let (ai, bi) = (idx_of[&e.a], idx_of[&e.b]);
            for _ in 0..e.mult {
                topo.add_link(ai, bi, e.rel);
            }
        }
        topo
    }
}

/// Per-pair relationship variant in canonical orientation. Ordering is
/// the deterministic conflict tie-break: provider variants (by provider
/// ASN) win over the peer variant at equal weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Variant {
    /// Provider→customer, keyed by the provider's ASN.
    Provider(u64),
    /// Settlement-free peering.
    Peer,
}

/// Runs the full pipeline (see module docs).
pub fn normalize(raw: &RawTopology) -> Result<CanonicalTopology, IngestError> {
    let mut report = NormalizeReport {
        input_edges: raw.edges.len(),
        ..NormalizeReport::default()
    };

    // Steps 1-3: orient, bucket per unordered pair, merge and resolve.
    let mut pairs: BTreeMap<(u64, u64), BTreeMap<Variant, u64>> = BTreeMap::new();
    for e in &raw.edges {
        if e.a == e.b {
            report.self_loops_dropped += 1;
            continue;
        }
        let key = (e.a.min(e.b), e.a.max(e.b));
        let variant = match e.rel {
            RawRel::Provider => Variant::Provider(e.a),
            RawRel::Peer => Variant::Peer,
        };
        let bucket = pairs.entry(key).or_default();
        let slot = bucket.entry(variant).or_insert(0);
        if *slot > 0 {
            report.duplicates_merged += 1;
        }
        *slot += e.mult.max(1) as u64;
    }
    if pairs.is_empty() {
        return Err(IngestError::Empty { kind: "normalize" });
    }

    let mut resolved: BTreeMap<(u64, u64), (Variant, u64)> = BTreeMap::new();
    for (&key, bucket) in &pairs {
        if bucket.len() > 1 {
            report.conflicts_resolved += bucket.len() - 1;
        }
        // Winner: largest accumulated multiplicity; ties break on the
        // Variant ordering so resolution is independent of input order.
        let (&variant, &mult) = bucket
            .iter()
            .max_by_key(|&(v, m)| (*m, std::cmp::Reverse(*v)))
            .expect("bucket non-empty");
        resolved.insert(key, (variant, mult));
    }

    // Step 4: largest connected component via union-find over pairs.
    let nodes: Vec<u64> = {
        let mut v: Vec<u64> = resolved.keys().flat_map(|&(a, b)| [a, b]).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let index: BTreeMap<u64, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in resolved.keys() {
        let (ra, rb) = (find(&mut parent, index[&a]), find(&mut parent, index[&b]));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut component_size: BTreeMap<usize, usize> = BTreeMap::new();
    for i in 0..nodes.len() {
        *component_size.entry(find(&mut parent, i)).or_insert(0) += 1;
    }
    // Largest component wins; BTreeMap iteration makes the tie-break the
    // component whose root (= smallest member ASN index) is smallest.
    let (&winner, _) = component_size
        .iter()
        .max_by_key(|&(root, size)| (*size, std::cmp::Reverse(*root)))
        .expect("at least one component");
    report.components_pruned = component_size.len() - 1;
    report.ases_pruned = nodes.len() - component_size[&winner];

    let kept: Vec<((u64, u64), (Variant, u64))> = resolved
        .iter()
        .filter(|((a, _), _)| find(&mut parent, index[a]) == winner)
        .map(|(&k, &v)| (k, v))
        .collect();
    report.pairs_pruned = resolved.len() - kept.len();

    // Step 5: canonical ordering and materialization.
    let mut edges: Vec<CanonicalEdge> = kept
        .iter()
        .map(|&((lo, hi), (variant, mult))| {
            let mult = u32::try_from(mult).unwrap_or(u32::MAX);
            match variant {
                Variant::Peer => CanonicalEdge {
                    a: lo,
                    b: hi,
                    rel: Relationship::PeerToPeer,
                    mult,
                },
                Variant::Provider(p) => CanonicalEdge {
                    a: p,
                    b: if p == lo { hi } else { lo },
                    rel: Relationship::AProviderOfB,
                    mult,
                },
            }
        })
        .collect();
    edges.sort_by_key(|e| (e.a.min(e.b), e.a.max(e.b), e.rel, e.a));

    let mut ases: Vec<u64> = edges.iter().flat_map(|e| [e.a, e.b]).collect();
    ases.sort_unstable();
    ases.dedup();

    Ok(CanonicalTopology {
        ases,
        edges,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(edges: &[(u64, u64, RawRel, u32)]) -> RawTopology {
        let mut r = RawTopology::default();
        for &(a, b, rel, m) in edges {
            r.push(a, b, rel, m);
        }
        r
    }

    #[test]
    fn drops_self_loops_and_counts() {
        let c = normalize(&raw(&[
            (1, 1, RawRel::Peer, 1),
            (1, 2, RawRel::Provider, 1),
        ]))
        .unwrap();
        assert_eq!(c.report.self_loops_dropped, 1);
        assert_eq!(c.edges.len(), 1);
    }

    #[test]
    fn merges_duplicates_summing_multiplicity() {
        let c = normalize(&raw(&[
            (1, 2, RawRel::Provider, 2),
            (1, 2, RawRel::Provider, 3),
        ]))
        .unwrap();
        assert_eq!(c.report.duplicates_merged, 1);
        assert_eq!(c.edges[0].mult, 5);
        assert_eq!(c.num_links(), 5);
    }

    #[test]
    fn resolves_conflicts_by_weight_then_canonically() {
        // Heavier provider claim beats the peer claim.
        let c = normalize(&raw(&[
            (1, 2, RawRel::Peer, 1),
            (2, 1, RawRel::Provider, 3),
        ]))
        .unwrap();
        assert_eq!(c.report.conflicts_resolved, 1);
        assert_eq!(c.edges[0].rel, Relationship::AProviderOfB);
        assert_eq!(c.edges[0].a, 2, "provider kept first");
        // Equal weight: the canonically-smaller variant (provider 1) wins,
        // independent of input order.
        let x = normalize(&raw(&[
            (2, 1, RawRel::Provider, 1),
            (1, 2, RawRel::Provider, 1),
        ]))
        .unwrap();
        let y = normalize(&raw(&[
            (1, 2, RawRel::Provider, 1),
            (2, 1, RawRel::Provider, 1),
        ]))
        .unwrap();
        assert_eq!(x, y);
        assert_eq!(x.edges[0].a, 1);
    }

    #[test]
    fn keeps_largest_component() {
        let c = normalize(&raw(&[
            (1, 2, RawRel::Provider, 1),
            (2, 3, RawRel::Provider, 1),
            (10, 11, RawRel::Peer, 1),
        ]))
        .unwrap();
        assert_eq!(c.ases, vec![1, 2, 3]);
        assert_eq!(c.report.components_pruned, 1);
        assert_eq!(c.report.ases_pruned, 2);
        assert_eq!(c.report.pairs_pruned, 1);
    }

    #[test]
    fn component_tie_breaks_toward_smallest_asn() {
        let c = normalize(&raw(&[(10, 11, RawRel::Peer, 1), (1, 2, RawRel::Peer, 1)])).unwrap();
        assert_eq!(c.ases, vec![1, 2]);
    }

    #[test]
    fn canonical_text_is_order_invariant() {
        let a = normalize(&raw(&[
            (1, 2, RawRel::Peer, 1),
            (1, 3, RawRel::Provider, 2),
            (3, 2, RawRel::Provider, 1),
        ]))
        .unwrap();
        let b = normalize(&raw(&[
            (3, 2, RawRel::Provider, 1),
            (2, 1, RawRel::Peer, 1),
            (1, 3, RawRel::Provider, 2),
        ]))
        .unwrap();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_sensitive_to_content() {
        let a = normalize(&raw(&[(1, 2, RawRel::Peer, 1)])).unwrap();
        let b = normalize(&raw(&[(1, 2, RawRel::Peer, 2)])).unwrap();
        let c = normalize(&raw(&[(1, 2, RawRel::Provider, 1)])).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint().len(), 32);
    }

    #[test]
    fn to_topology_expands_multiplicity_and_holds_invariants() {
        let c = normalize(&raw(&[
            (5, 9, RawRel::Provider, 3),
            (9, 7, RawRel::Peer, 1),
        ]))
        .unwrap();
        let t = c.to_topology();
        t.check_invariants().unwrap();
        assert_eq!(t.num_ases(), 3);
        assert_eq!(t.num_links(), 4);
        // Provider direction survives materialization.
        let p = t.by_address(IsdAsn::new(Isd(1), Asn::from_u64(5))).unwrap();
        assert_eq!(t.customers(p).len(), 1);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            normalize(&RawTopology::default()),
            Err(IngestError::Empty { .. })
        ));
        assert!(matches!(
            normalize(&raw(&[(1, 1, RawRel::Peer, 1)])),
            Err(IngestError::Empty { .. })
        ));
    }
}
