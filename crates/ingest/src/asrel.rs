//! CAIDA `as-rel` backend: the existing `scion-topology` parser adapted
//! onto the [`TopologySource`] trait.
//!
//! Parsing itself stays in [`scion_topology::caida`] (it is also used
//! directly by tests and the serializer); this module converts its output
//! into the shared raw edge list so the as-rel path goes through the same
//! normalization pipeline as every other backend.

use std::collections::BTreeMap;
use std::path::PathBuf;

use scion_topology::caida::{parse_as_rel, ParseError};
use scion_topology::{AsTopology, Relationship};

use crate::error::IngestError;
use crate::raw::{RawRel, RawTopology};
use crate::{Provenance, TopologySource};

/// A CAIDA `as-rel`(+multiplicity) document on disk.
#[derive(Clone, Debug)]
pub struct AsRelSource {
    path: PathBuf,
}

impl AsRelSource {
    /// A source reading from `path` at load time.
    pub fn new(path: impl Into<PathBuf>) -> AsRelSource {
        AsRelSource { path: path.into() }
    }
}

impl TopologySource for AsRelSource {
    fn provenance(&self) -> Provenance {
        Provenance {
            kind: "as-rel",
            origin: self.path.display().to_string(),
        }
    }

    fn load_raw(&self) -> Result<RawTopology, IngestError> {
        let text =
            std::fs::read_to_string(&self.path).map_err(|e| IngestError::io(&self.path, e))?;
        parse_as_rel_raw(&text)
    }
}

/// Parses an `as-rel` document into the raw edge list (pre-normalization).
pub fn parse_as_rel_raw(text: &str) -> Result<RawTopology, IngestError> {
    let topo = parse_as_rel(text).map_err(convert_error)?;
    Ok(topology_to_raw(&topo))
}

fn convert_error(e: ParseError) -> IngestError {
    let line = match &e {
        ParseError::BadFieldCount { line }
        | ParseError::BadField { line, .. }
        | ParseError::BadRelationship { line, .. }
        | ParseError::SelfLoop { line }
        | ParseError::DuplicatePair { line } => *line,
    };
    IngestError::Parse {
        kind: "as-rel",
        line,
        message: e.to_string(),
    }
}

/// Flattens an [`AsTopology`] into raw edges, grouping parallel links
/// into per-pair multiplicities. Also the adapter for feeding an
/// already-built topology (e.g. the synthetic generator's) through the
/// canonicalization pipeline.
pub fn topology_to_raw(topo: &AsTopology) -> RawTopology {
    let mut groups: BTreeMap<(u64, u64, RawRel), u32> = BTreeMap::new();
    for li in topo.link_indices() {
        let l = topo.link(li);
        let a = topo.node(l.a).ia.asn.value();
        let b = topo.node(l.b).ia.asn.value();
        let rel = match l.rel {
            Relationship::AProviderOfB => RawRel::Provider,
            Relationship::PeerToPeer => RawRel::Peer,
        };
        *groups.entry((a, b, rel)).or_insert(0) += 1;
    }
    let mut raw = RawTopology::default();
    for ((a, b, rel), mult) in groups {
        raw.push(a, b, rel, mult);
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;

    #[test]
    fn roundtrips_through_raw_and_normalize() {
        let raw = parse_as_rel_raw("# c\n1|2|-1|3\n2|3|0\n").unwrap();
        let c = normalize(&raw).unwrap();
        assert_eq!(c.num_ases(), 3);
        assert_eq!(c.num_links(), 4);
        let t = c.to_topology();
        t.check_invariants().unwrap();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_as_rel_raw("1|2|-1\n1|2\n").unwrap_err();
        assert!(matches!(
            err,
            IngestError::Parse {
                kind: "as-rel",
                line: 2,
                ..
            }
        ));
    }

    #[test]
    fn crlf_document_parses() {
        let raw = parse_as_rel_raw("# c\r\n1|2|-1\r\n\r\n2|3|0\r\n").unwrap();
        assert_eq!(raw.edges.len(), 2);
    }
}
