//! Graph statistics and the canonical JSON export.
//!
//! The export is the machine-checkable artifact of an ingestion run: a
//! JSON document containing only the canonical form (ASes, edges,
//! fingerprint). Provenance and normalization counters are deliberately
//! *excluded* — equivalent inputs in different formats legitimately
//! differ there, and the whole point of the export is that equivalent
//! inputs serialize byte-identically, so `telediff` can gate on it.

use serde::Serialize;

use scion_topology::Relationship;

use crate::normalize::{CanonicalEdge, CanonicalTopology};

/// Degree quantiles over the distinct-neighbor degree distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct DegreeQuantiles {
    pub min: usize,
    pub p50: usize,
    pub p90: usize,
    pub p99: usize,
    pub max: usize,
}

/// Summary statistics of a canonical topology.
#[derive(Clone, Debug, Serialize)]
pub struct TopologyStats {
    /// Number of ASes.
    pub ases: usize,
    /// Physical links, parallel links counted individually.
    pub links: usize,
    /// Unique AS pairs with a provider→customer relationship.
    pub p2c_pairs: usize,
    /// Unique AS pairs with a peering relationship.
    pub p2p_pairs: usize,
    /// Links beyond the first per pair (parallel-link surplus).
    pub parallel_extra_links: usize,
    /// Distinct-neighbor degree quantiles.
    pub degree: DegreeQuantiles,
}

impl TopologyStats {
    /// Computes statistics for a canonical topology.
    pub fn compute(topo: &CanonicalTopology) -> TopologyStats {
        let mut p2c_pairs = 0;
        let mut p2p_pairs = 0;
        let mut parallel_extra_links = 0;
        let mut degree_of: std::collections::BTreeMap<u64, usize> =
            topo.ases.iter().map(|&a| (a, 0)).collect();
        for e in &topo.edges {
            match e.rel {
                Relationship::AProviderOfB => p2c_pairs += 1,
                Relationship::PeerToPeer => p2p_pairs += 1,
            }
            parallel_extra_links += (e.mult as usize).saturating_sub(1);
            *degree_of.entry(e.a).or_insert(0) += 1;
            *degree_of.entry(e.b).or_insert(0) += 1;
        }
        let mut degrees: Vec<usize> = degree_of.into_values().collect();
        degrees.sort_unstable();
        let q = |p: usize| {
            if degrees.is_empty() {
                0
            } else {
                degrees[(degrees.len() - 1) * p / 100]
            }
        };
        TopologyStats {
            ases: topo.num_ases(),
            links: topo.num_links(),
            p2c_pairs,
            p2p_pairs,
            parallel_extra_links,
            degree: DegreeQuantiles {
                min: q(0),
                p50: q(50),
                p90: q(90),
                p99: q(99),
                max: q(100),
            },
        }
    }
}

/// The canonical export document (see module docs for what it omits).
#[derive(Clone, Debug, Serialize)]
pub struct CanonicalExport<'a> {
    /// Format tag, bumped if the canonical form ever changes.
    pub format: &'static str,
    /// 128-bit hex fingerprint of the canonical text.
    pub fingerprint: String,
    /// All ASNs, ascending.
    pub ases: &'a [u64],
    /// Canonical edge list.
    pub edges: &'a [CanonicalEdge],
}

/// Serializes the canonical export JSON for a topology. Byte-identical
/// for equivalent inputs regardless of the source format.
pub fn canonical_json(topo: &CanonicalTopology) -> String {
    let export = CanonicalExport {
        format: "scion-ingest-canonical-v1",
        fingerprint: topo.fingerprint(),
        ases: &topo.ases,
        edges: &topo.edges,
    };
    serde_json::to_string(&export).expect("canonical export serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::raw::{RawRel, RawTopology};

    fn topo() -> CanonicalTopology {
        let mut r = RawTopology::default();
        r.push(1, 2, RawRel::Provider, 2);
        r.push(1, 3, RawRel::Provider, 1);
        r.push(2, 3, RawRel::Peer, 1);
        normalize(&r).unwrap()
    }

    #[test]
    fn stats_count_pairs_links_and_degrees() {
        let s = TopologyStats::compute(&topo());
        assert_eq!(s.ases, 3);
        assert_eq!(s.links, 4);
        assert_eq!(s.p2c_pairs, 2);
        assert_eq!(s.p2p_pairs, 1);
        assert_eq!(s.parallel_extra_links, 1);
        assert_eq!(s.degree.min, 2);
        assert_eq!(s.degree.max, 2);
    }

    #[test]
    fn export_contains_fingerprint_and_no_report() {
        let t = topo();
        let json = canonical_json(&t);
        assert!(json.contains(&t.fingerprint()));
        assert!(json.contains("scion-ingest-canonical-v1"));
        assert!(!json.contains("self_loops_dropped"), "report excluded");
        // Parses back as JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let ases: Vec<u64> = match v.get("ases") {
            Some(serde_json::Value::Array(items)) => {
                items.iter().filter_map(|i| i.as_u64()).collect()
            }
            other => panic!("ases should be an array, got {other:?}"),
        };
        assert_eq!(ases, vec![1, 2, 3]);
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(canonical_json(&topo()), canonical_json(&topo()));
    }
}
