//! Topology-zoo-style GraphML backend.
//!
//! Understands the subset of GraphML that public topology collections
//! (topology-zoo.org, Internet Topology Zoo derivatives) actually use:
//! `<key>` declarations mapping attribute ids to names, `<node>` /
//! `<edge>` elements, and nested `<data key="…">value</data>` payloads.
//! No external XML dependency: a small hand-rolled tag scanner keeps the
//! build offline-friendly, tolerates comments, processing instructions,
//! CRLF, and self-closing tags, and rejects documents it cannot follow
//! rather than guessing.
//!
//! **ASN mapping.** A node's ASN is its `asn` data attribute when
//! present; otherwise a fully-numeric node id is used directly; otherwise
//! the node gets the next free ASN by document order (topology-zoo ids
//! are opaque strings like `n12`). Collisions are an error.
//!
//! **Relationship inference.** Edges may carry an explicit `rel` data
//! attribute (`p2c`, `c2p`, `p2p`/`peer`, or the CAIDA numbers `-1`/`0`,
//! interpreted source-relative). Edges without one get Gao–Rexford-style
//! inference from node degree: the higher-degree endpoint is the
//! provider, with the degree tie breaking to settlement-free peering.
//! A `mult` (or `parallel`) data attribute carries parallel-link counts.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use crate::error::IngestError;
use crate::raw::{RawRel, RawTopology};
use crate::{Provenance, TopologySource};

/// A GraphML document on disk.
#[derive(Clone, Debug)]
pub struct GraphmlSource {
    path: PathBuf,
}

impl GraphmlSource {
    /// A source reading from `path` at load time.
    pub fn new(path: impl Into<PathBuf>) -> GraphmlSource {
        GraphmlSource { path: path.into() }
    }
}

impl TopologySource for GraphmlSource {
    fn provenance(&self) -> Provenance {
        Provenance {
            kind: "graphml",
            origin: self.path.display().to_string(),
        }
    }

    fn load_raw(&self) -> Result<RawTopology, IngestError> {
        let text =
            std::fs::read_to_string(&self.path).map_err(|e| IngestError::io(&self.path, e))?;
        parse_graphml(&text)
    }
}

fn err(message: impl Into<String>) -> IngestError {
    IngestError::Parse {
        kind: "graphml",
        line: 0,
        message: message.into(),
    }
}

/// One scanned tag: name, attributes, and whether it opens/closes.
#[derive(Debug)]
struct Tag {
    name: String,
    attrs: HashMap<String, String>,
    closing: bool,
    self_closing: bool,
    /// Text between this tag and the next one (for `<data>` payloads).
    trailing_text: String,
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Scans the document into a flat tag stream, skipping comments,
/// processing instructions, and the doctype.
fn scan(text: &str) -> Result<Vec<Tag>, IngestError> {
    let mut tags = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let Some(open) = text[i..].find('<').map(|p| i + p) else {
            break;
        };
        let rest = &text[open..];
        if rest.starts_with("<!--") {
            let end = rest
                .find("-->")
                .ok_or_else(|| err("unterminated comment"))?;
            i = open + end + 3;
            continue;
        }
        if rest.starts_with("<?") || rest.starts_with("<!") {
            let end = rest
                .find('>')
                .ok_or_else(|| err("unterminated declaration"))?;
            i = open + end + 1;
            continue;
        }
        let end = rest.find('>').ok_or_else(|| err("unterminated tag"))?;
        let inner = &rest[1..end];
        let (closing, inner) = match inner.strip_prefix('/') {
            Some(rest) => (true, rest),
            None => (false, inner),
        };
        let (self_closing, inner) = match inner.strip_suffix('/') {
            Some(rest) => (true, rest),
            None => (false, inner),
        };
        let mut parts = inner.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or_default().to_string();
        if name.is_empty() {
            return Err(err("empty tag name"));
        }
        let attrs = parse_attrs(parts.next().unwrap_or_default())?;
        let after = open + end + 1;
        let trailing_end = text[after..]
            .find('<')
            .map(|p| after + p)
            .unwrap_or(text.len());
        tags.push(Tag {
            name,
            attrs,
            closing,
            self_closing,
            trailing_text: unescape(text[after..trailing_end].trim()),
        });
        i = after;
    }
    Ok(tags)
}

fn parse_attrs(s: &str) -> Result<HashMap<String, String>, IngestError> {
    let mut attrs = HashMap::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(format!("malformed attribute list near '{rest}'")))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|&q| q == '"' || q == '\'')
            .ok_or_else(|| err(format!("unquoted attribute value near '{after}'")))?;
        let close = after[1..]
            .find(quote)
            .ok_or_else(|| err("unterminated attribute value"))?;
        attrs.insert(key, unescape(&after[1..1 + close]));
        rest = after[close + 2..].trim_start();
    }
    Ok(attrs)
}

#[derive(Debug, Default)]
struct PendingEdge {
    source: String,
    target: String,
    rel: Option<RawRel>,
    /// True when the explicit rel points target→source (`c2p`).
    reversed: bool,
    mult: u32,
}

/// Parses a GraphML document into the raw edge list.
pub fn parse_graphml(text: &str) -> Result<RawTopology, IngestError> {
    let tags = scan(text)?;

    // Pass 0: <key id="d0" attr.name="rel"> declarations.
    let mut key_names: HashMap<String, String> = HashMap::new();
    for t in &tags {
        if t.name == "key" && !t.closing {
            if let (Some(id), Some(name)) = (t.attrs.get("id"), t.attrs.get("attr.name")) {
                key_names.insert(id.clone(), name.clone());
            }
        }
    }
    let resolve = |key: &str| -> String {
        key_names
            .get(key)
            .cloned()
            .unwrap_or_else(|| key.to_string())
    };

    // Pass 1: walk nodes and edges, collecting data payloads.
    let mut node_order: Vec<String> = Vec::new();
    let mut node_asn: HashMap<String, u64> = HashMap::new();
    let mut edges: Vec<PendingEdge> = Vec::new();
    #[derive(PartialEq)]
    enum In {
        Nothing,
        Node(String),
        Edge,
    }
    let mut state = In::Nothing;
    for t in &tags {
        match (t.name.as_str(), t.closing) {
            ("node", false) => {
                let id = t
                    .attrs
                    .get("id")
                    .ok_or_else(|| err("<node> without id"))?
                    .clone();
                node_order.push(id.clone());
                if !t.self_closing {
                    state = In::Node(id);
                }
            }
            ("node", true) => state = In::Nothing,
            ("edge", false) => {
                let get = |k: &str| -> Result<String, IngestError> {
                    t.attrs
                        .get(k)
                        .cloned()
                        .ok_or_else(|| err(format!("<edge> without {k}")))
                };
                edges.push(PendingEdge {
                    source: get("source")?,
                    target: get("target")?,
                    mult: 1,
                    ..PendingEdge::default()
                });
                if !t.self_closing {
                    state = In::Edge;
                }
            }
            ("edge", true) => state = In::Nothing,
            ("data", false) => {
                let key = t.attrs.get("key").map(|k| resolve(k)).unwrap_or_default();
                let value = t.trailing_text.as_str();
                match &state {
                    In::Node(id) if key == "asn" => {
                        let asn: u64 = value
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("node '{id}': bad asn value '{value}'")))?;
                        node_asn.insert(id.clone(), asn);
                    }
                    In::Edge => {
                        let e = edges.last_mut().expect("inside an edge");
                        match key.as_str() {
                            "rel" | "relationship" => {
                                let (rel, reversed) = match value.trim() {
                                    "p2c" | "-1" => (RawRel::Provider, false),
                                    "c2p" => (RawRel::Provider, true),
                                    "p2p" | "peer" | "0" => (RawRel::Peer, false),
                                    other => {
                                        return Err(err(format!(
                                            "edge {}->{}: unknown rel '{other}'",
                                            e.source, e.target
                                        )))
                                    }
                                };
                                e.rel = Some(rel);
                                e.reversed = reversed;
                            }
                            "mult" | "parallel" | "multiplicity" => {
                                e.mult = value
                                    .trim()
                                    .parse()
                                    .map_err(|_| err(format!("bad multiplicity '{value}'")))?;
                            }
                            _ => {} // labels, coordinates, … — ignored
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    if edges.is_empty() {
        return Err(IngestError::Empty { kind: "graphml" });
    }

    // Pass 2: ASN assignment (explicit attr > numeric id > document order).
    fn assign(
        used: &mut BTreeMap<u64, String>,
        asn_of: &mut HashMap<String, u64>,
        id: &str,
        asn: u64,
    ) -> Result<(), IngestError> {
        if let Some(prev) = used.get(&asn) {
            if prev != id {
                return Err(err(format!(
                    "nodes '{prev}' and '{id}' both map to ASN {asn}"
                )));
            }
        }
        used.insert(asn, id.to_string());
        asn_of.insert(id.to_string(), asn);
        Ok(())
    }
    let mut used: BTreeMap<u64, String> = BTreeMap::new();
    let mut asn_of: HashMap<String, u64> = HashMap::new();
    for id in &node_order {
        if let Some(&asn) = node_asn.get(id) {
            assign(&mut used, &mut asn_of, id, asn)?;
        } else if let Ok(asn) = id.parse::<u64>() {
            assign(&mut used, &mut asn_of, id, asn)?;
        }
    }
    let mut next_free = 1u64;
    for id in &node_order {
        if asn_of.contains_key(id) {
            continue;
        }
        while used.contains_key(&next_free) {
            next_free += 1;
        }
        assign(&mut used, &mut asn_of, id, next_free)?;
    }

    // Pass 3: degree census for Gao–Rexford inference on unlabeled edges
    // (distinct-neighbor degree; parallel links don't inflate rank).
    let mut neighbors: HashMap<&str, std::collections::BTreeSet<&str>> = HashMap::new();
    for e in &edges {
        neighbors.entry(&e.source).or_default().insert(&e.target);
        neighbors.entry(&e.target).or_default().insert(&e.source);
    }
    let degree = |id: &str| neighbors.get(id).map_or(0, |n| n.len());

    let mut raw = RawTopology::default();
    for e in &edges {
        let sa = *asn_of
            .get(&e.source)
            .ok_or_else(|| err(format!("edge references unknown node '{}'", e.source)))?;
        let ta = *asn_of
            .get(&e.target)
            .ok_or_else(|| err(format!("edge references unknown node '{}'", e.target)))?;
        match e.rel {
            Some(RawRel::Provider) if e.reversed => raw.push(ta, sa, RawRel::Provider, e.mult),
            Some(rel) => raw.push(sa, ta, rel, e.mult),
            None => {
                // Gao–Rexford degree inference, ties break to peering.
                let (ds, dt) = (degree(&e.source), degree(&e.target));
                match ds.cmp(&dt) {
                    std::cmp::Ordering::Greater => raw.push(sa, ta, RawRel::Provider, e.mult),
                    std::cmp::Ordering::Less => raw.push(ta, sa, RawRel::Provider, e.mult),
                    std::cmp::Ordering::Equal => raw.push(sa, ta, RawRel::Peer, e.mult),
                }
            }
        }
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELED: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d0" for="node" attr.name="asn" attr.type="long"/>
  <key id="d1" for="edge" attr.name="rel" attr.type="string"/>
  <key id="d2" for="edge" attr.name="mult" attr.type="int"/>
  <graph edgedefault="undirected">
    <node id="a"><data key="d0">10</data></node>
    <node id="b"><data key="d0">20</data></node>
    <node id="c"><data key="d0">30</data></node>
    <edge source="a" target="b"><data key="d1">p2c</data><data key="d2">2</data></edge>
    <edge source="c" target="b"><data key="d1">c2p</data></edge>
    <edge source="a" target="c"><data key="d1">p2p</data></edge>
  </graph>
</graphml>
"#;

    #[test]
    fn parses_labeled_document() {
        let raw = parse_graphml(LABELED).unwrap();
        assert_eq!(raw.edges.len(), 3);
        // a(10) provider of b(20), multiplicity 2.
        assert_eq!(raw.edges[0].a, 10);
        assert_eq!(raw.edges[0].b, 20);
        assert_eq!(raw.edges[0].rel, RawRel::Provider);
        assert_eq!(raw.edges[0].mult, 2);
        // c2p: b(20) is the provider of c(30).
        assert_eq!(raw.edges[1].a, 20);
        assert_eq!(raw.edges[1].b, 30);
        assert_eq!(raw.edges[1].rel, RawRel::Provider);
        // peer edge.
        assert_eq!(raw.edges[2].rel, RawRel::Peer);
    }

    #[test]
    fn infers_relationships_from_degree_when_unlabeled() {
        // Star: hub h has degree 3, leaves 1 — hub becomes the provider.
        // Leaves x and y also link to each other: equal degree → peer.
        let doc = r#"<graphml><graph>
          <node id="100"/><node id="101"/><node id="102"/><node id="103"/>
          <edge source="100" target="101"/>
          <edge source="100" target="102"/>
          <edge source="103" target="100"/>
          <edge source="101" target="102"/>
        </graph></graphml>"#;
        let raw = parse_graphml(doc).unwrap();
        assert_eq!(
            raw.edges[0],
            crate::raw::RawEdge {
                a: 100,
                b: 101,
                rel: RawRel::Provider,
                mult: 1
            }
        );
        // Edge written leaf→hub still orients the hub as provider.
        assert_eq!(
            raw.edges[2],
            crate::raw::RawEdge {
                a: 100,
                b: 103,
                rel: RawRel::Provider,
                mult: 1
            }
        );
        // 101 and 102 both have degree 2 → peer.
        assert_eq!(raw.edges[3].rel, RawRel::Peer);
    }

    #[test]
    fn opaque_node_ids_get_document_order_asns() {
        let doc = r#"<graphml><graph>
          <node id="n0"/><node id="n1"/>
          <edge source="n0" target="n1"/>
        </graph></graphml>"#;
        let raw = parse_graphml(doc).unwrap();
        assert_eq!((raw.edges[0].a, raw.edges[0].b), (1, 2));
    }

    #[test]
    fn rejects_asn_collisions_and_unknown_nodes() {
        let dup = r#"<graphml><graph>
          <node id="a"><data key="asn">7</data></node>
          <node id="b"><data key="asn">7</data></node>
          <edge source="a" target="b"/>
        </graph></graphml>"#;
        assert!(parse_graphml(dup).is_err());
        let dangling = r#"<graphml><graph>
          <node id="a"/><edge source="a" target="ghost"/>
        </graph></graphml>"#;
        assert!(parse_graphml(dangling).is_err());
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert!(matches!(
            parse_graphml("<graphml><graph><node id=\"a\"/></graph></graphml>"),
            Err(IngestError::Empty { .. })
        ));
    }
}
