//! The pre-normalization edge list every backend parses into.
//!
//! Backends only have to get the *content* right: duplicate edges,
//! self-loops, disconnected fragments, and arbitrary edge order are all
//! legal here and are cleaned up by [`crate::normalize()`]. This keeps each
//! parser small and puts every correctness rule in one audited place.

/// Business relationship of a raw edge, before canonicalization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RawRel {
    /// `a` sells transit to `b` (CAIDA `-1`).
    Provider,
    /// Settlement-free peering (CAIDA `0`).
    Peer,
}

/// One parsed edge: an AS pair, its relationship, and how many parallel
/// links the document claims for the pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawEdge {
    pub a: u64,
    pub b: u64,
    pub rel: RawRel,
    pub mult: u32,
}

/// The raw parse result of one backend: an edge list in document order.
#[derive(Clone, Debug, Default)]
pub struct RawTopology {
    pub edges: Vec<RawEdge>,
}

impl RawTopology {
    /// Appends an edge (multiplicity clamped to at least 1).
    pub fn push(&mut self, a: u64, b: u64, rel: RawRel, mult: u32) {
        self.edges.push(RawEdge {
            a,
            b,
            rel,
            mult: mult.max(1),
        });
    }
}
