//! # scion-ingest — multi-backend topology ingestion
//!
//! Real deployments don't get their AS graph from one blessed file
//! format: CAIDA publishes `as-rel` relationship dumps, Topology Zoo
//! ships GraphML, and route collectors emit RIB/AS-path tables. This
//! crate puts all of them behind one trait:
//!
//! ```text
//!   AsRelSource ─┐
//!   GraphmlSource ├─ load_raw() → RawTopology → normalize() → CanonicalTopology
//!   RibSource ───┘                                   │
//!                                  IxpOverlay::apply ┘ (optional enrichment)
//! ```
//!
//! Every backend parses into the same [`raw::RawTopology`] edge list and
//! goes through the same [`normalize()`] pipeline, so *equivalent inputs in
//! different formats converge on byte-identical canonical exports* with
//! equal fingerprints — the property `tests/ingest_determinism.rs` locks
//! in. The canonical topology then materializes as a
//! [`scion_topology::AsTopology`] and flows into the existing ISD
//! assignment / core selection, exactly like the synthetic generator's
//! output.
//!
//! Sources are named on the command line as `kind:path` specs
//! (`as-rel:dump.txt`, `graphml:zoo.graphml`, `rib:table.txt`); see
//! [`SourceSpec`].

pub mod asrel;
pub mod error;
pub mod export;
pub mod graphml;
pub mod ixp;
pub mod normalize;
pub mod raw;
pub mod rib;

use std::path::{Path, PathBuf};

pub use asrel::AsRelSource;
pub use error::IngestError;
pub use export::{canonical_json, DegreeQuantiles, TopologyStats};
pub use graphml::GraphmlSource;
pub use ixp::{IxpApplyReport, IxpOverlay};
pub use normalize::{normalize, CanonicalEdge, CanonicalTopology, NormalizeReport};
pub use raw::{RawEdge, RawRel, RawTopology};
pub use rib::RibSource;

/// Where a topology came from, for reproducibility records.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct Provenance {
    /// Backend kind: `"as-rel"`, `"graphml"`, or `"rib"`.
    pub kind: &'static str,
    /// The concrete origin (file path).
    pub origin: String,
}

/// A topology backend: parses some external format into the shared raw
/// edge list. The provided [`TopologySource::load`] method runs the
/// shared normalization pipeline on top.
pub trait TopologySource {
    /// Identifies this source for reproducibility records.
    fn provenance(&self) -> Provenance;

    /// Parses the source into the pre-normalization edge list.
    fn load_raw(&self) -> Result<RawTopology, IngestError>;

    /// Parses and normalizes: the canonical topology every consumer uses.
    fn load(&self) -> Result<CanonicalTopology, IngestError> {
        normalize(&self.load_raw()?)
    }
}

/// The backend kinds a [`SourceSpec`] can name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    AsRel,
    Graphml,
    Rib,
}

impl SourceKind {
    /// The canonical spec prefix for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::AsRel => "as-rel",
            SourceKind::Graphml => "graphml",
            SourceKind::Rib => "rib",
        }
    }
}

/// A parsed `kind:path` source specification, e.g. `graphml:zoo.graphml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceSpec {
    pub kind: SourceKind,
    pub path: PathBuf,
}

impl SourceSpec {
    /// Parses a `kind:path` spec. Accepted kind aliases: `as-rel`/`asrel`/
    /// `caida`, `graphml`/`zoo`, `rib`/`bgpstream`/`paths`.
    pub fn parse(spec: &str) -> Result<SourceSpec, IngestError> {
        let bad = |message: &str| IngestError::BadSpec {
            spec: spec.to_string(),
            message: message.to_string(),
        };
        let (kind_str, path) = spec
            .split_once(':')
            .ok_or_else(|| bad("expected kind:path, e.g. as-rel:topo.txt"))?;
        let kind = match kind_str.trim().to_ascii_lowercase().as_str() {
            "as-rel" | "asrel" | "caida" => SourceKind::AsRel,
            "graphml" | "zoo" => SourceKind::Graphml,
            "rib" | "bgpstream" | "paths" => SourceKind::Rib,
            _ => return Err(bad("unknown kind (want as-rel, graphml, or rib)")),
        };
        let path = path.trim();
        if path.is_empty() {
            return Err(bad("empty path"));
        }
        Ok(SourceSpec {
            kind,
            path: PathBuf::from(path),
        })
    }

    /// Instantiates the backend this spec names.
    pub fn open(&self) -> Box<dyn TopologySource> {
        match self.kind {
            SourceKind::AsRel => Box::new(AsRelSource::new(&self.path)),
            SourceKind::Graphml => Box::new(GraphmlSource::new(&self.path)),
            SourceKind::Rib => Box::new(RibSource::new(&self.path)),
        }
    }
}

/// The full result of one ingestion run.
#[derive(Clone, Debug)]
pub struct Ingested {
    /// Where the topology came from.
    pub provenance: Provenance,
    /// The normalized topology (IXP-enriched if an overlay was given).
    pub topology: CanonicalTopology,
    /// Overlay application report, when an overlay was applied.
    pub ixp: Option<IxpApplyReport>,
}

/// One-call ingestion: parse a `kind:path` spec, load and normalize the
/// source, and optionally enrich it with an IXP overlay document.
pub fn ingest_spec(spec: &str, ixp: Option<&Path>) -> Result<Ingested, IngestError> {
    let spec = SourceSpec::parse(spec)?;
    let source = spec.open();
    let provenance = source.provenance();
    let mut topology = source.load()?;
    let ixp = match ixp {
        Some(path) => Some(IxpOverlay::from_path(path)?.apply(&mut topology)),
        None => None,
    };
    Ok(Ingested {
        provenance,
        topology,
        ixp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_aliases() {
        for (s, kind) in [
            ("as-rel:x", SourceKind::AsRel),
            ("caida:x", SourceKind::AsRel),
            ("graphml:x", SourceKind::Graphml),
            ("zoo:x", SourceKind::Graphml),
            ("rib:x", SourceKind::Rib),
            ("bgpstream:x", SourceKind::Rib),
            ("RIB:x", SourceKind::Rib),
        ] {
            let spec = SourceSpec::parse(s).unwrap();
            assert_eq!(spec.kind, kind, "{s}");
            assert_eq!(spec.path, PathBuf::from("x"));
        }
        // Windows-style second colon stays in the path.
        let spec = SourceSpec::parse("rib:C:/dumps/table.txt").unwrap();
        assert_eq!(spec.path, PathBuf::from("C:/dumps/table.txt"));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(matches!(
            SourceSpec::parse("no-colon"),
            Err(IngestError::BadSpec { .. })
        ));
        assert!(matches!(
            SourceSpec::parse("ftp:x"),
            Err(IngestError::BadSpec { .. })
        ));
        assert!(matches!(
            SourceSpec::parse("rib:"),
            Err(IngestError::BadSpec { .. })
        ));
    }

    #[test]
    fn ingest_spec_reports_missing_files() {
        let err = ingest_spec("as-rel:/nonexistent/x.txt", None).unwrap_err();
        assert!(matches!(err, IngestError::Io { .. }));
    }
}
