//! BGPStream-flavoured RIB / AS-path dump backend with valley-free
//! relationship inference.
//!
//! Accepts the text shapes BGPStream-style tooling emits: one record per
//! line, `|`-separated metadata fields with the AS path as one
//! space-separated field, e.g.
//!
//! ```text
//! R|rrc00|1609459200|203.0.113.0/24|64501 64500 64499
//! ```
//!
//! Parsing is deliberately positional-agnostic: the AS path is the
//! *last* field that is a whitespace-separated run of two or more
//! integers, so `bgpdump -m` style lines and plain one-path-per-line
//! dumps both work. Comment (`#`) and blank lines are skipped; CRLF is
//! tolerated; AS-prepending is collapsed; paths containing AS-sets
//! (`{…}`) are skipped with a counter (their edge semantics are
//! ambiguous).
//!
//! **Inference** (Gao-style, two passes): first a degree census over the
//! observed adjacency; then per path the *top* is the first
//! highest-degree AS, edges before it vote "right side provides",
//! edges after it vote "left side provides". A pair voted in both
//! directions across the dump is settlement-free peering — exactly how
//! tier-1 meshes show up in real tables (each side announces the other's
//! customers but no transit).

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::error::IngestError;
use crate::raw::{RawRel, RawTopology};
use crate::{Provenance, TopologySource};

/// A RIB/AS-path text dump on disk.
#[derive(Clone, Debug)]
pub struct RibSource {
    path: PathBuf,
}

impl RibSource {
    /// A source reading from `path` at load time.
    pub fn new(path: impl Into<PathBuf>) -> RibSource {
        RibSource { path: path.into() }
    }
}

impl TopologySource for RibSource {
    fn provenance(&self) -> Provenance {
        Provenance {
            kind: "rib",
            origin: self.path.display().to_string(),
        }
    }

    fn load_raw(&self) -> Result<RawTopology, IngestError> {
        let text =
            std::fs::read_to_string(&self.path).map_err(|e| IngestError::io(&self.path, e))?;
        parse_rib(&text)
    }
}

/// Extracts the AS path from one record line, if any.
fn extract_path(line: &str) -> Option<Vec<u64>> {
    let candidate = |field: &str| -> Option<Vec<u64>> {
        let tokens: Vec<&str> = field.split_whitespace().collect();
        if tokens.len() < 2 {
            return None;
        }
        tokens.iter().map(|t| t.parse::<u64>().ok()).collect()
    };
    if line.contains('|') {
        line.rsplit('|').find_map(|f| candidate(f.trim()))
    } else {
        candidate(line)
    }
}

/// Parses a RIB dump into the raw edge list via valley-free inference.
pub fn parse_rib(text: &str) -> Result<RawTopology, IngestError> {
    let mut paths: Vec<Vec<u64>> = Vec::new();
    let mut skipped_sets = 0usize;
    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.contains('{') {
            skipped_sets += 1;
            continue;
        }
        let Some(path) = extract_path(line) else {
            continue; // metadata-only line (e.g. a peer-table header)
        };
        // Collapse AS-prepending.
        let mut collapsed: Vec<u64> = Vec::with_capacity(path.len());
        for asn in path {
            if collapsed.last() != Some(&asn) {
                collapsed.push(asn);
            }
        }
        if collapsed.len() >= 2 {
            paths.push(collapsed);
        }
    }
    let _ = skipped_sets;
    if paths.is_empty() {
        return Err(IngestError::Empty { kind: "rib" });
    }

    // Pass 1: degree census (distinct neighbors over all observed edges).
    let mut neighbors: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for p in &paths {
        for w in p.windows(2) {
            neighbors.entry(w[0]).or_default().insert(w[1]);
            neighbors.entry(w[1]).or_default().insert(w[0]);
        }
    }
    let degree = |asn: u64| neighbors.get(&asn).map_or(0, |n| n.len());

    // Pass 2: valley-free votes. votes[(p, c)] counts "p provides to c".
    let mut votes: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for p in &paths {
        let top = p
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                degree(**a).cmp(&degree(**b)).then(ib.cmp(ia)) // first occurrence wins the tie
            })
            .map(|(i, _)| i)
            .expect("path non-empty");
        for (i, w) in p.windows(2).enumerate() {
            let (provider, customer) = if i < top { (w[1], w[0]) } else { (w[0], w[1]) };
            *votes.entry((provider, customer)).or_insert(0) += 1;
        }
    }

    // Resolve: both directions voted → peering; else provider→customer.
    let mut raw = RawTopology::default();
    let mut done: BTreeSet<(u64, u64)> = BTreeSet::new();
    for &(p, c) in votes.keys() {
        let key = (p.min(c), p.max(c));
        if !done.insert(key) {
            continue;
        }
        if votes.contains_key(&(c, p)) {
            raw.push(key.0, key.1, RawRel::Peer, 1);
        } else {
            raw.push(p, c, RawRel::Provider, 1);
        }
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_path_from_bgpstream_fields() {
        assert_eq!(
            extract_path("R|rrc00|1609459200|10.0.0.0/24|30 20 10"),
            Some(vec![30, 20, 10])
        );
        assert_eq!(extract_path("30 20 10"), Some(vec![30, 20, 10]));
        assert_eq!(extract_path("R|rrc00|header"), None);
    }

    #[test]
    fn infers_hierarchy_from_paths() {
        // 1 is the top provider (degree 3): 1-2, 1-3, 1-4; 2-5.
        let doc = "\
5 2 1\n\
2 1 3\n\
2 1 4\n";
        let raw = parse_rib(doc).unwrap();
        let find = |a: u64, b: u64| raw.edges.iter().find(|e| e.a == a && e.b == b).cloned();
        // Uphill votes: 1 provides to 2, 3, 4; 2 provides to 5.
        assert_eq!(find(1, 2).unwrap().rel, RawRel::Provider);
        assert_eq!(find(1, 3).unwrap().rel, RawRel::Provider);
        assert_eq!(find(1, 4).unwrap().rel, RawRel::Provider);
        assert_eq!(find(2, 5).unwrap().rel, RawRel::Provider);
    }

    #[test]
    fn opposing_votes_become_peering() {
        // Two tier-1s (equal degree 3 via stubs) announcing each other's
        // customers: votes go both ways on (1, 2).
        let doc = "\
11 1 2 21\n\
21 2 1 11\n\
12 1\n\
22 2\n";
        let raw = parse_rib(doc).unwrap();
        let peer = raw
            .edges
            .iter()
            .find(|e| (e.a, e.b) == (1, 2))
            .expect("1-2 edge");
        assert_eq!(peer.rel, RawRel::Peer);
        // Stub edges stay provider→customer.
        assert!(raw
            .edges
            .iter()
            .any(|e| e.a == 1 && e.b == 11 && e.rel == RawRel::Provider));
    }

    #[test]
    fn collapses_prepending_and_skips_sets() {
        let raw = parse_rib("3 2 2 2 1\n# comment\n\n4 {5 6} 1\n").unwrap();
        // The prepended path contributes the 2-3 and 1-2 edges only; the
        // AS-set line is skipped entirely.
        assert_eq!(raw.edges.len(), 2);
        assert!(raw.edges.iter().all(|e| e.a != 4));
    }

    #[test]
    fn pure_comment_dump_is_empty() {
        assert!(matches!(
            parse_rib("# nothing here\n"),
            Err(IngestError::Empty { .. })
        ));
    }
}
