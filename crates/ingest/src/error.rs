//! Errors shared by every ingestion backend.

use std::path::PathBuf;

/// Errors from loading, parsing, or normalizing a topology source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Reading the backing document failed.
    Io { path: PathBuf, message: String },
    /// The document violated its format. `kind` names the backend
    /// (`as-rel`, `graphml`, `rib`, `ixp`), `line` is 1-based (0 when the
    /// error is not line-addressable, e.g. malformed XML nesting).
    Parse {
        kind: &'static str,
        line: usize,
        message: String,
    },
    /// The document parsed but yielded no usable links.
    Empty { kind: &'static str },
    /// A `--source` specification string was malformed.
    BadSpec { spec: String, message: String },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            IngestError::Parse {
                kind,
                line,
                message,
            } if *line == 0 => write!(f, "{kind}: {message}"),
            IngestError::Parse {
                kind,
                line,
                message,
            } => write!(f, "{kind}: line {line}: {message}"),
            IngestError::Empty { kind } => {
                write!(f, "{kind}: document contains no usable links")
            }
            IngestError::BadSpec { spec, message } => {
                write!(f, "bad source spec '{spec}': {message}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl IngestError {
    /// Wraps an I/O error with the offending path.
    pub fn io(path: impl Into<PathBuf>, err: std::io::Error) -> IngestError {
        IngestError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}
