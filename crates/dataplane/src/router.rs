//! The border router: stateless PCFS forwarding.
//!
//! §4.1, Mechanism 4: "SCION border routers are simple by design.
//! Packet-Carried Forwarding State (PCFS) removes the need for large
//! inter-domain forwarding tables on routers. Additionally, routers only
//! perform packet forwarding and no control-plane functionalities."
//!
//! [`forward`] is the entire per-packet pipeline of one AS: verify the
//! current hop field (MAC, expiry, ingress interface), decide, advance.

use scion_proto::pcb::forwarding_key;
use scion_types::{IfId, IsdAsn, SimTime};

use crate::packet::Packet;

/// What the router decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardAction {
    /// Send out of the given egress interface toward the next AS.
    Egress(IfId),
    /// The packet has arrived: hand it to the local dispatcher.
    Deliver,
}

/// Why a packet was dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardError {
    /// The current hop field does not belong to this AS — the path
    /// pointer is corrupt or the packet was mis-routed.
    WrongAs { expected: IsdAsn, got: IsdAsn },
    /// MAC verification failed: the hop field was altered (§2.3:
    /// "cryptographically protected, preventing path alteration").
    BadMac,
    /// The hop field's authorization has expired.
    Expired,
    /// The packet arrived on an interface other than the authorized one.
    WrongIngress { expected: IfId, got: IfId },
    /// The path pointer ran past the end.
    PathExhausted,
}

impl std::fmt::Display for ForwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForwardError::WrongAs { expected, got } => {
                write!(f, "hop field for {got} processed at {expected}")
            }
            ForwardError::BadMac => write!(f, "hop field MAC invalid"),
            ForwardError::Expired => write!(f, "hop field expired"),
            ForwardError::WrongIngress { expected, got } => {
                write!(f, "arrived on {got}, authorized ingress is {expected}")
            }
            ForwardError::PathExhausted => write!(f, "path pointer past the end"),
        }
    }
}

impl std::error::Error for ForwardError {}

/// Processes `packet` at the border router of `local_as`, having arrived
/// via `arrival_if` ([`IfId::NONE`] when coming from inside the AS, i.e.
/// from the source host). On success the path pointer is advanced past
/// this AS's hop.
pub fn forward(
    packet: &mut Packet,
    local_as: IsdAsn,
    arrival_if: IfId,
    now: SimTime,
) -> Result<ForwardAction, ForwardError> {
    let &(owner, hf) = packet
        .path
        .current_hop()
        .ok_or(ForwardError::PathExhausted)?;
    if owner != local_as {
        return Err(ForwardError::WrongAs {
            expected: local_as,
            got: owner,
        });
    }
    if !hf.verify(forwarding_key(local_as)) {
        return Err(ForwardError::BadMac);
    }
    if now >= hf.expiry {
        return Err(ForwardError::Expired);
    }
    if hf.ingress != arrival_if {
        return Err(ForwardError::WrongIngress {
            expected: hf.ingress,
            got: arrival_if,
        });
    }
    if packet.path.at_destination() {
        packet.path.current += 1; // consume the final hop
        return Ok(ForwardAction::Deliver);
    }
    packet.path.current += 1;
    Ok(ForwardAction::Egress(hf.egress))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use scion_proto::combine::EndToEndPath;
    use scion_types::{Asn, Duration, Isd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn packet() -> Packet {
        Packet::along(
            &EndToEndPath {
                hops: vec![
                    (ia(1), IfId::NONE, IfId(1)),
                    (ia(2), IfId(3), IfId(4)),
                    (ia(3), IfId(5), IfId::NONE),
                ],
            },
            t(100),
            64,
        )
    }

    #[test]
    fn full_forwarding_pipeline() {
        let mut p = packet();
        // Source AS: packet comes from inside (no arrival interface).
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(1)),
            Ok(ForwardAction::Egress(IfId(1)))
        );
        // Transit AS.
        assert_eq!(
            forward(&mut p, ia(2), IfId(3), t(1)),
            Ok(ForwardAction::Egress(IfId(4)))
        );
        // Destination AS.
        assert_eq!(
            forward(&mut p, ia(3), IfId(5), t(1)),
            Ok(ForwardAction::Deliver)
        );
        // Nothing left.
        assert_eq!(
            forward(&mut p, ia(3), IfId(5), t(1)),
            Err(ForwardError::PathExhausted)
        );
    }

    #[test]
    fn altered_hop_field_is_dropped() {
        let mut p = packet();
        // Attacker rewrites the egress interface to divert the packet.
        p.path.hops[0].1.egress = IfId(9);
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(1)),
            Err(ForwardError::BadMac)
        );
    }

    #[test]
    fn expired_authorization_is_dropped() {
        let mut p = packet();
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(100)),
            Err(ForwardError::Expired)
        );
    }

    #[test]
    fn wrong_ingress_is_dropped() {
        let mut p = packet();
        forward(&mut p, ia(1), IfId::NONE, t(1)).unwrap();
        // Packet shows up at AS 2 on interface 7 instead of 3.
        assert_eq!(
            forward(&mut p, ia(2), IfId(7), t(1)),
            Err(ForwardError::WrongIngress {
                expected: IfId(3),
                got: IfId(7)
            })
        );
    }

    #[test]
    fn misrouted_packet_is_detected() {
        let mut p = packet();
        assert!(matches!(
            forward(&mut p, ia(2), IfId(3), t(1)),
            Err(ForwardError::WrongAs { .. })
        ));
    }
}
