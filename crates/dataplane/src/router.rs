//! The border router: stateless PCFS forwarding.
//!
//! §4.1, Mechanism 4: "SCION border routers are simple by design.
//! Packet-Carried Forwarding State (PCFS) removes the need for large
//! inter-domain forwarding tables on routers. Additionally, routers only
//! perform packet forwarding and no control-plane functionalities."
//!
//! [`forward`] is the entire per-packet pipeline of one AS: verify the
//! current hop field (MAC, expiry, ingress interface), decide, advance.
//! [`forward_instrumented`] is the same pipeline with full observability:
//! per-hop trace events, MAC-verify outcomes, per-interface counters, and
//! wall-clock latency recorded into the telemetry handle — all behind
//! single-branch checks so a disabled handle stays free.

use std::time::Instant;

use scion_proto::pcb::forwarding_key;
use scion_telemetry::trace::TraceEvent;
use scion_telemetry::{ids, phase, Label, Telemetry};
use scion_types::{IfId, IsdAsn, SimTime};

use crate::packet::Packet;

/// What the router decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardAction {
    /// Send out of the given egress interface toward the next AS.
    Egress(IfId),
    /// The packet has arrived: hand it to the local dispatcher.
    Deliver,
}

/// Why a packet was dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardError {
    /// The current hop field does not belong to this AS — the path
    /// pointer is corrupt or the packet was mis-routed.
    WrongAs { expected: IsdAsn, got: IsdAsn },
    /// MAC verification failed: the hop field was altered (§2.3:
    /// "cryptographically protected, preventing path alteration").
    BadMac,
    /// The hop field's authorization has expired.
    Expired,
    /// The packet arrived on an interface other than the authorized one.
    WrongIngress { expected: IfId, got: IfId },
    /// The path pointer ran past the end.
    PathExhausted,
}

impl std::fmt::Display for ForwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForwardError::WrongAs { expected, got } => {
                write!(f, "hop field for {got} processed at {expected}")
            }
            ForwardError::BadMac => write!(f, "hop field MAC invalid"),
            ForwardError::Expired => write!(f, "hop field expired"),
            ForwardError::WrongIngress { expected, got } => {
                write!(f, "arrived on {got}, authorized ingress is {expected}")
            }
            ForwardError::PathExhausted => write!(f, "path pointer past the end"),
        }
    }
}

impl std::error::Error for ForwardError {}

impl ForwardError {
    /// Stable drop-reason code, shared between [`TraceEvent::PacketDropped`]
    /// records and the `dataplane.drop.*` counter ids.
    pub fn reason(&self) -> &'static str {
        match self {
            ForwardError::WrongAs { .. } => "wrong_as",
            ForwardError::BadMac => "bad_mac",
            ForwardError::Expired => "expired",
            ForwardError::WrongIngress { .. } => "wrong_ingress",
            ForwardError::PathExhausted => "path_exhausted",
        }
    }

    /// The per-reason drop counter this error increments.
    pub fn metric_id(&self) -> &'static str {
        match self {
            ForwardError::WrongAs { .. } => ids::FWD_DROP_WRONG_AS,
            ForwardError::BadMac => ids::FWD_DROP_BAD_MAC,
            ForwardError::Expired => ids::FWD_DROP_EXPIRED,
            ForwardError::WrongIngress { .. } => ids::FWD_DROP_WRONG_INGRESS,
            ForwardError::PathExhausted => ids::FWD_DROP_PATH_EXHAUSTED,
        }
    }
}

/// Processes `packet` at the border router of `local_as`, having arrived
/// via `arrival_if` ([`IfId::NONE`] when coming from inside the AS, i.e.
/// from the source host). On success the path pointer is advanced past
/// this AS's hop.
pub fn forward(
    packet: &mut Packet,
    local_as: IsdAsn,
    arrival_if: IfId,
    now: SimTime,
) -> Result<ForwardAction, ForwardError> {
    forward_instrumented(
        packet,
        local_as,
        0,
        arrival_if,
        now,
        None,
        &mut Telemetry::disabled(),
    )
}

fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The full border-router pipeline of [`forward`] with observability:
///
/// * a [`TraceEvent::MacVerified`] record and a `macs_verified`/`rejected`
///   counter for every MAC check;
/// * on egress: [`TraceEvent::PacketForwarded`] plus per-AS and
///   per-interface packet/byte counters;
/// * on delivery: [`TraceEvent::PacketDelivered`] plus the
///   `hops_at_delivery` histogram;
/// * on every drop: [`TraceEvent::PacketDropped`] with the stable reason
///   code and the matching `dataplane.drop.*` counter;
/// * wall-clock spans into the [`phase::FWD_FORWARD`] and
///   [`phase::FWD_VERIFY`] profiler phases.
///
/// `node` is the dense topology index of `local_as`, used to label traces
/// and counters. `precomputed_mac` short-circuits the MAC check with a
/// result computed elsewhere (the batched verifier); the trace record and
/// counters are still emitted identically, which keeps the scalar and
/// batched arms byte-identical on the deterministic streams.
pub fn forward_instrumented(
    packet: &mut Packet,
    local_as: IsdAsn,
    node: u32,
    arrival_if: IfId,
    now: SimTime,
    precomputed_mac: Option<bool>,
    tel: &mut Telemetry,
) -> Result<ForwardAction, ForwardError> {
    let hop_start = tel.profile.is_enabled().then(Instant::now);

    let result = (|| {
        let &(owner, hf) = packet
            .path
            .current_hop()
            .ok_or(ForwardError::PathExhausted)?;
        if owner != local_as {
            return Err(ForwardError::WrongAs {
                expected: local_as,
                got: owner,
            });
        }
        let mac_ok = match precomputed_mac {
            Some(ok) => ok,
            None => {
                let t0 = tel.profile.is_enabled().then(Instant::now);
                let ok = hf.verify(forwarding_key(local_as));
                if let Some(t0) = t0 {
                    tel.profile.record_ns(phase::FWD_VERIFY, elapsed_ns(t0));
                }
                ok
            }
        };
        tel.trace_event(now, || TraceEvent::MacVerified { node, ok: mac_ok });
        if mac_ok {
            tel.inc(ids::FWD_MACS_VERIFIED, Label::As(node), 1);
        } else {
            tel.inc(ids::FWD_MACS_REJECTED, Label::As(node), 1);
            return Err(ForwardError::BadMac);
        }
        if now >= hf.expiry {
            return Err(ForwardError::Expired);
        }
        if hf.ingress != arrival_if {
            return Err(ForwardError::WrongIngress {
                expected: hf.ingress,
                got: arrival_if,
            });
        }
        if packet.path.at_destination() {
            packet.path.current += 1; // consume the final hop
            return Ok(ForwardAction::Deliver);
        }
        packet.path.current += 1;
        Ok(ForwardAction::Egress(hf.egress))
    })();

    match &result {
        Ok(ForwardAction::Egress(egress)) => {
            let egress = *egress;
            let bytes = packet.wire_size();
            tel.trace_event(now, || TraceEvent::PacketForwarded {
                node,
                ingress_if: arrival_if.0,
                egress_if: egress.0,
            });
            tel.inc(ids::FWD_FORWARDED, Label::As(node), 1);
            tel.inc(ids::FWD_IFACE_PACKETS, Label::Iface(node, egress.0), 1);
            tel.inc(ids::FWD_IFACE_BYTES, Label::Iface(node, egress.0), bytes);
        }
        Ok(ForwardAction::Deliver) => {
            let hops = packet.path.hops.len() as u32;
            tel.trace_event(now, || TraceEvent::PacketDelivered { node, hops });
            tel.inc(ids::FWD_DELIVERED, Label::As(node), 1);
            tel.observe(ids::FWD_HOPS_AT_DELIVERY, Label::Global, f64::from(hops));
        }
        Err(e) => {
            let reason = e.reason();
            tel.trace_event(now, || TraceEvent::PacketDropped { node, reason });
            tel.inc(ids::FWD_DROPPED, Label::As(node), 1);
            tel.inc(e.metric_id(), Label::Global, 1);
        }
    }

    if let Some(t0) = hop_start {
        tel.profile.record_ns(phase::FWD_FORWARD, elapsed_ns(t0));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use scion_proto::combine::EndToEndPath;
    use scion_types::{Asn, Duration, Isd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn packet() -> Packet {
        Packet::along(
            &EndToEndPath {
                hops: vec![
                    (ia(1), IfId::NONE, IfId(1)),
                    (ia(2), IfId(3), IfId(4)),
                    (ia(3), IfId(5), IfId::NONE),
                ],
            },
            t(100),
            64,
        )
    }

    #[test]
    fn full_forwarding_pipeline() {
        let mut p = packet();
        // Source AS: packet comes from inside (no arrival interface).
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(1)),
            Ok(ForwardAction::Egress(IfId(1)))
        );
        // Transit AS.
        assert_eq!(
            forward(&mut p, ia(2), IfId(3), t(1)),
            Ok(ForwardAction::Egress(IfId(4)))
        );
        // Destination AS.
        assert_eq!(
            forward(&mut p, ia(3), IfId(5), t(1)),
            Ok(ForwardAction::Deliver)
        );
        // Nothing left.
        assert_eq!(
            forward(&mut p, ia(3), IfId(5), t(1)),
            Err(ForwardError::PathExhausted)
        );
    }

    #[test]
    fn altered_hop_field_is_dropped() {
        let mut p = packet();
        // Attacker rewrites the egress interface to divert the packet.
        p.path.hops[0].1.egress = IfId(9);
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(1)),
            Err(ForwardError::BadMac)
        );
    }

    #[test]
    fn expired_authorization_is_dropped() {
        let mut p = packet();
        assert_eq!(
            forward(&mut p, ia(1), IfId::NONE, t(100)),
            Err(ForwardError::Expired)
        );
    }

    #[test]
    fn wrong_ingress_is_dropped() {
        let mut p = packet();
        forward(&mut p, ia(1), IfId::NONE, t(1)).unwrap();
        // Packet shows up at AS 2 on interface 7 instead of 3.
        assert_eq!(
            forward(&mut p, ia(2), IfId(7), t(1)),
            Err(ForwardError::WrongIngress {
                expected: IfId(3),
                got: IfId(7)
            })
        );
    }

    #[test]
    fn misrouted_packet_is_detected() {
        let mut p = packet();
        assert!(matches!(
            forward(&mut p, ia(2), IfId(3), t(1)),
            Err(ForwardError::WrongAs { .. })
        ));
    }

    #[test]
    fn every_error_has_a_stable_reason_and_counter() {
        let errors = [
            ForwardError::WrongAs {
                expected: ia(1),
                got: ia(2),
            },
            ForwardError::BadMac,
            ForwardError::Expired,
            ForwardError::WrongIngress {
                expected: IfId(1),
                got: IfId(2),
            },
            ForwardError::PathExhausted,
        ];
        let reasons: Vec<&str> = errors.iter().map(|e| e.reason()).collect();
        assert_eq!(
            reasons,
            vec![
                "wrong_as",
                "bad_mac",
                "expired",
                "wrong_ingress",
                "path_exhausted"
            ]
        );
        for e in &errors {
            assert_eq!(e.metric_id(), format!("dataplane.drop.{}", e.reason()));
        }
    }

    #[test]
    fn instrumented_forward_records_traces_and_counters() {
        use scion_telemetry::TelemetryConfig;

        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut p = packet();
        forward_instrumented(&mut p, ia(1), 0, IfId::NONE, t(1), None, &mut tel).unwrap();
        forward_instrumented(&mut p, ia(2), 1, IfId(3), t(1), None, &mut tel).unwrap();
        assert_eq!(
            forward_instrumented(&mut p, ia(3), 2, IfId(5), t(1), None, &mut tel),
            Ok(ForwardAction::Deliver)
        );

        let count = |id| tel.metrics.counters().filter(|(i, _, _)| *i == id).count();
        assert_eq!(count(ids::FWD_FORWARDED), 2, "two egress hops");
        assert_eq!(count(ids::FWD_DELIVERED), 1);
        assert_eq!(count(ids::FWD_IFACE_PACKETS), 2);
        let events: Vec<&TraceEvent> = tel.traces.records().map(|r| &r.event).collect();
        assert_eq!(events.len(), 6, "MacVerified + outcome per hop: {events:?}");
        assert!(matches!(
            events[0],
            TraceEvent::MacVerified { node: 0, ok: true }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::PacketForwarded { node: 0, .. }
        ));
        assert!(matches!(
            events[5],
            TraceEvent::PacketDelivered { node: 2, hops: 3 }
        ));
        // Wall-clock spans landed in the profiler phases.
        assert_eq!(tel.profile.stats(phase::FWD_FORWARD).unwrap().calls, 3);
        assert_eq!(tel.profile.stats(phase::FWD_VERIFY).unwrap().calls, 3);
    }

    #[test]
    fn instrumented_drop_emits_reason_code() {
        use scion_telemetry::TelemetryConfig;

        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut p = packet();
        p.path.hops[0].1.egress = IfId(9); // tamper
        assert_eq!(
            forward_instrumented(&mut p, ia(1), 0, IfId::NONE, t(1), None, &mut tel),
            Err(ForwardError::BadMac)
        );
        let dropped: Vec<&TraceEvent> = tel
            .traces
            .records()
            .map(|r| &r.event)
            .filter(|e| matches!(e, TraceEvent::PacketDropped { .. }))
            .collect();
        assert!(
            matches!(
                dropped[..],
                [TraceEvent::PacketDropped {
                    node: 0,
                    reason: "bad_mac"
                }]
            ),
            "{dropped:?}"
        );
        let rejected: u64 = tel
            .metrics
            .counters()
            .filter(|(i, _, _)| *i == ids::FWD_MACS_REJECTED)
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(rejected, 1);
    }

    #[test]
    fn precomputed_mac_result_matches_inline_verification() {
        use scion_telemetry::TelemetryConfig;

        // Same packet forwarded with inline and precomputed MAC results
        // must produce identical actions, traces, and counters.
        let run = |precomputed: Option<bool>| {
            let mut tel = Telemetry::new(TelemetryConfig::default());
            let mut p = packet();
            let r = forward_instrumented(&mut p, ia(1), 0, IfId::NONE, t(1), precomputed, &mut tel);
            let traces: Vec<TraceRecordSnapshot> = tel
                .traces
                .records()
                .map(|r| (r.t_us, r.event.clone()))
                .collect();
            let counters: Vec<_> = tel.metrics.counters().collect();
            (r, traces, format!("{counters:?}"))
        };
        type TraceRecordSnapshot = (u64, TraceEvent);
        assert_eq!(run(None), run(Some(true)));
    }
}
