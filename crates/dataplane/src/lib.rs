//! The SCION data plane (paper §2.3).
//!
//! "The path segments contain compact hop-fields … The hop-fields are
//! cryptographically protected, preventing path alteration. This so-called
//! Packet-Carried Forwarding State (PCFS) replaces signaling to use a
//! path, ensuring that routers do not need any local state on either paths
//! or flows."
//!
//! * [`packet`] — the SCION packet: source/destination addresses, the
//!   embedded forwarding path (hop fields + current-hop pointer), and a
//!   payload. Includes the wire-size model.
//! * [`router`] — the border router: verifies the current hop field's MAC
//!   and expiry, checks the ingress interface, advances the pointer, and
//!   forwards — **no routing table, no per-flow state**. Link failures
//!   produce SCMP "interface down" errors back to the source.
//! * [`scmp`] — SCION Control Message Protocol messages (§4.1: endpoints
//!   learn of link failures "through SCMP messages sent by the border
//!   router observing the failed link" and immediately switch paths).
//! * [`network`] — a harness that walks a packet hop by hop across a
//!   topology, exercising every router on the path; used by tests and the
//!   failover machinery.

pub mod network;
pub mod packet;
pub mod router;
pub mod scmp;

pub use network::{deliver, DeliveryError};
pub use packet::{ForwardingPath, Packet};
pub use router::{forward, ForwardAction, ForwardError};
pub use scmp::ScmpMessage;
