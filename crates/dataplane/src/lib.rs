//! The SCION data plane (paper §2.3).
//!
//! "The path segments contain compact hop-fields … The hop-fields are
//! cryptographically protected, preventing path alteration. This so-called
//! Packet-Carried Forwarding State (PCFS) replaces signaling to use a
//! path, ensuring that routers do not need any local state on either paths
//! or flows."
//!
//! * [`packet`] — the SCION packet: source/destination addresses, the
//!   embedded forwarding path (hop fields + current-hop pointer), and a
//!   payload. Includes the wire-size model.
//! * [`router`] — the border router: verifies the current hop field's MAC
//!   and expiry, checks the ingress interface, advances the pointer, and
//!   forwards — **no routing table, no per-flow state**. Link failures
//!   produce SCMP "interface down" errors back to the source.
//! * [`scmp`] — SCION Control Message Protocol messages (§4.1: endpoints
//!   learn of link failures "through SCMP messages sent by the border
//!   router observing the failed link" and immediately switch paths).
//! * [`network`] — a harness that walks a packet hop by hop across a
//!   topology, exercising every router on the path; used by tests and the
//!   failover machinery.
//! * [`batch`] — batched hop-field verification: MACs checked in parallel
//!   across a worker pool, pipeline side effects replayed serially in
//!   input order (the data-plane twin of the beaconing shard/merge split).
//!
//! Every stage has an `_instrumented` variant threading a
//! [`scion_telemetry::Telemetry`] handle: per-packet trace events, MAC
//! verify outcomes, per-interface counters, drop reasons, and wall-clock
//! forwarding-latency histograms. The plain variants delegate to them
//! with a disabled handle, which costs one branch per instrument site.

pub mod batch;
pub mod network;
pub mod packet;
pub mod router;
pub mod scmp;

pub use batch::{forward_batch, BatchStep};
pub use network::{deliver, deliver_instrumented, DeliveryError};
pub use packet::{ForwardingPath, Packet};
pub use router::{forward, forward_instrumented, ForwardAction, ForwardError};
pub use scmp::{ScmpLimiter, ScmpMessage};
