//! Batched hop-field verification: the data-plane analogue of the
//! parallel beaconing engine's shard/merge split.
//!
//! MAC verification is the only expensive, side-effect-free stage of the
//! border-router pipeline, so it parallelizes cleanly: the **shard** stage
//! verifies every scheduled hop's MAC across the worker pool
//! ([`phase::FWD_BATCH_SHARD`]), each shard timing its items into a local
//! [`Histogram`]; the **merge** stage ([`phase::FWD_BATCH_MERGE`]) then
//! replays the full pipeline serially in input order via
//! [`forward_instrumented`] with the precomputed MAC results, and absorbs
//! the shard histograms into the [`phase::FWD_VERIFY`] profiler phase.
//!
//! Because the merge emits traces and counters in exactly the order the
//! scalar pipeline would, a batched run's deterministic telemetry streams
//! are byte-identical to a scalar run over the same steps — asserted by
//! `tests/forwarding_determinism.rs`.

use std::time::Instant;

use scion_proto::hopfield::HopField;
use scion_proto::pcb::forwarding_key;
use scion_simulator::exec::WorkerPool;
use scion_telemetry::{phase, Histogram, Telemetry, WALL_NS_BUCKETS};
use scion_types::{IfId, IsdAsn, SimTime};

use crate::packet::Packet;
use crate::router::{forward_instrumented, ForwardAction, ForwardError};

/// One scheduled border-router visit: packet `packet` (an index into the
/// batch slice) is processed at `local_as` having arrived via
/// `arrival_if`. `node` is the AS's dense topology index for telemetry
/// labels.
#[derive(Clone, Copy, Debug)]
pub struct BatchStep {
    /// Index of the packet in the batch slice.
    pub packet: usize,
    /// The AS whose border router processes this step.
    pub local_as: IsdAsn,
    /// Dense topology index of `local_as`.
    pub node: u32,
    /// Arrival interface ([`IfId::NONE`] at the source AS).
    pub arrival_if: IfId,
}

/// Minimum steps per shard chunk: below this, hand-off overhead dominates
/// the ~100 ns MAC check.
const MIN_CHUNK: usize = 32;

/// Processes `steps` against `packets`, verifying hop-field MACs in
/// parallel across `pool` and then applying the forwarding pipeline
/// serially in input order. Returns `(packet index, outcome)` per step,
/// in step order.
///
/// Steps must reference distinct packets (or, more precisely, the MAC of
/// each step's *current* hop is read before any pipeline side effects run,
/// so two steps for one packet would verify the same hop twice).
pub fn forward_batch(
    packets: &mut [Packet],
    steps: &[BatchStep],
    now: SimTime,
    pool: &WorkerPool,
    tel: &mut Telemetry,
) -> Vec<(usize, Result<ForwardAction, ForwardError>)> {
    // Snapshot the (key, hop field) pairs the shards need; a step whose
    // pipeline would fail before the MAC check (pointer exhausted, wrong
    // AS) gets no precomputed result and falls back to the scalar path.
    let jobs: Vec<Option<(u64, HopField)>> = steps
        .iter()
        .map(|s| {
            packets[s.packet]
                .path
                .current_hop()
                .filter(|&&(owner, _)| owner == s.local_as)
                .map(|&(owner, hf)| (forwarding_key(owner), hf))
        })
        .collect();

    let timed = tel.profile.is_enabled();
    let chunk_size = (steps.len() / (pool.threads() * 4).max(1)).max(MIN_CHUNK);
    let chunks: Vec<Vec<Option<(u64, HopField)>>> =
        jobs.chunks(chunk_size).map(<[_]>::to_vec).collect();

    let shard_start = timed.then(Instant::now);
    let sharded: Vec<(Vec<Option<bool>>, Histogram)> = pool.run_ordered(chunks, |_, chunk| {
        let mut latency = Histogram::new(&WALL_NS_BUCKETS);
        let verdicts = chunk
            .into_iter()
            .map(|job| {
                job.map(|(key, hf)| {
                    let t0 = timed.then(Instant::now);
                    let ok = hf.verify(key);
                    if let Some(t0) = t0 {
                        latency.observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as f64);
                    }
                    ok
                })
            })
            .collect();
        (verdicts, latency)
    });
    if let Some(t0) = shard_start {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        tel.profile.record_ns(phase::FWD_BATCH_SHARD, ns);
    }

    let mut verdicts = Vec::with_capacity(steps.len());
    for (chunk_verdicts, shard_hist) in sharded {
        verdicts.extend(chunk_verdicts);
        tel.profile.absorb(phase::FWD_VERIFY, &shard_hist);
    }

    let merge_start = timed.then(Instant::now);
    let results = steps
        .iter()
        .zip(verdicts)
        .map(|(s, mac_ok)| {
            let outcome = forward_instrumented(
                &mut packets[s.packet],
                s.local_as,
                s.node,
                s.arrival_if,
                now,
                mac_ok,
                tel,
            );
            (s.packet, outcome)
        })
        .collect();
    if let Some(t0) = merge_start {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        tel.profile.record_ns(phase::FWD_BATCH_MERGE, ns);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::combine::EndToEndPath;
    use scion_telemetry::{ids, Label, TelemetryConfig};
    use scion_types::{Asn, Duration, Isd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn path() -> EndToEndPath {
        EndToEndPath {
            hops: vec![
                (ia(1), IfId::NONE, IfId(1)),
                (ia(2), IfId(3), IfId(4)),
                (ia(3), IfId(5), IfId::NONE),
            ],
        }
    }

    fn source_steps(n: usize) -> Vec<BatchStep> {
        (0..n)
            .map(|i| BatchStep {
                packet: i,
                local_as: ia(1),
                node: 0,
                arrival_if: IfId::NONE,
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_results_and_telemetry() {
        let n = 100;
        let pool = WorkerPool::new(2);
        let mut batched: Vec<Packet> = (0..n).map(|_| Packet::along(&path(), t(100), 64)).collect();
        let mut scalar = batched.clone();
        // Tamper a few packets so both success and drop paths are covered.
        for pkts in [&mut batched, &mut scalar] {
            for i in (0..n).step_by(7) {
                pkts[i].path.hops[0].1.egress = IfId(9);
            }
        }

        let mut tel_b = Telemetry::new(TelemetryConfig::default());
        let mut tel_s = Telemetry::new(TelemetryConfig::default());
        let steps = source_steps(n);
        let rb = forward_batch(&mut batched, &steps, t(1), &pool, &mut tel_b);
        let rs: Vec<(usize, Result<ForwardAction, ForwardError>)> = steps
            .iter()
            .map(|s| {
                let r = forward_instrumented(
                    &mut scalar[s.packet],
                    s.local_as,
                    s.node,
                    s.arrival_if,
                    t(1),
                    None,
                    &mut tel_s,
                );
                (s.packet, r)
            })
            .collect();

        assert_eq!(rb, rs);
        assert_eq!(batched, scalar, "advanced pointers must agree");
        let counters = |tel: &Telemetry| {
            tel.metrics
                .counters()
                .map(|(i, l, v)| format!("{i}/{l:?}/{v}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(counters(&tel_b), counters(&tel_s));
        let traces = |tel: &Telemetry| {
            tel.traces
                .records()
                .map(|r| format!("{:?}", r.event))
                .collect::<Vec<_>>()
        };
        assert_eq!(traces(&tel_b), traces(&tel_s));
    }

    #[test]
    fn batch_records_shard_and_merge_phases() {
        let n = 64;
        let pool = WorkerPool::new(2);
        let mut pkts: Vec<Packet> = (0..n).map(|_| Packet::along(&path(), t(100), 64)).collect();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let steps = source_steps(n);
        forward_batch(&mut pkts, &steps, t(1), &pool, &mut tel);

        assert!(tel.profile.stats(phase::FWD_BATCH_SHARD).is_some());
        assert!(tel.profile.stats(phase::FWD_BATCH_MERGE).is_some());
        // Shard-side verify latencies were absorbed: one observation per step.
        assert_eq!(
            tel.profile.stats(phase::FWD_VERIFY).unwrap().calls,
            n as u64
        );
        assert_eq!(
            tel.profile.latency(phase::FWD_VERIFY).unwrap().count(),
            n as u64
        );
        let verified: u64 = tel
            .metrics
            .counters()
            .filter(|(i, _, _)| *i == ids::FWD_MACS_VERIFIED)
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(verified, n as u64);
        let forwarded = tel
            .metrics
            .counters()
            .find(|(i, l, _)| *i == ids::FWD_FORWARDED && *l == Label::As(0))
            .map(|(_, _, v)| v);
        assert_eq!(forwarded, Some(n as u64));
    }

    #[test]
    fn exhausted_steps_fall_back_to_scalar_error_path() {
        let pool = WorkerPool::new(1);
        let mut pkts = vec![Packet::along(&path(), t(100), 64)];
        pkts[0].path.current = 3; // past the end
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let steps = source_steps(1);
        let r = forward_batch(&mut pkts, &steps, t(1), &pool, &mut tel);
        assert_eq!(r, vec![(0, Err(ForwardError::PathExhausted))]);
    }
}
