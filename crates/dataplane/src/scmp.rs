//! SCION Control Message Protocol messages.
//!
//! §4.1: "Endpoints and border routers that use a path containing a failed
//! link are informed of the link failure through SCMP messages sent by the
//! border router observing the failed link … hosts switch to a different
//! path as soon as the SCMP message is received."

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use scion_proto::wire;
use scion_types::{Duration, IfId, IsdAsn, LinkEnd, SimTime};

/// An SCMP error message sent back toward a packet's source.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScmpMessage {
    /// The egress interface of `at` is down — every path through
    /// `(at, interface)` is unusable.
    ExternalInterfaceDown {
        at: IsdAsn,
        interface: IfId,
        observed_at: SimTime,
    },
    /// The packet could not be processed (MAC/expiry failures).
    InvalidPath { at: IsdAsn, observed_at: SimTime },
}

impl ScmpMessage {
    /// Wire size per the control-plane size model.
    pub fn wire_size(&self) -> u64 {
        wire::SCMP_REVOCATION
    }

    /// The AS that raised the error.
    pub fn origin(&self) -> IsdAsn {
        match self {
            ScmpMessage::ExternalInterfaceDown { at, .. } => *at,
            ScmpMessage::InvalidPath { at, .. } => *at,
        }
    }

    /// The near end of the link the message concerns, when link-scoped.
    pub fn link_end(&self) -> Option<LinkEnd> {
        match self {
            ScmpMessage::ExternalInterfaceDown { at, interface, .. } => {
                Some(LinkEnd::new(*at, *interface))
            }
            ScmpMessage::InvalidPath { .. } => None,
        }
    }
}

/// Per-link SCMP revocation admission control.
///
/// A burst of in-flight packets hitting one failed link would otherwise
/// turn into a burst of identical revocation signals toward the path
/// server — a revocation storm. The observing border router therefore
/// admits at most **one** revocation per `(link end, holdoff window)`:
/// the first signal passes, duplicates within `holdoff` are suppressed
/// (deduplicated), and once the window lapses the next packet may probe
/// the link again.
///
/// State is a `BTreeMap`, so admission decisions replay deterministically
/// for a deterministic packet order.
#[derive(Clone, Debug)]
pub struct ScmpLimiter {
    holdoff: Duration,
    last_admitted: BTreeMap<LinkEnd, SimTime>,
    admitted: u64,
    suppressed: u64,
}

impl ScmpLimiter {
    /// A limiter admitting one revocation per link end per `holdoff`.
    pub fn new(holdoff: Duration) -> ScmpLimiter {
        ScmpLimiter {
            holdoff,
            last_admitted: BTreeMap::new(),
            admitted: 0,
            suppressed: 0,
        }
    }

    /// The holdoff window in force.
    pub fn holdoff(&self) -> Duration {
        self.holdoff
    }

    /// Decides whether a revocation for the link at `near` may go out at
    /// `now`. Callers must only invoke this with non-decreasing `now`.
    pub fn admit(&mut self, near: LinkEnd, now: SimTime) -> bool {
        match self.last_admitted.get(&near) {
            Some(&t) if now.since(t) < self.holdoff => {
                self.suppressed += 1;
                false
            }
            _ => {
                self.last_admitted.insert(near, now);
                self.admitted += 1;
                true
            }
        }
    }

    /// [`ScmpLimiter::admit`] keyed by the message's link end. Messages
    /// without one (e.g. [`ScmpMessage::InvalidPath`]) carry no
    /// revocation and are never admitted.
    pub fn admit_message(&mut self, msg: &ScmpMessage, now: SimTime) -> bool {
        match msg.link_end() {
            Some(near) => self.admit(near, now),
            None => false,
        }
    }

    /// Revocations admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Revocations suppressed inside a holdoff window so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Duration, Isd};

    #[test]
    fn scmp_accessors() {
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let m = ScmpMessage::ExternalInterfaceDown {
            at,
            interface: IfId(3),
            observed_at: SimTime::ZERO + Duration::from_secs(9),
        };
        assert_eq!(m.origin(), at);
        assert_eq!(m.wire_size(), wire::SCMP_REVOCATION);
        let m2 = ScmpMessage::InvalidPath {
            at,
            observed_at: SimTime::ZERO,
        };
        assert_eq!(m2.origin(), at);
        assert_eq!(m.link_end(), Some(LinkEnd::new(at, IfId(3))));
        assert_eq!(m2.link_end(), None);
    }

    #[test]
    fn burst_of_100_packets_admits_one_revocation_per_window() {
        // Satellite: SCMP dedup under a 100-packet burst on one failed
        // link — the limiter caps revocations at ≤ 1 per (link, holdoff).
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let near = LinkEnd::new(at, IfId(3));
        let holdoff = Duration::from_millis(200);
        let mut lim = ScmpLimiter::new(holdoff);

        let t0 = SimTime::ZERO + Duration::from_secs(1);
        let mut admitted = 0;
        for i in 0..100u64 {
            // Burst spread over 10 ms — far inside one holdoff window.
            let now = t0 + Duration::from_micros(i * 100);
            if lim.admit(near, now) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 1, "one revocation per (link, window)");
        assert_eq!(lim.admitted(), 1);
        assert_eq!(lim.suppressed(), 99);

        // Once the window lapses, the link may be probed again.
        assert!(lim.admit(near, t0 + holdoff + Duration::from_millis(1)));
        assert_eq!(lim.admitted(), 2);
    }

    #[test]
    fn holdoff_expires_at_the_exact_tick_boundary() {
        // Satellite edge case: `admit` suppresses strictly *inside* the
        // window (`since(t) < holdoff`), so the first tick at exactly
        // t0 + holdoff is admitted again — no off-by-one in either
        // direction.
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let near = LinkEnd::new(at, IfId(3));
        let holdoff = Duration::from_millis(200);
        let mut lim = ScmpLimiter::new(holdoff);
        let t0 = SimTime::ZERO + Duration::from_secs(1);
        assert!(lim.admit(near, t0));
        // One microsecond before the boundary: still suppressed.
        assert!(!lim.admit(near, t0 + (holdoff - Duration::from_micros(1))));
        // Exactly at the boundary: admitted, and the window re-arms from
        // this instant, not from t0.
        let t1 = t0 + holdoff;
        assert!(lim.admit(near, t1));
        assert!(!lim.admit(near, t1 + (holdoff - Duration::from_micros(1))));
        assert!(lim.admit(near, t1 + holdoff));
        assert_eq!((lim.admitted(), lim.suppressed()), (3, 2));
    }

    #[test]
    fn limiter_tracks_links_independently() {
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let mut lim = ScmpLimiter::new(Duration::from_millis(100));
        let t0 = SimTime::ZERO + Duration::from_secs(1);
        assert!(lim.admit(LinkEnd::new(at, IfId(1)), t0));
        assert!(lim.admit(LinkEnd::new(at, IfId(2)), t0));
        assert!(!lim.admit(LinkEnd::new(at, IfId(1)), t0));
        let other = IsdAsn::new(Isd(1), Asn::from_u64(6));
        assert!(lim.admit(LinkEnd::new(other, IfId(1)), t0));
    }

    #[test]
    fn invalid_path_messages_never_revoke() {
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let mut lim = ScmpLimiter::new(Duration::from_millis(100));
        let msg = ScmpMessage::InvalidPath {
            at,
            observed_at: SimTime::ZERO,
        };
        assert!(!lim.admit_message(&msg, SimTime::ZERO + Duration::from_secs(1)));
        assert_eq!((lim.admitted(), lim.suppressed()), (0, 0));
    }
}
