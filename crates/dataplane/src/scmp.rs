//! SCION Control Message Protocol messages.
//!
//! §4.1: "Endpoints and border routers that use a path containing a failed
//! link are informed of the link failure through SCMP messages sent by the
//! border router observing the failed link … hosts switch to a different
//! path as soon as the SCMP message is received."

use serde::{Deserialize, Serialize};

use scion_proto::wire;
use scion_types::{IfId, IsdAsn, SimTime};

/// An SCMP error message sent back toward a packet's source.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScmpMessage {
    /// The egress interface of `at` is down — every path through
    /// `(at, interface)` is unusable.
    ExternalInterfaceDown {
        at: IsdAsn,
        interface: IfId,
        observed_at: SimTime,
    },
    /// The packet could not be processed (MAC/expiry failures).
    InvalidPath { at: IsdAsn, observed_at: SimTime },
}

impl ScmpMessage {
    /// Wire size per the control-plane size model.
    pub fn wire_size(&self) -> u64 {
        wire::SCMP_REVOCATION
    }

    /// The AS that raised the error.
    pub fn origin(&self) -> IsdAsn {
        match self {
            ScmpMessage::ExternalInterfaceDown { at, .. } => *at,
            ScmpMessage::InvalidPath { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::{Asn, Duration, Isd};

    #[test]
    fn scmp_accessors() {
        let at = IsdAsn::new(Isd(1), Asn::from_u64(5));
        let m = ScmpMessage::ExternalInterfaceDown {
            at,
            interface: IfId(3),
            observed_at: SimTime::ZERO + Duration::from_secs(9),
        };
        assert_eq!(m.origin(), at);
        assert_eq!(m.wire_size(), wire::SCMP_REVOCATION);
        let m2 = ScmpMessage::InvalidPath {
            at,
            observed_at: SimTime::ZERO,
        };
        assert_eq!(m2.origin(), at);
    }
}
