//! SCION packets with Packet-Carried Forwarding State.

use serde::{Deserialize, Serialize};

use scion_proto::combine::EndToEndPath;
use scion_proto::hopfield::HopField;
use scion_proto::pcb::forwarding_key;
use scion_types::{IsdAsn, SimTime};

/// The forwarding path carried in a packet header: one hop field per AS,
/// in travel order, plus the current-hop pointer routers advance.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingPath {
    /// `(AS, hop field)` in travel order — the AS is carried so routers
    /// can MAC-check with their own key without any lookup state.
    pub hops: Vec<(IsdAsn, HopField)>,
    /// Index of the hop currently being processed.
    pub current: usize,
}

impl ForwardingPath {
    /// Builds PCFS from a combined end-to-end path, MAC'ing each hop with
    /// the owning AS's forwarding key (in deployment the MACs come from
    /// the path segments themselves; semantically identical here because
    /// the keys are the same).
    pub fn from_path(path: &EndToEndPath, expiry: SimTime) -> ForwardingPath {
        let hops = path
            .hops
            .iter()
            .map(|&(ia, ingress, egress)| {
                (
                    ia,
                    HopField::new(ingress, egress, expiry, forwarding_key(ia)),
                )
            })
            .collect();
        ForwardingPath { hops, current: 0 }
    }

    /// The hop under the pointer.
    pub fn current_hop(&self) -> Option<&(IsdAsn, HopField)> {
        self.hops.get(self.current)
    }

    /// True when the packet has been processed by its final AS.
    pub fn at_destination(&self) -> bool {
        self.current + 1 >= self.hops.len()
    }

    /// Header wire size: per-hop 12-byte hop fields + 8-byte AS ids, plus
    /// meta (current pointer, segment markers).
    pub fn wire_size(&self) -> u64 {
        8 + self.hops.len() as u64 * (HopField::WIRE_SIZE as u64 + 8)
    }
}

/// A SCION packet.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    pub source: IsdAsn,
    pub destination: IsdAsn,
    pub path: ForwardingPath,
    /// Payload length (contents are irrelevant to forwarding).
    pub payload_len: u32,
}

impl Packet {
    /// Builds a packet along `path`.
    ///
    /// # Panics
    /// Panics on an empty path; hot paths handling untrusted path data
    /// should use [`Packet::try_along`].
    pub fn along(path: &EndToEndPath, expiry: SimTime, payload_len: u32) -> Packet {
        Packet::try_along(path, expiry, payload_len).expect("packet needs a non-empty path")
    }

    /// Builds a packet along `path`, or `None` for an empty path — the
    /// panic-free constructor for paths of untrusted provenance.
    pub fn try_along(path: &EndToEndPath, expiry: SimTime, payload_len: u32) -> Option<Packet> {
        let (&(source, _, _), &(destination, _, _)) = (path.hops.first()?, path.hops.last()?);
        Some(Packet {
            source,
            destination,
            path: ForwardingPath::from_path(path, expiry),
            payload_len,
        })
    }

    /// Total wire size: common header (24) + address headers (2×12) +
    /// path header + payload.
    pub fn wire_size(&self) -> u64 {
        24 + 24 + self.path.wire_size() + u64::from(self.payload_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::combine::EndToEndPath;
    use scion_types::{Asn, Duration, IfId, Isd};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn path() -> EndToEndPath {
        EndToEndPath {
            hops: vec![
                (ia(1), IfId::NONE, IfId(1)),
                (ia(2), IfId(1), IfId(2)),
                (ia(3), IfId(1), IfId::NONE),
            ],
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn pcfs_from_combined_path() {
        let p = Packet::along(&path(), t(100), 512);
        assert_eq!(p.source, ia(1));
        assert_eq!(p.destination, ia(3));
        assert_eq!(p.path.hops.len(), 3);
        assert_eq!(p.path.current, 0);
        assert!(!p.path.at_destination());
        // Every hop field is MAC-valid under its own AS key.
        for (owner, hf) in &p.path.hops {
            assert!(hf.verify(forwarding_key(*owner)));
        }
    }

    #[test]
    fn wire_size_accounts_for_hops_and_payload() {
        let small = Packet::along(&path(), t(100), 0);
        let big = Packet::along(&path(), t(100), 1000);
        assert_eq!(big.wire_size() - small.wire_size(), 1000);
        assert_eq!(small.path.wire_size(), 8 + 3 * 20);
    }

    #[test]
    fn destination_detection() {
        let mut p = Packet::along(&path(), t(100), 0);
        p.path.current = 2;
        assert!(p.path.at_destination());
        assert_eq!(p.path.current_hop().unwrap().0, ia(3));
    }
}
