//! End-to-end packet delivery across a topology: drives every border
//! router on the path and produces SCMP errors at failures.

use std::collections::HashSet;

use scion_topology::{AsTopology, LinkIndex};
use scion_types::{IfId, SimTime};

use crate::packet::Packet;
use crate::router::{forward, ForwardAction, ForwardError};
use crate::scmp::ScmpMessage;

/// Why delivery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryError {
    /// A router dropped the packet.
    Dropped(ForwardError),
    /// The egress interface named by the hop field does not exist.
    NoSuchInterface,
    /// The next link is down; carries the SCMP message the observing
    /// border router sends back to the source (§4.1).
    LinkDown(ScmpMessage),
}

/// Walks `packet` from its source AS to its destination across `topo`,
/// treating every link in `failed_links` as down.
///
/// Returns the number of inter-domain links traversed. The packet's PCFS
/// pointer is advanced as real routers would; on failure the packet stops
/// where it was dropped.
pub fn deliver(
    topo: &AsTopology,
    packet: &mut Packet,
    failed_links: &HashSet<LinkIndex>,
    now: SimTime,
) -> Result<usize, DeliveryError> {
    let mut arrival_if = IfId::NONE; // first hop starts inside the source
    let mut cur_as = topo
        .by_address(packet.source)
        .expect("source AS exists in topology");
    let mut traversed = 0usize;

    loop {
        let local_ia = topo.node(cur_as).ia;
        match forward(packet, local_ia, arrival_if, now).map_err(DeliveryError::Dropped)? {
            ForwardAction::Deliver => return Ok(traversed),
            ForwardAction::Egress(egress) => {
                let li = topo
                    .link_by_interface(cur_as, egress)
                    .ok_or(DeliveryError::NoSuchInterface)?;
                if failed_links.contains(&li) {
                    return Err(DeliveryError::LinkDown(
                        ScmpMessage::ExternalInterfaceDown {
                            at: local_ia,
                            interface: egress,
                            observed_at: now,
                        },
                    ));
                }
                let (next, _, remote_if) = topo.link(li).opposite(cur_as);
                cur_as = next;
                arrival_if = remote_if;
                traversed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::combine::EndToEndPath;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Duration, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    /// Line topology 1 - 2 - 3 and the path across it with the *actual*
    /// interface ids assigned by the topology.
    fn world() -> (AsTopology, EndToEndPath) {
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let a = topo.by_address(ia(1)).unwrap();
        let b = topo.by_address(ia(2)).unwrap();
        let c = topo.by_address(ia(3)).unwrap();
        let l_ab = topo.links_between(a, b)[0];
        let l_bc = topo.links_between(b, c)[0];
        let (_, a_if, b_in) = topo.link(l_ab).opposite(a);
        let (_, b_out, c_in) = topo.link(l_bc).opposite(b);
        let path = EndToEndPath {
            hops: vec![
                (ia(1), IfId::NONE, a_if),
                (ia(2), b_in, b_out),
                (ia(3), c_in, IfId::NONE),
            ],
        };
        (topo, path)
    }

    #[test]
    fn delivers_across_two_links() {
        let (topo, path) = world();
        let mut pkt = Packet::along(&path, t(100), 64);
        let hops = deliver(&topo, &mut pkt, &HashSet::new(), t(1)).unwrap();
        assert_eq!(hops, 2);
        assert!(pkt.path.at_destination() || pkt.path.current == pkt.path.hops.len());
    }

    #[test]
    fn failed_link_produces_scmp_from_observing_router() {
        let (topo, path) = world();
        let b = topo.by_address(ia(2)).unwrap();
        let c = topo.by_address(ia(3)).unwrap();
        let failed: HashSet<LinkIndex> = [topo.links_between(b, c)[0]].into_iter().collect();
        let mut pkt = Packet::along(&path, t(100), 64);
        match deliver(&topo, &mut pkt, &failed, t(1)) {
            Err(DeliveryError::LinkDown(ScmpMessage::ExternalInterfaceDown {
                at,
                interface,
                ..
            })) => {
                assert_eq!(at, ia(2), "AS 2 observes the failure");
                assert_eq!(interface, path.hops[1].2);
            }
            other => panic!("expected LinkDown, got {other:?}"),
        }
    }

    #[test]
    fn tampered_packet_dropped_mid_path() {
        let (topo, path) = world();
        let mut pkt = Packet::along(&path, t(100), 64);
        pkt.path.hops[1].1.egress = IfId(42); // tamper at hop 2
        assert_eq!(
            deliver(&topo, &mut pkt, &HashSet::new(), t(1)),
            Err(DeliveryError::Dropped(ForwardError::BadMac))
        );
        // Pointer stopped at the tampered hop.
        assert_eq!(pkt.path.current, 1);
    }

    #[test]
    fn bogus_egress_interface_detected() {
        let (topo, mut path) = world();
        path.hops[0].2 = IfId(42);
        let mut pkt = Packet::along(&path, t(100), 64);
        assert_eq!(
            deliver(&topo, &mut pkt, &HashSet::new(), t(1)),
            Err(DeliveryError::NoSuchInterface)
        );
    }
}
