//! End-to-end packet delivery across a topology: drives every border
//! router on the path and produces SCMP errors at failures.

use std::collections::HashSet;
use std::time::Instant;

use scion_telemetry::trace::TraceEvent;
use scion_telemetry::{ids, phase, Label, Telemetry};
use scion_topology::{AsTopology, LinkIndex};
use scion_types::{IfId, SimTime};

use crate::packet::Packet;
use crate::router::{forward_instrumented, ForwardAction, ForwardError};
use crate::scmp::ScmpMessage;

/// Why delivery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryError {
    /// A router dropped the packet.
    Dropped(ForwardError),
    /// The egress interface named by the hop field does not exist.
    NoSuchInterface,
    /// The next link is down; carries the SCMP message the observing
    /// border router sends back to the source (§4.1).
    LinkDown(ScmpMessage),
    /// The packet names a source AS absent from the topology — a
    /// malformed packet, not a panic (the walk cannot even start).
    UnknownSource,
}

impl DeliveryError {
    /// Stable drop-reason code, matching the `dataplane.drop.*` counters.
    pub fn reason(&self) -> &'static str {
        match self {
            DeliveryError::Dropped(e) => e.reason(),
            DeliveryError::NoSuchInterface => "no_interface",
            DeliveryError::LinkDown(_) => "link_down",
            DeliveryError::UnknownSource => "unknown_source",
        }
    }
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryError::Dropped(e) => write!(f, "dropped: {e}"),
            DeliveryError::NoSuchInterface => write!(f, "egress interface does not exist"),
            DeliveryError::LinkDown(m) => write!(f, "link down at {}", m.origin()),
            DeliveryError::UnknownSource => write!(f, "source AS not in topology"),
        }
    }
}

impl std::error::Error for DeliveryError {}

/// Walks `packet` from its source AS to its destination across `topo`,
/// treating every link in `failed_links` as down.
///
/// Returns the number of inter-domain links traversed. The packet's PCFS
/// pointer is advanced as real routers would; on failure the packet stops
/// where it was dropped.
pub fn deliver(
    topo: &AsTopology,
    packet: &mut Packet,
    failed_links: &HashSet<LinkIndex>,
    now: SimTime,
) -> Result<usize, DeliveryError> {
    deliver_instrumented(topo, packet, failed_links, now, &mut Telemetry::disabled())
}

/// [`deliver`] with observability: every border-router hop runs through
/// [`forward_instrumented`], link-failure drops emit
/// [`TraceEvent::ScmpEmitted`] plus the `scmp_sent` and `drop.link_down`
/// counters, and the whole source-to-destination walk is timed into the
/// [`phase::FWD_DELIVER`] profiler phase.
pub fn deliver_instrumented(
    topo: &AsTopology,
    packet: &mut Packet,
    failed_links: &HashSet<LinkIndex>,
    now: SimTime,
    tel: &mut Telemetry,
) -> Result<usize, DeliveryError> {
    let t0 = tel.profile.is_enabled().then(Instant::now);
    let result = deliver_walk(topo, packet, failed_links, now, tel);
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        tel.profile.record_ns(phase::FWD_DELIVER, ns);
    }
    result
}

fn deliver_walk(
    topo: &AsTopology,
    packet: &mut Packet,
    failed_links: &HashSet<LinkIndex>,
    now: SimTime,
    tel: &mut Telemetry,
) -> Result<usize, DeliveryError> {
    let mut arrival_if = IfId::NONE; // first hop starts inside the source
    let Some(mut cur_as) = topo.by_address(packet.source) else {
        // Malformed packet: no router can even start the walk. Dropped
        // with a counted reason instead of panicking.
        tel.trace_event(now, || TraceEvent::PacketDropped {
            node: u32::MAX,
            reason: "unknown_source",
        });
        tel.inc(ids::FWD_DROPPED, Label::Global, 1);
        tel.inc(ids::FWD_DROP_UNKNOWN_SOURCE, Label::Global, 1);
        return Err(DeliveryError::UnknownSource);
    };
    let mut traversed = 0usize;

    loop {
        let local_ia = topo.node(cur_as).ia;
        let node = cur_as.0;
        match forward_instrumented(packet, local_ia, node, arrival_if, now, None, tel)
            .map_err(DeliveryError::Dropped)?
        {
            ForwardAction::Deliver => return Ok(traversed),
            ForwardAction::Egress(egress) => {
                let Some(li) = topo.link_by_interface(cur_as, egress) else {
                    tel.trace_event(now, || TraceEvent::PacketDropped {
                        node,
                        reason: "no_interface",
                    });
                    tel.inc(ids::FWD_DROPPED, Label::As(node), 1);
                    tel.inc(ids::FWD_DROP_NO_INTERFACE, Label::Global, 1);
                    return Err(DeliveryError::NoSuchInterface);
                };
                if failed_links.contains(&li) {
                    // §4.1: the router observing the dead link reports back
                    // to the source via SCMP; the packet itself is lost.
                    tel.trace_event(now, || TraceEvent::ScmpEmitted {
                        node,
                        interface: egress.0,
                        kind: "external_interface_down",
                    });
                    tel.inc(ids::FWD_SCMP_SENT, Label::As(node), 1);
                    tel.trace_event(now, || TraceEvent::PacketDropped {
                        node,
                        reason: "link_down",
                    });
                    tel.inc(ids::FWD_DROPPED, Label::As(node), 1);
                    tel.inc(ids::FWD_DROP_LINK_DOWN, Label::Global, 1);
                    return Err(DeliveryError::LinkDown(
                        ScmpMessage::ExternalInterfaceDown {
                            at: local_ia,
                            interface: egress,
                            observed_at: now,
                        },
                    ));
                }
                let (next, _, remote_if) = topo.link(li).opposite(cur_as);
                cur_as = next;
                arrival_if = remote_if;
                traversed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::combine::EndToEndPath;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Duration, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    /// Line topology 1 - 2 - 3 and the path across it with the *actual*
    /// interface ids assigned by the topology.
    fn world() -> (AsTopology, EndToEndPath) {
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let a = topo.by_address(ia(1)).unwrap();
        let b = topo.by_address(ia(2)).unwrap();
        let c = topo.by_address(ia(3)).unwrap();
        let l_ab = topo.links_between(a, b)[0];
        let l_bc = topo.links_between(b, c)[0];
        let (_, a_if, b_in) = topo.link(l_ab).opposite(a);
        let (_, b_out, c_in) = topo.link(l_bc).opposite(b);
        let path = EndToEndPath {
            hops: vec![
                (ia(1), IfId::NONE, a_if),
                (ia(2), b_in, b_out),
                (ia(3), c_in, IfId::NONE),
            ],
        };
        (topo, path)
    }

    #[test]
    fn delivers_across_two_links() {
        let (topo, path) = world();
        let mut pkt = Packet::along(&path, t(100), 64);
        let hops = deliver(&topo, &mut pkt, &HashSet::new(), t(1)).unwrap();
        assert_eq!(hops, 2);
        assert!(pkt.path.at_destination() || pkt.path.current == pkt.path.hops.len());
    }

    #[test]
    fn failed_link_produces_scmp_from_observing_router() {
        let (topo, path) = world();
        let b = topo.by_address(ia(2)).unwrap();
        let c = topo.by_address(ia(3)).unwrap();
        let failed: HashSet<LinkIndex> = [topo.links_between(b, c)[0]].into_iter().collect();
        let mut pkt = Packet::along(&path, t(100), 64);
        match deliver(&topo, &mut pkt, &failed, t(1)) {
            Err(DeliveryError::LinkDown(ScmpMessage::ExternalInterfaceDown {
                at,
                interface,
                ..
            })) => {
                assert_eq!(at, ia(2), "AS 2 observes the failure");
                assert_eq!(interface, path.hops[1].2);
            }
            other => panic!("expected LinkDown, got {other:?}"),
        }
    }

    #[test]
    fn tampered_packet_dropped_mid_path() {
        let (topo, path) = world();
        let mut pkt = Packet::along(&path, t(100), 64);
        pkt.path.hops[1].1.egress = IfId(42); // tamper at hop 2
        assert_eq!(
            deliver(&topo, &mut pkt, &HashSet::new(), t(1)),
            Err(DeliveryError::Dropped(ForwardError::BadMac))
        );
        // Pointer stopped at the tampered hop.
        assert_eq!(pkt.path.current, 1);
    }

    #[test]
    fn instrumented_delivery_traces_every_hop() {
        use scion_telemetry::TelemetryConfig;

        let (topo, path) = world();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut pkt = Packet::along(&path, t(100), 64);
        deliver_instrumented(&topo, &mut pkt, &HashSet::new(), t(1), &mut tel).unwrap();

        let events: Vec<&TraceEvent> = tel.traces.records().map(|r| &r.event).collect();
        let forwarded = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PacketForwarded { .. }))
            .count();
        let delivered = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PacketDelivered { .. }))
            .count();
        assert_eq!((forwarded, delivered), (2, 1), "{events:?}");
        assert_eq!(tel.profile.stats(phase::FWD_DELIVER).unwrap().calls, 1);
        assert_eq!(tel.profile.stats(phase::FWD_FORWARD).unwrap().calls, 3);
    }

    #[test]
    fn instrumented_link_failure_emits_scmp_telemetry() {
        use scion_telemetry::TelemetryConfig;

        let (topo, path) = world();
        let b = topo.by_address(ia(2)).unwrap();
        let c = topo.by_address(ia(3)).unwrap();
        let failed: HashSet<LinkIndex> = [topo.links_between(b, c)[0]].into_iter().collect();
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let mut pkt = Packet::along(&path, t(100), 64);
        assert!(matches!(
            deliver_instrumented(&topo, &mut pkt, &failed, t(1), &mut tel),
            Err(DeliveryError::LinkDown(_))
        ));

        let kinds: Vec<String> = tel
            .traces
            .records()
            .filter_map(|r| match &r.event {
                TraceEvent::ScmpEmitted { node, kind, .. } => Some(format!("{node}:{kind}")),
                TraceEvent::PacketDropped { reason, .. } => Some(format!("drop:{reason}")),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                format!("{}:external_interface_down", b.0),
                "drop:link_down".to_string()
            ]
        );
        let scmp: u64 = tel
            .metrics
            .counters()
            .filter(|(i, _, _)| *i == ids::FWD_SCMP_SENT)
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(scmp, 1);
    }

    #[test]
    fn bogus_egress_interface_detected() {
        let (topo, mut path) = world();
        path.hops[0].2 = IfId(42);
        let mut pkt = Packet::along(&path, t(100), 64);
        assert_eq!(
            deliver(&topo, &mut pkt, &HashSet::new(), t(1)),
            Err(DeliveryError::NoSuchInterface)
        );
    }
}
