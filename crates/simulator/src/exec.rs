//! Deterministic parallel execution for epoch-batched event processing.
//!
//! The discrete-event kernel itself is strictly serial: a priority queue on
//! a virtual clock. What *can* run in parallel is the per-AS work inside a
//! causally-closed batch of simultaneous-enough events — PCB signature
//! verification, store admission, candidate scoring. [`WorkerPool`] runs
//! such work across OS threads while guaranteeing that the *observable
//! result is a pure function of the input order*, never of thread count or
//! scheduling:
//!
//! * work items are claimed from a shared atomic cursor, so any thread may
//!   process any item;
//! * each thread tags results with the item's input index;
//! * [`WorkerPool::run_ordered`] sorts the combined results by that index
//!   before returning.
//!
//! With `threads == 1` no threads are spawned at all — the closure runs
//! inline, which keeps single-threaded runs cheap and makes the
//! one-thread configuration the natural reference for determinism tests.
//!
//! Randomness discipline: worker shards must never share a stateful rng
//! (draw order would depend on scheduling). [`substream`] derives an
//! independent, stable ChaCha stream per shard index from a base seed;
//! cross-shard draws are then reproducible by construction.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A pool of worker threads executing batch work deterministically.
///
/// The pool is a configuration object (thread count), not a set of live
/// threads: each [`run_ordered`](WorkerPool::run_ordered) call spawns
/// scoped threads for the duration of one batch. Batches in a simulation
/// epoch are large (hundreds to thousands of deliveries), so spawn cost is
/// amortized; in exchange, borrowing local state into the closure needs no
/// `'static` bound.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with the given parallelism. `threads` is clamped to
    /// at least 1.
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads used per batch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `work` to every item and returns the results **in input
    /// order**, regardless of which thread processed which item or in what
    /// order threads finished.
    ///
    /// `work` receives `(input_index, item)`. It must be a pure function of
    /// its arguments plus state it synchronizes itself; the pool guarantees
    /// ordering of the *results*, not of the *side effects* (side-effecting
    /// work belongs in the caller's serial merge step).
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| work(i, item))
                .collect();
        }

        let n = items.len();
        // Move items into per-slot options so threads can take ownership of
        // the ones they claim without cloning.
        let slots: Vec<std::sync::Mutex<Option<T>>> = items
            .into_iter()
            .map(|t| std::sync::Mutex::new(Some(t)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n);

        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let item = slots[idx]
                            .lock()
                            .expect("worker slot poisoned")
                            .take()
                            .expect("slot claimed twice");
                        local.push((idx, work(idx, item)));
                    }
                    local
                }));
            }
            for h in handles {
                tagged.extend(h.join().expect("worker thread panicked"));
            }
        });

        // Completion order differs run to run; input order does not.
        tagged.sort_by_key(|(idx, _)| *idx);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

/// Derives an independent, deterministic ChaCha stream for shard `shard`
/// from `seed`.
///
/// Uses a splitmix-style finalizer so adjacent shard indices give unrelated
/// streams; the mapping depends only on `(seed, shard)`, never on thread
/// scheduling, so any shard can re-derive its stream on any thread.
pub fn substream(seed: u64, shard: u64) -> ChaCha12Rng {
    let mut z = seed ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ChaCha12Rng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn run_ordered_preserves_input_order_across_thread_counts() {
        let input: Vec<u64> = (0..500).collect();
        let reference: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let got = pool.run_ordered(input.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x + 1
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_ordered_is_stable_under_adversarial_completion_order() {
        // Early items sleep the longest, so with >1 thread the *completion*
        // order is roughly the reverse of the input order. The output must
        // still come back in input order.
        let input: Vec<usize> = (0..64).collect();
        let pool = WorkerPool::new(8);
        let got = pool.run_ordered(input.clone(), |i, x| {
            let delay_us = (64 - i as u64) * 50;
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            x * 10
        });
        let want: Vec<usize> = input.iter().map(|x| x * 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_ordered_handles_empty_and_single_item_batches() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.run_ordered(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.run_ordered(vec![41u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        let mut a1 = substream(7, 0);
        let mut a2 = substream(7, 0);
        let mut b = substream(7, 1);
        let draws_a1: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let draws_a2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let draws_b: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a1, draws_a2);
        assert_ne!(draws_a1, draws_b);
    }
}
