//! Seeded per-link stochastic loss and latency jitter.
//!
//! The fault plane ([`crate::fault`]) models *hard* failures: a link is
//! either usable or dark. Real control planes additionally see *lossy*
//! delivery — individual messages dropped by congestion or transient
//! errors, and per-message latency variation — which is exactly the regime
//! the SCIONLab measurement study reports for the deployed network. The
//! [`LossModel`] is the stochastic overlay for that regime: every
//! transmission draws a loss coin and a latency jitter from one seeded
//! ChaCha stream, so a run is byte-identical across invocations with the
//! same seed (the simulation's event order is deterministic, hence so is
//! the draw order), while different seeds decorrelate the loss pattern.
//!
//! The two overlays compose: the fault plane decides whether a link can
//! carry anything at all; the loss model decides whether *this* message
//! survives the link it was sent on.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use scion_topology::{AsTopology, LinkIndex};
use scion_types::Duration;

/// Outcome of one transmission attempt under the loss model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transmission {
    /// The message survives; add `jitter` to its propagation delay.
    Delivered {
        /// Extra latency to add to the propagation delay.
        jitter: Duration,
    },
    /// The message is lost on the wire.
    Lost,
}

/// Per-link stochastic loss probability plus bounded latency jitter.
#[derive(Clone, Debug)]
pub struct LossModel {
    /// Loss probability per link, in parts per million.
    loss_ppm: Vec<u32>,
    /// Upper bound of the uniform per-message latency jitter.
    jitter_max: Duration,
    rng: ChaCha12Rng,
    transmissions: u64,
    losses: u64,
}

/// Parts-per-million denominator.
const PPM: u32 = 1_000_000;

fn to_ppm(probability: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&probability),
        "loss probability {probability} outside [0, 1]"
    );
    (probability * PPM as f64).round() as u32
}

impl LossModel {
    /// Uniform loss probability and jitter bound on every link of `topo`,
    /// deterministically seeded.
    pub fn uniform(
        topo: &AsTopology,
        probability: f64,
        jitter_max: Duration,
        seed: u64,
    ) -> LossModel {
        LossModel {
            loss_ppm: vec![to_ppm(probability); topo.num_links()],
            jitter_max,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x1055_C0DE),
            transmissions: 0,
            losses: 0,
        }
    }

    /// The lossless model: every transmission is delivered with zero
    /// jitter (rng draws still happen, so enabling loss later in a run's
    /// configuration does not perturb unrelated draw streams).
    pub fn ideal(topo: &AsTopology, seed: u64) -> LossModel {
        Self::uniform(topo, 0.0, Duration::ZERO, seed)
    }

    /// Overrides one link's loss probability (e.g. a dead access link with
    /// probability 1.0, or a known-flaky transit link).
    pub fn set_link_loss(&mut self, link: LinkIndex, probability: f64) {
        self.loss_ppm[link.as_usize()] = to_ppm(probability);
    }

    /// The configured loss probability of `link`.
    pub fn link_loss(&self, link: LinkIndex) -> f64 {
        self.loss_ppm[link.as_usize()] as f64 / PPM as f64
    }

    /// Draws the fate of one transmission over `link`.
    ///
    /// Both the loss coin and the jitter are drawn on every call — also
    /// for lost messages — so the stream position after a call depends
    /// only on the *number* of prior calls, never on their outcomes.
    pub fn transmit(&mut self, link: LinkIndex) -> Transmission {
        self.transmissions += 1;
        let coin = self.rng.gen_range(0..PPM);
        let jitter_us = if self.jitter_max.is_zero() {
            0
        } else {
            self.rng.gen_range(0..=self.jitter_max.as_micros())
        };
        if coin < self.loss_ppm[link.as_usize()] {
            self.losses += 1;
            Transmission::Lost
        } else {
            Transmission::Delivered {
                jitter: Duration::from_micros(jitter_us),
            }
        }
    }

    /// Total transmission attempts drawn so far.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Transmissions that came up lost.
    pub fn losses(&self) -> u64 {
        self.losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};

    fn topo() -> AsTopology {
        topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ])
    }

    #[test]
    fn same_seed_same_fates() {
        let t = topo();
        let mut a = LossModel::uniform(&t, 0.3, Duration::from_millis(5), 7);
        let mut b = LossModel::uniform(&t, 0.3, Duration::from_millis(5), 7);
        for i in 0..500 {
            let li = LinkIndex((i % 2) as u32);
            assert_eq!(a.transmit(li), b.transmit(li));
        }
        assert_eq!(a.losses(), b.losses());
        assert!(a.losses() > 0, "30% loss over 500 draws must drop some");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let t = topo();
        let mut a = LossModel::uniform(&t, 0.5, Duration::ZERO, 1);
        let mut b = LossModel::uniform(&t, 0.5, Duration::ZERO, 2);
        let fates_a: Vec<_> = (0..64).map(|_| a.transmit(LinkIndex(0))).collect();
        let fates_b: Vec<_> = (0..64).map(|_| b.transmit(LinkIndex(0))).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let t = topo();
        let mut m = LossModel::uniform(&t, 0.1, Duration::ZERO, 42);
        for _ in 0..10_000 {
            m.transmit(LinkIndex(0));
        }
        let rate = m.losses() as f64 / m.transmissions() as f64;
        assert!((0.07..0.13).contains(&rate), "measured loss rate {rate}");
    }

    #[test]
    fn ideal_model_never_drops_and_never_jitters() {
        let t = topo();
        let mut m = LossModel::ideal(&t, 9);
        for _ in 0..200 {
            assert_eq!(
                m.transmit(LinkIndex(1)),
                Transmission::Delivered {
                    jitter: Duration::ZERO
                }
            );
        }
        assert_eq!(m.losses(), 0);
    }

    #[test]
    fn per_link_override_kills_one_link_only() {
        let t = topo();
        let mut m = LossModel::uniform(&t, 0.0, Duration::ZERO, 3);
        m.set_link_loss(LinkIndex(0), 1.0);
        assert_eq!(m.link_loss(LinkIndex(0)), 1.0);
        for _ in 0..50 {
            assert_eq!(m.transmit(LinkIndex(0)), Transmission::Lost);
            assert!(matches!(
                m.transmit(LinkIndex(1)),
                Transmission::Delivered { .. }
            ));
        }
    }

    #[test]
    fn jitter_stays_within_bound() {
        let t = topo();
        let cap = Duration::from_millis(3);
        let mut m = LossModel::uniform(&t, 0.0, cap, 11);
        for _ in 0..500 {
            match m.transmit(LinkIndex(0)) {
                Transmission::Delivered { jitter } => assert!(jitter <= cap),
                Transmission::Lost => unreachable!("loss probability is 0"),
            }
        }
    }
}
