//! The event queue and virtual clock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use scion_topology::{AsIndex, LinkIndex};
use scion_types::{Duration, SimTime};

/// An event delivered to protocol logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event<M> {
    /// A node-local timer fired. `kind` is protocol-defined (e.g. "beaconing
    /// interval tick" vs "MRAI expiry").
    Timer {
        /// The node whose timer fired.
        node: AsIndex,
        /// Protocol-defined discriminator.
        kind: u32,
    },
    /// A message arrived at `to` over `via` (the link it traversed).
    Deliver {
        /// The receiving node.
        to: AsIndex,
        /// The link the message traversed.
        via: LinkIndex,
        /// The message itself.
        msg: M,
    },
}

/// Internal heap entry. Ordering is `(time, seq)`: FIFO among simultaneous
/// events, which is what makes runs deterministic irrespective of heap
/// internals.
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event engine: a virtual clock plus a deterministic event
/// queue. Generic over the protocol's message type `M`.
///
/// The engine exposes `pop_until` rather than an internal run loop so that
/// protocol state and the engine can be borrowed independently:
///
/// ```ignore
/// while let Some((now, ev)) = engine.pop_until(end) {
///     protocol.handle(now, ev, &mut engine);
/// }
/// ```
pub struct Engine<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    delivered: u64,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<M> Engine<M> {
    /// Creates an engine with the clock at `t = 0`.
    pub fn new() -> Engine<M> {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            delivered: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event, or 0).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (for progress reporting and tests).
    pub fn events_processed(&self) -> u64 {
        self.delivered
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a protocol timer at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the virtual past — time travel would silently
    /// corrupt causality, so it is rejected loudly.
    pub fn schedule_timer(&mut self, at: SimTime, node: AsIndex, kind: u32) {
        self.push(at, Event::Timer { node, kind });
    }

    /// Schedules a timer `after` from now.
    pub fn schedule_timer_after(&mut self, after: Duration, node: AsIndex, kind: u32) {
        self.push(self.now + after, Event::Timer { node, kind });
    }

    /// Sends `msg` to `to` over link `via`, arriving after `latency`.
    pub fn send(&mut self, latency: Duration, to: AsIndex, via: LinkIndex, msg: M) {
        self.push(self.now + latency, Event::Deliver { to, via, msg });
    }

    /// Sends `msg` arriving at the absolute time `at`.
    ///
    /// Used by the batched (epoch) execution path, where a send's causal
    /// origin is an event earlier in the epoch than the engine clock: the
    /// arrival time must be computed from the *originating* event's
    /// timestamp, not from `now`. `at` must still not lie in the past.
    pub fn send_at(&mut self, at: SimTime, to: AsIndex, via: LinkIndex, msg: M) {
        self.push(at, Event::Deliver { to, via, msg });
    }

    /// Batched event insertion: schedules every `(at, to, via, msg)` tuple
    /// in one call.
    ///
    /// Semantically identical to calling [`Engine::send_at`] in iteration
    /// order (sequence numbers are assigned in order, so FIFO ties behave
    /// the same), but the heap is extended in one pass, which lets
    /// `BinaryHeap` batch its sift work when an epoch merge inserts a large
    /// propagation fan-out.
    pub fn send_batch(
        &mut self,
        items: impl IntoIterator<Item = (SimTime, AsIndex, LinkIndex, M)>,
    ) {
        let now = self.now;
        let seq = &mut self.seq;
        self.queue
            .extend(items.into_iter().map(|(at, to, via, msg)| {
                assert!(at >= now, "cannot schedule into the virtual past");
                let s = *seq;
                *seq += 1;
                Reverse(Scheduled {
                    at,
                    seq: s,
                    event: Event::Deliver { to, via, msg },
                })
            }));
    }

    fn push(&mut self, at: SimTime, event: Event<M>) {
        assert!(at >= self.now, "cannot schedule into the virtual past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the next event if it occurs strictly before `deadline`,
    /// advancing the clock to it. Returns `None` when the queue is empty or
    /// the next event is at/after the deadline (the clock then stays put, so
    /// a subsequent run segment can continue).
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, Event<M>)> {
        match self.queue.peek() {
            Some(Reverse(s)) if s.at < deadline => {
                let Reverse(s) = self.queue.pop().expect("peeked");
                self.now = s.at;
                self.delivered += 1;
                Some((s.at, s.event))
            }
            _ => None,
        }
    }

    /// Timestamp of the next queued event, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(s)| s.at)
    }

    /// Drains one *epoch batch*: consecutive events strictly before
    /// `deadline` for which `shardable` holds, in exact `(time, seq)` pop
    /// order, appended to `out`. Returns how many events were popped.
    ///
    /// Two properties make this safe for parallel execution layers:
    ///
    /// * If the queue's head event is **not** shardable, it is popped alone
    ///   (a batch of one), so the caller can handle globally-ordered events
    ///   (telemetry sampling, fault injection, retransmit bookkeeping)
    ///   serially at their exact position in the event order.
    /// * Otherwise only the maximal shardable prefix is drained: the batch
    ///   boundary depends solely on queue contents and `deadline`, never on
    ///   thread count, so batch decomposition is deterministic.
    ///
    /// The clock advances to the last popped event, exactly as if the events
    /// had been popped one by one with [`Engine::pop_until`].
    pub fn pop_batch_until(
        &mut self,
        deadline: SimTime,
        mut shardable: impl FnMut(&Event<M>) -> bool,
        out: &mut Vec<(SimTime, Event<M>)>,
    ) -> usize {
        let mut popped = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at >= deadline {
                break;
            }
            let head_shardable = shardable(&head.event);
            if !head_shardable && popped > 0 {
                break;
            }
            let Reverse(s) = self.queue.pop().expect("peeked");
            self.now = s.at;
            self.delivered += 1;
            out.push((s.at, s.event));
            popped += 1;
            if !head_shardable {
                break; // non-shardable events travel as a batch of one
            }
        }
        popped
    }

    /// Removes queued `Deliver` events matching `drop`, returning how many
    /// were cancelled. Timers are never touched.
    ///
    /// This is the in-flight drop path for link failures: a message already
    /// "on the wire" when its link goes down must not arrive. The heap is
    /// drained and rebuilt; since the retained set is independent of drain
    /// order and entries keep their `(at, seq)` keys, determinism is
    /// preserved exactly.
    pub fn cancel_deliveries(
        &mut self,
        mut drop: impl FnMut(AsIndex, LinkIndex, &M) -> bool,
    ) -> u64 {
        let mut kept = Vec::with_capacity(self.queue.len());
        let mut cancelled = 0u64;
        for Reverse(s) in self.queue.drain() {
            let matches = match &s.event {
                Event::Deliver { to, via, msg } => drop(*to, *via, msg),
                Event::Timer { .. } => false,
            };
            if matches {
                cancelled += 1;
            } else {
                kept.push(Reverse(s));
            }
        }
        self.queue = BinaryHeap::from(kept);
        cancelled
    }

    /// Pops the next event unconditionally.
    ///
    /// Implemented directly rather than as `pop_until(u64::MAX)`: the
    /// deadline is exclusive, so delegating would silently drop an event
    /// scheduled at exactly `u64::MAX` microseconds.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        let Reverse(s) = self.queue.pop()?;
        self.now = s.at;
        self.delivered += 1;
        Some((s.at, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_timer(t(30), AsIndex(3), 0);
        e.schedule_timer(t(10), AsIndex(1), 0);
        e.schedule_timer(t(20), AsIndex(2), 0);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop())
            .map(|(_, ev)| match ev {
                Event::Timer { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..100u32 {
            e.schedule_timer(t(5), AsIndex(i), 0);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop())
            .map(|(_, ev)| match ev {
                Event::Timer { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_deadline_and_clock() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_timer(t(10), AsIndex(0), 0);
        e.schedule_timer(t(50), AsIndex(0), 1);
        assert!(e.pop_until(t(50)).is_some());
        assert_eq!(e.now(), t(10));
        // Next event is exactly at the deadline -> excluded.
        assert!(e.pop_until(t(50)).is_none());
        assert_eq!(e.now(), t(10));
        assert!(e.pop_until(t(51)).is_some());
        assert_eq!(e.now(), t(50));
    }

    #[test]
    fn send_applies_latency_from_now() {
        let mut e: Engine<&'static str> = Engine::new();
        e.schedule_timer(t(100), AsIndex(0), 0);
        let (_, _) = e.pop().unwrap(); // clock -> 100
        e.send(Duration::from_micros(25), AsIndex(1), LinkIndex(9), "hi");
        let (at, ev) = e.pop().unwrap();
        assert_eq!(at, t(125));
        assert_eq!(
            ev,
            Event::Deliver {
                to: AsIndex(1),
                via: LinkIndex(9),
                msg: "hi"
            }
        );
    }

    #[test]
    #[should_panic(expected = "virtual past")]
    fn scheduling_into_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_timer(t(100), AsIndex(0), 0);
        e.pop();
        e.schedule_timer(t(50), AsIndex(0), 0);
    }

    #[test]
    fn pop_returns_event_at_maximum_representable_time() {
        // Regression: `pop` used to delegate to `pop_until(u64::MAX)`, whose
        // exclusive deadline dropped an event at exactly u64::MAX µs.
        let mut e: Engine<u32> = Engine::new();
        e.schedule_timer(t(u64::MAX), AsIndex(7), 0);
        let (at, ev) = e.pop().expect("event at u64::MAX must pop");
        assert_eq!(at, t(u64::MAX));
        assert_eq!(
            ev,
            Event::Timer {
                node: AsIndex(7),
                kind: 0
            }
        );
        assert_eq!(e.now(), t(u64::MAX));
        assert!(e.pop().is_none());
    }

    #[test]
    fn cancel_deliveries_drops_in_flight_messages_deterministically() {
        // Regression for the mid-flight failure case: messages already sent
        // over a link that then fails must be dropped, not delivered, and
        // the surviving events must keep their exact order.
        let mut e: Engine<&'static str> = Engine::new();
        e.send(Duration::from_micros(10), AsIndex(1), LinkIndex(0), "dead");
        e.send(Duration::from_micros(10), AsIndex(1), LinkIndex(1), "live");
        e.send(Duration::from_micros(20), AsIndex(2), LinkIndex(0), "dead2");
        e.schedule_timer(t(15), AsIndex(0), 3);

        let cancelled = e.cancel_deliveries(|_, via, _| via == LinkIndex(0));
        assert_eq!(cancelled, 2);
        assert_eq!(e.pending(), 2);

        let (at1, ev1) = e.pop().unwrap();
        assert_eq!(at1, t(10));
        assert_eq!(
            ev1,
            Event::Deliver {
                to: AsIndex(1),
                via: LinkIndex(1),
                msg: "live"
            }
        );
        let (at2, ev2) = e.pop().unwrap();
        assert_eq!(at2, t(15));
        assert!(matches!(ev2, Event::Timer { kind: 3, .. }));
        assert!(e.pop().is_none());
    }

    #[test]
    fn cancel_deliveries_preserves_fifo_among_survivors() {
        let mut e: Engine<usize> = Engine::new();
        for i in 0..50usize {
            let via = LinkIndex((i % 2) as u32);
            e.send(Duration::from_micros(7), AsIndex(0), via, i);
        }
        e.cancel_deliveries(|_, via, _| via == LinkIndex(1));
        let got: Vec<usize> = std::iter::from_fn(|| e.pop())
            .map(|(_, ev)| match ev {
                Event::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        let expected: Vec<usize> = (0..50).filter(|i| i % 2 == 0).collect();
        assert_eq!(got, expected, "survivors keep scheduling (FIFO) order");
    }

    #[test]
    fn counts_processed_and_pending() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_timer(t(1), AsIndex(0), 0);
        e.schedule_timer(t(2), AsIndex(0), 0);
        assert_eq!(e.pending(), 2);
        e.pop();
        assert_eq!(e.events_processed(), 1);
        assert_eq!(e.pending(), 1);
    }

    proptest! {
        /// Whatever order events are scheduled in, they pop sorted by time,
        /// and ties preserve the scheduling order.
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut e: Engine<usize> = Engine::new();
            for (i, &us) in times.iter().enumerate() {
                e.send(Duration::from_micros(us), AsIndex(0), LinkIndex(0), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().zip(0..).collect();
            expected.sort_by_key(|&(us, i)| (us, i));
            let got: Vec<(u64, usize)> = std::iter::from_fn(|| e.pop())
                .map(|(at, ev)| match ev {
                    Event::Deliver { msg, .. } => (at.as_micros(), msg),
                    _ => unreachable!(),
                })
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}
