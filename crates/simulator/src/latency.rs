//! Per-link propagation latency model.
//!
//! The paper's overhead results are byte counts, not latency measurements,
//! but event *ordering* still matters (e.g. whether a PCB propagated this
//! interval reaches the neighbour before that neighbour's own interval timer
//! fires). We assign every inter-domain link a deterministic pseudo-random
//! propagation delay in a realistic inter-domain range and keep it fixed for
//! the run.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use scion_topology::{AsTopology, LinkIndex};
use scion_types::Duration;

/// Immutable per-link one-way propagation delays.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    delays: Vec<Duration>,
}

impl LatencyModel {
    /// Default lower bound: 1 ms (metro cross-connect).
    pub const DEFAULT_MIN: Duration = Duration::from_millis(1);
    /// Default upper bound: 80 ms (intercontinental).
    pub const DEFAULT_MAX: Duration = Duration::from_millis(80);

    /// Draws a delay for every link of `topo` uniformly from
    /// `[min, max]`, deterministically from `seed`.
    pub fn uniform(topo: &AsTopology, seed: u64, min: Duration, max: Duration) -> LatencyModel {
        assert!(min <= max);
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x1a7e_4c1e);
        let delays = (0..topo.num_links())
            .map(|_| Duration::from_micros(rng.gen_range(min.as_micros()..=max.as_micros())))
            .collect();
        LatencyModel { delays }
    }

    /// Uniform model with the default inter-domain range.
    pub fn default_for(topo: &AsTopology, seed: u64) -> LatencyModel {
        Self::uniform(topo, seed, Self::DEFAULT_MIN, Self::DEFAULT_MAX)
    }

    /// Constant delay on every link (useful in unit tests).
    pub fn constant(topo: &AsTopology, delay: Duration) -> LatencyModel {
        LatencyModel {
            delays: vec![delay; topo.num_links()],
        }
    }

    /// One-way propagation delay of `link`.
    pub fn delay(&self, link: LinkIndex) -> Duration {
        self.delays[link.as_usize()]
    }

    /// The smallest delay of any link ([`Duration::ZERO`] for a linkless
    /// topology). This bounds the conservative lookahead of parallel
    /// execution: events less than `min_delay` apart cannot causally
    /// influence each other through the network.
    pub fn min_delay(&self) -> Duration {
        self.delays.iter().copied().min().unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{generate_internet, GeneratorConfig};

    #[test]
    fn deterministic_per_seed() {
        let t = generate_internet(&GeneratorConfig::small(100, 1));
        let a = LatencyModel::default_for(&t, 7);
        let b = LatencyModel::default_for(&t, 7);
        let c = LatencyModel::default_for(&t, 8);
        let all_eq_ab = t.link_indices().all(|li| a.delay(li) == b.delay(li));
        let any_ne_ac = t.link_indices().any(|li| a.delay(li) != c.delay(li));
        assert!(all_eq_ab);
        assert!(any_ne_ac);
    }

    #[test]
    fn delays_within_bounds() {
        let t = generate_internet(&GeneratorConfig::small(100, 1));
        let m = LatencyModel::uniform(&t, 1, Duration::from_millis(5), Duration::from_millis(10));
        for li in t.link_indices() {
            let d = m.delay(li);
            assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(10));
        }
    }

    #[test]
    fn constant_model() {
        let t = generate_internet(&GeneratorConfig::small(50, 1));
        let m = LatencyModel::constant(&t, Duration::from_millis(3));
        assert!(t
            .link_indices()
            .all(|li| m.delay(li) == Duration::from_millis(3)));
    }
}
