//! The fault plane: virtual-time fault events and the link-state overlay.
//!
//! The topology multigraph ([`scion_topology::AsTopology`]) stays immutable
//! for the lifetime of a run; dynamics are expressed as an *overlay*: a
//! [`FaultSchedule`] of virtual-time [`LinkFault`] events applied to a
//! [`LinkState`], which the protocol drivers consult before sending on (or
//! delivering over) a link. This mirrors how real deployments behave —
//! the inter-domain link set changes on the order of hours, while link
//! *availability* churns on the order of minutes (the SCIONLab measurement
//! study reports frequent path-set changes in the live network).
//!
//! Faults name links by their dense [`LinkIndex`], which is stable across
//! runs for a given topology construction order (see
//! `AsTopology::links_between`), so schedules written against one run
//! replay bit-identically on the next.

use scion_topology::{AsIndex, AsTopology, LinkIndex};
use scion_types::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// One fault-plane event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkFault {
    /// The link goes dark: no deliveries until a matching [`LinkFault::LinkUp`].
    LinkDown(LinkIndex),
    /// The link recovers.
    LinkUp(LinkIndex),
    /// The whole AS goes dark: every incident link becomes unusable.
    AsDown(AsIndex),
    /// The AS recovers.
    AsUp(AsIndex),
    /// Latency degradation: the link's propagation delay is multiplied by
    /// `factor_pct`/100 (e.g. 300 = 3× slower) until [`LinkFault::Restore`].
    Degrade {
        /// The degraded link.
        link: LinkIndex,
        /// Delay multiplier in percent (e.g. 300 = 3× slower).
        factor_pct: u32,
    },
    /// Clears a latency degradation.
    Restore(LinkIndex),
}

impl LinkFault {
    /// The link this fault names, if it is link-scoped.
    pub fn link(&self) -> Option<LinkIndex> {
        match *self {
            LinkFault::LinkDown(li) | LinkFault::LinkUp(li) | LinkFault::Restore(li) => Some(li),
            LinkFault::Degrade { link, .. } => Some(link),
            LinkFault::AsDown(_) | LinkFault::AsUp(_) => None,
        }
    }
}

/// A deterministic, time-sorted script of fault events.
///
/// Events at equal times keep their insertion order (stable), so a
/// schedule replays identically however it was assembled.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<(SimTime, LinkFault)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builds a schedule from events in any order (stable-sorted by time).
    pub fn from_events(mut events: Vec<(SimTime, LinkFault)>) -> FaultSchedule {
        events.sort_by_key(|&(t, _)| t);
        FaultSchedule { events }
    }

    /// Inserts an event, keeping the schedule sorted; an event at an
    /// already-present time goes after the existing ones (stable).
    pub fn push(&mut self, at: SimTime, fault: LinkFault) {
        let pos = self.events.partition_point(|&(t, _)| t <= at);
        self.events.insert(pos, (at, fault));
    }

    /// Appends another schedule's events (re-sorting stably).
    pub fn merge(&mut self, other: &FaultSchedule) {
        self.events.extend(other.events.iter().copied());
        self.events.sort_by_key(|&(t, _)| t);
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[(SimTime, LinkFault)] {
        &self.events
    }

    /// Distinct firing times, ascending (for scheduling driver timers).
    pub fn fire_times(&self) -> Vec<SimTime> {
        let mut out: Vec<SimTime> = self.events.iter().map(|&(t, _)| t).collect();
        out.dedup();
        out
    }

    /// Times of the `LinkDown`/`AsDown` events, ascending (the instants a
    /// reconvergence measurement anchors on).
    pub fn down_times(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter(|(_, f)| matches!(f, LinkFault::LinkDown(_) | LinkFault::AsDown(_)))
            .map(|&(t, _)| t)
            .collect()
    }

    /// Number of scheduled fault transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The mutable availability overlay over an immutable topology.
///
/// A link is *usable* iff the link itself is up **and** both endpoint ASes
/// are up. Degradations multiply the propagation delay without affecting
/// usability.
#[derive(Clone, Debug)]
pub struct LinkState {
    /// Endpoints per link (captured once; the topology stays immutable).
    ends: Vec<(AsIndex, AsIndex)>,
    link_up: Vec<bool>,
    as_up: Vec<bool>,
    /// Latency multiplier per link, percent (100 = nominal).
    degrade_pct: Vec<u32>,
    /// Up→down transitions per link (for accounting and flap analysis).
    link_downs: Vec<u64>,
    /// Total state-changing events applied.
    transitions: u64,
}

impl LinkState {
    /// Everything-up state for `topo`.
    pub fn new(topo: &AsTopology) -> LinkState {
        LinkState {
            ends: topo
                .link_indices()
                .map(|li| {
                    let l = topo.link(li);
                    (l.a, l.b)
                })
                .collect(),
            link_up: vec![true; topo.num_links()],
            as_up: vec![true; topo.num_ases()],
            degrade_pct: vec![100; topo.num_links()],
            link_downs: vec![0; topo.num_links()],
            transitions: 0,
        }
    }

    /// Applies one fault event. Returns `true` if any state changed (a
    /// `LinkDown` on an already-down link is a no-op, etc.).
    pub fn apply(&mut self, fault: &LinkFault) -> bool {
        let changed = match *fault {
            LinkFault::LinkDown(li) => {
                let was = std::mem::replace(&mut self.link_up[li.as_usize()], false);
                if was {
                    self.link_downs[li.as_usize()] += 1;
                }
                was
            }
            LinkFault::LinkUp(li) => !std::mem::replace(&mut self.link_up[li.as_usize()], true),
            LinkFault::AsDown(a) => std::mem::replace(&mut self.as_up[a.as_usize()], false),
            LinkFault::AsUp(a) => !std::mem::replace(&mut self.as_up[a.as_usize()], true),
            LinkFault::Degrade { link, factor_pct } => {
                let prev =
                    std::mem::replace(&mut self.degrade_pct[link.as_usize()], factor_pct.max(1));
                prev != factor_pct.max(1)
            }
            LinkFault::Restore(li) => {
                std::mem::replace(&mut self.degrade_pct[li.as_usize()], 100) != 100
            }
        };
        if changed {
            self.transitions += 1;
        }
        changed
    }

    /// True when messages can traverse `li` right now.
    #[inline]
    pub fn link_usable(&self, li: LinkIndex) -> bool {
        let (a, b) = self.ends[li.as_usize()];
        self.link_up[li.as_usize()] && self.as_up[a.as_usize()] && self.as_up[b.as_usize()]
    }

    /// True when the AS itself is up.
    #[inline]
    pub fn as_usable(&self, a: AsIndex) -> bool {
        self.as_up[a.as_usize()]
    }

    /// The propagation delay of `li` under the current degradation.
    #[inline]
    pub fn degraded_delay(&self, li: LinkIndex, base: Duration) -> Duration {
        let pct = self.degrade_pct[li.as_usize()];
        if pct == 100 {
            base
        } else {
            Duration::from_micros(base.as_micros().saturating_mul(pct as u64) / 100)
        }
    }

    /// Number of links currently unusable (down themselves or via an AS
    /// outage).
    pub fn links_down(&self) -> usize {
        (0..self.ends.len())
            .filter(|&i| !self.link_usable(LinkIndex(i as u32)))
            .count()
    }

    /// Up→down transitions recorded for `li`.
    pub fn downs_of(&self, li: LinkIndex) -> u64 {
        self.link_downs[li.as_usize()]
    }

    /// Total state-changing fault events applied so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};

    fn two_links() -> AsTopology {
        topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 2)])
    }

    #[test]
    fn schedule_is_time_sorted_and_stable() {
        let mut s = FaultSchedule::new();
        let t = |us| SimTime::from_micros(us);
        s.push(t(50), LinkFault::LinkUp(LinkIndex(0)));
        s.push(t(10), LinkFault::LinkDown(LinkIndex(0)));
        s.push(t(50), LinkFault::LinkDown(LinkIndex(1)));
        s.push(t(10), LinkFault::AsDown(AsIndex(3)));
        let evs = s.events();
        assert_eq!(evs[0], (t(10), LinkFault::LinkDown(LinkIndex(0))));
        assert_eq!(evs[1], (t(10), LinkFault::AsDown(AsIndex(3))));
        assert_eq!(evs[2], (t(50), LinkFault::LinkUp(LinkIndex(0))));
        assert_eq!(evs[3], (t(50), LinkFault::LinkDown(LinkIndex(1))));
        assert_eq!(s.fire_times(), vec![t(10), t(50)]);
        assert_eq!(s.down_times(), vec![t(10), t(10), t(50)]);
    }

    #[test]
    fn from_events_sorts() {
        let t = |us| SimTime::from_micros(us);
        let s = FaultSchedule::from_events(vec![
            (t(9), LinkFault::LinkDown(LinkIndex(1))),
            (t(3), LinkFault::LinkDown(LinkIndex(0))),
        ]);
        assert_eq!(s.events()[0].0, t(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn link_state_tracks_usability_and_transitions() {
        let topo = two_links();
        let mut ls = LinkState::new(&topo);
        let l0 = LinkIndex(0);
        assert!(ls.link_usable(l0));

        assert!(ls.apply(&LinkFault::LinkDown(l0)));
        assert!(!ls.link_usable(l0));
        assert!(ls.link_usable(LinkIndex(1)), "parallel link unaffected");
        // Idempotent: downing a down link changes nothing.
        assert!(!ls.apply(&LinkFault::LinkDown(l0)));
        assert_eq!(ls.downs_of(l0), 1);

        assert!(ls.apply(&LinkFault::LinkUp(l0)));
        assert!(ls.link_usable(l0));
        assert_eq!(ls.transitions(), 2);
    }

    #[test]
    fn as_outage_kills_every_incident_link() {
        let topo = two_links();
        let mut ls = LinkState::new(&topo);
        let a = AsIndex(0);
        assert!(ls.apply(&LinkFault::AsDown(a)));
        assert!(!ls.link_usable(LinkIndex(0)));
        assert!(!ls.link_usable(LinkIndex(1)));
        assert_eq!(ls.links_down(), 2);
        // Link-level state survives the outage: links come back with the AS.
        assert!(ls.apply(&LinkFault::AsUp(a)));
        assert!(ls.link_usable(LinkIndex(0)));
    }

    #[test]
    fn degradation_scales_delay_without_affecting_usability() {
        let topo = two_links();
        let mut ls = LinkState::new(&topo);
        let l0 = LinkIndex(0);
        let base = Duration::from_millis(10);
        assert_eq!(ls.degraded_delay(l0, base), base);
        ls.apply(&LinkFault::Degrade {
            link: l0,
            factor_pct: 350,
        });
        assert!(ls.link_usable(l0));
        assert_eq!(ls.degraded_delay(l0, base), Duration::from_millis(35));
        ls.apply(&LinkFault::Restore(l0));
        assert_eq!(ls.degraded_delay(l0, base), base);
    }
}
