//! Traffic accounting: message and byte counters per interface.
//!
//! The paper's §5.2 measures "the amount of PCB traffic sent on each
//! inter-domain interface" and Appendix B's Fig. 9 reports per-interface
//! bandwidth. This module provides exactly that: a counter per
//! `(AS, interface)` plus aggregate views.

use std::collections::HashMap;

use scion_topology::AsIndex;
use scion_types::{Duration, IfId};

/// A monotone message/byte counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    /// Messages recorded.
    pub messages: u64,
    /// Total payload bytes across those messages.
    pub bytes: u64,
}

impl Counter {
    /// Records one message of `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }

    /// Average bandwidth over `window` in bytes per second.
    pub fn bytes_per_second(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / window.as_secs_f64()
    }
}

/// Per-`(AS, egress interface)` traffic counters.
///
/// "Sent" accounting: the counter belongs to the interface the message left
/// through, matching the paper's measurement point.
#[derive(Clone, Debug, Default)]
pub struct InterfaceTraffic {
    counters: HashMap<(AsIndex, IfId), Counter>,
    node_totals: HashMap<AsIndex, Counter>,
}

impl InterfaceTraffic {
    /// An empty traffic ledger.
    pub fn new() -> InterfaceTraffic {
        InterfaceTraffic::default()
    }

    /// Records a message of `bytes` sent by `node` out of `ifid`.
    pub fn record_sent(&mut self, node: AsIndex, ifid: IfId, bytes: u64) {
        self.counters.entry((node, ifid)).or_default().record(bytes);
        self.node_totals.entry(node).or_default().record(bytes);
    }

    /// The counter for one interface (zero if nothing was ever sent).
    pub fn interface(&self, node: AsIndex, ifid: IfId) -> Counter {
        self.counters
            .get(&(node, ifid))
            .copied()
            .unwrap_or_default()
    }

    /// Total traffic sent by one AS over all its interfaces. O(1): the
    /// aggregate is maintained in `record_sent` rather than recomputed by
    /// scanning every interface counter.
    pub fn node_total(&self, node: AsIndex) -> Counter {
        self.node_totals.get(&node).copied().unwrap_or_default()
    }

    /// Grand total across the whole network.
    pub fn grand_total(&self) -> Counter {
        let mut total = Counter::default();
        for &c in self.counters.values() {
            total.merge(c);
        }
        total
    }

    /// All per-interface counters, sorted by `(AS, interface)` for
    /// deterministic iteration.
    pub fn per_interface(&self) -> Vec<((AsIndex, IfId), Counter)> {
        let mut rows: Vec<_> = self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort_by_key(|&((n, i), _)| (n, i));
        rows
    }

    /// Number of interfaces that ever sent traffic.
    pub fn active_interfaces(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_merges() {
        let mut c = Counter::default();
        c.record(100);
        c.record(50);
        assert_eq!(
            c,
            Counter {
                messages: 2,
                bytes: 150
            }
        );
        let mut d = Counter::default();
        d.record(10);
        d.merge(c);
        assert_eq!(
            d,
            Counter {
                messages: 3,
                bytes: 160
            }
        );
    }

    #[test]
    fn bandwidth_over_window() {
        let mut c = Counter::default();
        c.record(4_000);
        assert!((c.bytes_per_second(Duration::from_secs(2)) - 2_000.0).abs() < 1e-9);
        assert_eq!(c.bytes_per_second(Duration::ZERO), 0.0);
    }

    #[test]
    fn per_interface_accounting() {
        let mut t = InterfaceTraffic::new();
        t.record_sent(AsIndex(1), IfId(1), 100);
        t.record_sent(AsIndex(1), IfId(1), 100);
        t.record_sent(AsIndex(1), IfId(2), 30);
        t.record_sent(AsIndex(2), IfId(1), 7);
        assert_eq!(t.interface(AsIndex(1), IfId(1)).bytes, 200);
        assert_eq!(t.interface(AsIndex(1), IfId(2)).messages, 1);
        assert_eq!(t.interface(AsIndex(9), IfId(9)), Counter::default());
        assert_eq!(t.node_total(AsIndex(1)).bytes, 230);
        assert_eq!(t.grand_total().bytes, 237);
        assert_eq!(t.active_interfaces(), 3);
    }

    #[test]
    fn node_total_matches_interface_sum() {
        let mut t = InterfaceTraffic::new();
        for i in 0..10u16 {
            for rep in 0..3u64 {
                t.record_sent(AsIndex(4), IfId(i), 100 + rep);
            }
        }
        t.record_sent(AsIndex(5), IfId(0), 1);
        let mut summed = Counter::default();
        for ((n, i), _) in t.per_interface() {
            if n == AsIndex(4) {
                summed.merge(t.interface(n, i));
            }
        }
        assert_eq!(t.node_total(AsIndex(4)), summed);
        assert_eq!(t.node_total(AsIndex(6)), Counter::default());
    }

    #[test]
    fn per_interface_iteration_is_sorted() {
        let mut t = InterfaceTraffic::new();
        t.record_sent(AsIndex(2), IfId(1), 1);
        t.record_sent(AsIndex(1), IfId(2), 1);
        t.record_sent(AsIndex(1), IfId(1), 1);
        let keys: Vec<_> = t.per_interface().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                (AsIndex(1), IfId(1)),
                (AsIndex(1), IfId(2)),
                (AsIndex(2), IfId(1)),
            ]
        );
    }
}
