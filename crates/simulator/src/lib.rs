//! Deterministic discrete-event simulation kernel.
//!
//! Fills the role ns-3 plays in the paper (§5.1): ordering control-plane
//! events on a virtual clock, delivering messages across inter-domain links
//! with propagation latency, and counting every byte sent per interface.
//!
//! Design notes (following the event-driven, no-surprises ethos of the
//! networking guides): the kernel is a plain priority queue — no threads, no
//! async runtime, no wall-clock anywhere. Identical inputs and seeds replay
//! identical event sequences, which makes every experiment in this
//! repository reproducible bit for bit. Protocol logic lives in the caller
//! (beaconing, BGP): the kernel only schedules, delivers, and counts.
//!
//! ```
//! use scion_simulator::{Engine, Event};
//! use scion_types::{Duration, SimTime};
//! use scion_topology::AsIndex;
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_timer(SimTime::ZERO + Duration::from_secs(1), AsIndex(0), 7);
//! while let Some((t, ev)) = engine.pop_until(SimTime::ZERO + Duration::from_secs(10)) {
//!     match ev {
//!         Event::Timer { node, kind } => assert_eq!((node, kind), (AsIndex(0), 7)),
//!         Event::Deliver { .. } => unreachable!(),
//!     }
//!     assert_eq!(t, SimTime::ZERO + Duration::from_secs(1));
//! }
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod latency;
pub mod loss;

pub use accounting::{Counter, InterfaceTraffic};
pub use engine::{Engine, Event};
pub use exec::{substream, WorkerPool};
pub use fault::{FaultSchedule, LinkFault, LinkState};
pub use latency::LatencyModel;
pub use loss::{LossModel, Transmission};
