//! Shared experiment/test fixtures: small worlds with known min-cuts and
//! the beaconing → path-server plumbing to populate them.
//!
//! These helpers started life duplicated across integration tests
//! (`tests/failure_injection.rs`) and are shared here so the resilience
//! experiment, the chaos unit tests, and the integration tests all build
//! identical worlds.

use scion_beaconing::driver::run_intra_isd_beaconing;
use scion_beaconing::BeaconingConfig;
use scion_crypto::trc::TrustStore;
use scion_pathserver::server::PathServer;
use scion_proto::segment::{PathSegment, SegmentType};
use scion_topology::{AsTopology, Relationship};
use scion_types::{Asn, Duration, IfId, Isd, IsdAsn, SimTime};

/// One core providing to two dual-homed leaves (each leaf has two
/// parallel links to the core, so its min cut is 2).
pub fn dual_homed_world() -> AsTopology {
    let mut topo = AsTopology::new();
    let core = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(1)));
    topo.set_core(core, true);
    for n in [10u64, 11] {
        let leaf = topo.add_as(IsdAsn::new(Isd(1), Asn::from_u64(n)));
        topo.add_link(core, leaf, Relationship::AProviderOfB);
        topo.add_link(core, leaf, Relationship::AProviderOfB);
    }
    topo
}

/// Runs intra-ISD beaconing for `duration`, then terminates the beacons
/// stored at `leaf_ia` into down-segments (as the leaf would register them
/// with its core path server). Returns the segments plus the trust store
/// that signed them.
pub fn segments_for(
    topo: &AsTopology,
    leaf_ia: IsdAsn,
    duration: Duration,
    seed: u64,
) -> (Vec<PathSegment>, TrustStore) {
    let now = SimTime::ZERO + duration;
    let trust = TrustStore::bootstrap(
        topo.as_indices()
            .map(|i| (topo.node(i).ia, topo.node(i).core)),
        now + Duration::from_days(1),
    );
    let out = run_intra_isd_beaconing(topo, &BeaconingConfig::default(), duration, seed);
    let leaf = topo.by_address(leaf_ia).unwrap();
    let srv = out.server(leaf).unwrap();
    let core_ia = IsdAsn::new(Isd(1), Asn::from_u64(1));
    let segs = srv
        .store()
        .beacons_of(core_ia, now)
        .into_iter()
        .map(|b| {
            let pcb = b
                .pcb
                .extend(leaf_ia, b.ingress_if, IfId::NONE, vec![], &trust);
            PathSegment::from_terminated_pcb(SegmentType::Down, pcb)
        })
        .collect();
    (segs, trust)
}

/// Registers every down-segment at `ps` (a core path server), as of the
/// epoch — testkit segments are freshly minted, so nothing is GC-eligible.
pub fn register_down_segments(ps: &mut PathServer, segs: &[PathSegment]) {
    for s in segs {
        ps.register_down_segment(s.clone(), SimTime::ZERO).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_homed_world_has_two_leaves_with_min_cut_two() {
        let topo = dual_homed_world();
        assert_eq!(topo.num_ases(), 3);
        assert_eq!(topo.num_links(), 4);
        let core = topo
            .by_address(IsdAsn::new(Isd(1), Asn::from_u64(1)))
            .unwrap();
        assert!(topo.node(core).core);
        for n in [10u64, 11] {
            let leaf = topo
                .by_address(IsdAsn::new(Isd(1), Asn::from_u64(n)))
                .unwrap();
            assert_eq!(topo.links_between(core, leaf).len(), 2);
        }
    }

    #[test]
    fn segments_cover_the_dual_homing() {
        let topo = dual_homed_world();
        let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
        let (segs, _) = segments_for(&topo, leaf_ia, Duration::from_hours(1), 1);
        assert!(segs.len() >= 2, "dual-homing yields >= 2 down-segments");
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        register_down_segments(&mut ps, &segs);
        assert_eq!(
            ps.lookup_down(leaf_ia, SimTime::ZERO + Duration::from_hours(1))
                .unwrap()
                .len(),
            segs.len()
        );
    }
}
