//! `scion-chaos`: deterministic fault injection and link churn for the
//! whole simulation stack.
//!
//! The paper argues SCION's path awareness makes the control plane resilient
//! to link failures: the diversity-based beaconing algorithm (§4.2)
//! maximizes link-disjointness precisely so that "in case of a link
//! failure, endpoints can quickly switch to an alternative path". This
//! crate provides the machinery to *test* that claim under a reproducible
//! fault trace shared by every control plane:
//!
//! * the fault plane itself lives in `scion-simulator`
//!   ([`FaultSchedule`], [`LinkFault`], [`LinkState`]) so the protocol
//!   drivers can consult it without depending on this crate;
//! * [`churn`] — a seeded MTBF/MTTR alternating-renewal churn model
//!   ([`ChurnModel`]) distinguishing core from leaf links;
//! * [`schedule`] — the [`Script`] builder for explicit fault scripts
//!   (outage windows, AS blackouts, latency brown-outs, flap bursts);
//! * [`revoke`] — the path-server reaction ([`revoke_for_fault`]): §4.1
//!   revocation of affected segments, ledger-accounted and traced;
//! * [`analysis`] — reconvergence times and liveness summaries over the
//!   probe curves the chaos-aware drivers emit;
//! * [`testkit`] — shared fixtures (dual-homed worlds, segment plumbing)
//!   used by both the integration tests and the resilience experiment.
//!
//! The chaos-aware protocol drivers themselves live with their protocols:
//! `scion_beaconing::driver::run_core_beaconing_chaos` and
//! `scion_bgp::engine::simulate_origin_chaos` both replay the same
//! [`FaultSchedule`], which is what makes the resilience experiment an
//! apples-to-apples comparison.

pub mod analysis;
pub mod churn;
pub mod revoke;
pub mod schedule;
pub mod testkit;

pub use analysis::{mean_fraction, mean_reconvergence, min_fraction, reconvergence_times};
pub use churn::{ChurnModel, LinkClassParams};
pub use revoke::{restore_lapsed_revocations, revoke_for_fault, revoke_for_scmp, FaultRevocation};
pub use schedule::Script;

// Re-export the fault plane and both drivers' chaos types, so experiment
// code needs a single import.
pub use scion_beaconing::{ChaosConfig, ChaosReport, ReachProbe};
pub use scion_bgp::{BgpChaosConfig, BgpChaosReport, BgpProbe};
pub use scion_simulator::{FaultSchedule, LinkFault, LinkState};
