//! The path-server reaction to a fault: revocation of affected segments
//! (§4.1 "Path Revocations") driven from a [`LinkFault`].
//!
//! The simulator's fault plane names links by dense [`LinkIndex`]; the
//! path-server layer names them by wire-level [`LinkId`](scion_types::LinkId). This module
//! bridges the two, delegating the accounting to
//! [`scion_pathserver::revocation`] semantics and emitting
//! [`TraceEvent::PathInvalidated`] per invalidated destination.

use scion_dataplane::scmp::ScmpMessage;
use scion_pathserver::ledger::{Component, Ledger, Scope};
use scion_pathserver::revocation::{segment_uses_link, RevocationTable};
use scion_pathserver::server::PathServer;
use scion_proto::wire;
use scion_simulator::LinkFault;
use scion_telemetry::{ids, Label, Telemetry, TraceEvent};
use scion_topology::{AsTopology, LinkIndex};
use scion_types::{Duration, SimTime};

/// Accounting of one fault's revocation reaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRevocation {
    /// Segments dropped from the path server.
    pub segments_revoked: usize,
    /// SCMP notifications issued to endpoints with active flows.
    pub scmp_notifications: u64,
}

/// Reacts to `fault` at a core path server: a `LinkDown` revokes every
/// stored segment crossing that link; an `AsDown` does so for every link
/// incident to the AS. Up/degrade events are no-ops (recovery is handled
/// by re-beaconing and re-registration, not by the revocation machinery).
///
/// Per failed link with at least one affected segment, the ledger records
/// one intra-ISD revocation message plus `active_flows_per_link` global
/// SCMP notifications — the same accounting as
/// [`scion_pathserver::revocation::revoke_segments`].
pub fn revoke_for_fault(
    ps: &mut PathServer,
    topo: &AsTopology,
    fault: &LinkFault,
    active_flows_per_link: u64,
    ledger: &mut Ledger,
    now: SimTime,
    tel: &mut Telemetry,
) -> FaultRevocation {
    let mut total = FaultRevocation::default();
    let links: Vec<LinkIndex> = match *fault {
        LinkFault::LinkDown(li) => vec![li],
        LinkFault::AsDown(a) => topo.node(a).links.clone(),
        _ => return total,
    };
    for li in links {
        let r = revoke_link(ps, topo, li, active_flows_per_link, ledger, now, tel);
        total.segments_revoked += r.segments_revoked;
        total.scmp_notifications += r.scmp_notifications;
    }
    total
}

/// The §4.1 closed loop, driven from the data plane: a border router's
/// SCMP `ExternalInterfaceDown` reaches the responsible core path server,
/// which revokes every stored segment crossing the reported link — with a
/// TTL via `table`, so a spurious revocation heals itself and a genuinely
/// dead link is kept revoked by subsequent SCMP-triggered renewals.
///
/// Accounting matches [`revoke_for_fault`]: one intra-ISD revocation
/// message plus `active_flows` global SCMP notifications when at least
/// one segment was pulled, `CHAOS_PATHS_INVALIDATED` /
/// [`TraceEvent::PathInvalidated`] per revoked terminal, and additionally
/// the `pathserver.revocations` / `pathserver.segments_revoked` counters.
/// A message naming an unknown AS or interface is a counted no-op
/// (`pathserver.rejected_ops`), never a panic.
#[allow(clippy::too_many_arguments)]
pub fn revoke_for_scmp(
    ps: &mut PathServer,
    table: &mut RevocationTable,
    topo: &AsTopology,
    msg: &ScmpMessage,
    ttl: Duration,
    active_flows: u64,
    ledger: &mut Ledger,
    now: SimTime,
    tel: &mut Telemetry,
) -> FaultRevocation {
    let Some(near) = msg.link_end() else {
        // InvalidPath and friends carry no revocable link.
        return FaultRevocation::default();
    };
    let li = topo
        .by_address(near.ia)
        .and_then(|idx| topo.link_by_interface(idx, near.ifid));
    let Some(li) = li else {
        tel.inc(ids::PS_REJECTED_OPS, Label::Global, 1);
        return FaultRevocation::default();
    };
    let failed = topo.link_id(li);

    let mut terminals = Vec::new();
    let segments_revoked = {
        let mut seen = Vec::new();
        let n = table.revoke_with_ttl_observed(ps, failed, now, ttl, &mut seen);
        terminals.extend(seen);
        n
    };
    tel.inc(ids::PS_REVOCATIONS, Label::Global, 1);
    if segments_revoked == 0 {
        return FaultRevocation::default();
    }
    tel.inc(
        ids::PS_SEGMENTS_REVOKED,
        Label::Global,
        segments_revoked as u64,
    );

    ledger.record(
        Component::PathRevocation,
        Scope::IntraIsd,
        wire::SCMP_REVOCATION,
    );
    ledger.record_event(Component::PathRevocation, now);
    for _ in 0..active_flows {
        ledger.record(
            Component::PathRevocation,
            Scope::Global,
            wire::SCMP_REVOCATION,
        );
    }

    let node = topo
        .by_address(ps.isd_asn())
        .map(|i| i.0)
        .unwrap_or(u32::MAX);
    tel.inc(
        ids::CHAOS_PATHS_INVALIDATED,
        Label::Global,
        segments_revoked as u64,
    );
    for origin in terminals {
        tel.trace_event(now, || TraceEvent::PathInvalidated {
            node,
            origin,
            link: li.0,
        });
    }
    FaultRevocation {
        segments_revoked,
        scmp_notifications: active_flows,
    }
}

/// Reinstates every revocation in `table` that has lapsed by `now`,
/// counting restored segments into `pathserver.segments_restored`.
/// Returns how many segments went back into the lookup stores.
pub fn restore_lapsed_revocations(
    ps: &mut PathServer,
    table: &mut RevocationTable,
    now: SimTime,
    tel: &mut Telemetry,
) -> usize {
    let restored = table.restore_due(ps, now);
    if restored > 0 {
        tel.inc(ids::PS_SEGMENTS_RESTORED, Label::Global, restored as u64);
    }
    restored
}

fn revoke_link(
    ps: &mut PathServer,
    topo: &AsTopology,
    li: LinkIndex,
    active_flows: u64,
    ledger: &mut Ledger,
    now: SimTime,
    tel: &mut Telemetry,
) -> FaultRevocation {
    let failed = topo.link_id(li);
    let mut terminals = Vec::new();
    let segments_revoked = ps.deregister_where(|s| {
        let hit = segment_uses_link(s, failed);
        if hit {
            terminals.push(s.terminal());
        }
        hit
    });
    if segments_revoked == 0 {
        // Nothing registered crossed the link: the observing AS has
        // nothing to revoke, so no message goes out.
        return FaultRevocation::default();
    }

    // One intra-ISD revocation message to the core PS, plus per-flow
    // global SCMP notifications (mirrors revocation::revoke_segments).
    ledger.record(
        Component::PathRevocation,
        Scope::IntraIsd,
        wire::SCMP_REVOCATION,
    );
    ledger.record_event(Component::PathRevocation, now);
    for _ in 0..active_flows {
        ledger.record(
            Component::PathRevocation,
            Scope::Global,
            wire::SCMP_REVOCATION,
        );
    }

    let node = topo
        .by_address(ps.isd_asn())
        .map(|i| i.0)
        .unwrap_or(u32::MAX);
    tel.inc(
        ids::CHAOS_PATHS_INVALIDATED,
        Label::Global,
        segments_revoked as u64,
    );
    for origin in terminals {
        tel.trace_event(now, || TraceEvent::PathInvalidated {
            node,
            origin,
            link: li.0,
        });
    }
    FaultRevocation {
        segments_revoked,
        scmp_notifications: active_flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{dual_homed_world, register_down_segments, segments_for};
    use scion_types::{Asn, Duration, Isd, IsdAsn};

    #[test]
    fn link_down_revokes_crossing_segments_and_traces() {
        let topo = dual_homed_world();
        let duration = Duration::from_hours(1);
        let now = SimTime::ZERO + duration;
        let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
        let (segs, _) = segments_for(&topo, leaf_ia, duration, 1);
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        register_down_segments(&mut ps, &segs);

        let leaf = topo.by_address(leaf_ia).unwrap();
        let li = topo.node(leaf).links[0];
        let mut ledger = Ledger::new();
        let mut tel = Telemetry::new(scion_telemetry::TelemetryConfig::default());
        let r = revoke_for_fault(
            &mut ps,
            &topo,
            &LinkFault::LinkDown(li),
            3,
            &mut ledger,
            now,
            &mut tel,
        );
        assert!(r.segments_revoked >= 1);
        assert_eq!(r.scmp_notifications, 3);
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
            1
        );
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::Global),
            3
        );
        assert_eq!(
            tel.metrics
                .counter(ids::CHAOS_PATHS_INVALIDATED, Label::Global),
            r.segments_revoked as u64
        );
        assert_eq!(tel.traces.len(), r.segments_revoked);
        // The other leaf's segments survive.
        let other = IsdAsn::new(Isd(1), Asn::from_u64(11));
        let (other_segs, _) = segments_for(&topo, other, duration, 1);
        let mut ps2 = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        register_down_segments(&mut ps2, &other_segs);
        let r2 = revoke_for_fault(
            &mut ps2,
            &topo,
            &LinkFault::LinkDown(li),
            0,
            &mut ledger,
            now,
            &mut tel,
        );
        assert_eq!(r2.segments_revoked, 0, "unrelated leaf untouched");
    }

    #[test]
    fn as_down_revokes_across_all_incident_links() {
        let topo = dual_homed_world();
        let duration = Duration::from_hours(1);
        let now = SimTime::ZERO + duration;
        let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
        let (segs, _) = segments_for(&topo, leaf_ia, duration, 2);
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        register_down_segments(&mut ps, &segs);

        let leaf = topo.by_address(leaf_ia).unwrap();
        let mut ledger = Ledger::new();
        let mut tel = Telemetry::disabled();
        let r = revoke_for_fault(
            &mut ps,
            &topo,
            &LinkFault::AsDown(leaf),
            0,
            &mut ledger,
            now,
            &mut tel,
        );
        assert_eq!(r.segments_revoked, segs.len(), "whole min cut gone");
        assert!(ps.lookup_down(leaf_ia, now).unwrap().is_empty());
    }

    #[test]
    fn scmp_drives_ttl_revocation_and_restoration() {
        // The closed loop: dataplane SCMP → PS revocation (parked with a
        // TTL) → restoration once the revocation lapses unrenewed.
        let topo = dual_homed_world();
        let duration = Duration::from_hours(6);
        let leaf_ia = IsdAsn::new(Isd(1), Asn::from_u64(10));
        let (segs, _) = segments_for(&topo, leaf_ia, duration, 1);
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        register_down_segments(&mut ps, &segs);
        let registered = ps.lookup_down(leaf_ia, SimTime::ZERO).unwrap().len();

        // A border router at the leaf's first link reports it down.
        let leaf = topo.by_address(leaf_ia).unwrap();
        let li = topo.node(leaf).links[0];
        let failed = topo.link_id(li);
        let msg = ScmpMessage::ExternalInterfaceDown {
            at: failed.lo().ia,
            interface: failed.lo().ifid,
            observed_at: SimTime::ZERO,
        };

        let ttl = Duration::from_secs(5);
        let mut table = RevocationTable::new();
        let mut ledger = Ledger::new();
        let mut tel = Telemetry::new(scion_telemetry::TelemetryConfig::default());
        let t0 = SimTime::ZERO + Duration::from_secs(1);
        let r = revoke_for_scmp(
            &mut ps,
            &mut table,
            &topo,
            &msg,
            ttl,
            2,
            &mut ledger,
            t0,
            &mut tel,
        );
        assert!(r.segments_revoked >= 1);
        assert!(ps.lookup_down(leaf_ia, t0).unwrap().len() < registered);
        assert_eq!(tel.metrics.counter(ids::PS_REVOCATIONS, Label::Global), 1);
        assert_eq!(
            tel.metrics.counter(ids::PS_SEGMENTS_REVOKED, Label::Global),
            r.segments_revoked as u64
        );

        // Before the TTL lapses nothing comes back …
        assert_eq!(
            restore_lapsed_revocations(&mut ps, &mut table, t0 + Duration::from_secs(4), &mut tel),
            0
        );
        // … after it, the parked segments are reinstated and counted.
        let t_restore = t0 + ttl;
        let restored = restore_lapsed_revocations(&mut ps, &mut table, t_restore, &mut tel);
        assert_eq!(restored, r.segments_revoked);
        assert_eq!(
            ps.lookup_down(leaf_ia, t_restore).unwrap().len(),
            registered
        );
        assert_eq!(
            tel.metrics
                .counter(ids::PS_SEGMENTS_RESTORED, Label::Global),
            restored as u64
        );
    }

    #[test]
    fn scmp_for_unknown_interface_is_rejected_not_fatal() {
        let topo = dual_homed_world();
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        let mut table = RevocationTable::new();
        let mut ledger = Ledger::new();
        let mut tel = Telemetry::new(scion_telemetry::TelemetryConfig::default());

        // Known AS, bogus interface.
        let msg = ScmpMessage::ExternalInterfaceDown {
            at: IsdAsn::new(Isd(1), Asn::from_u64(1)),
            interface: scion_types::IfId(9999),
            observed_at: SimTime::ZERO,
        };
        let ttl = Duration::from_secs(5);
        let r = revoke_for_scmp(
            &mut ps,
            &mut table,
            &topo,
            &msg,
            ttl,
            1,
            &mut ledger,
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(r, FaultRevocation::default());
        // Unknown AS entirely.
        let msg = ScmpMessage::ExternalInterfaceDown {
            at: IsdAsn::new(Isd(9), Asn::from_u64(99)),
            interface: scion_types::IfId(1),
            observed_at: SimTime::ZERO,
        };
        let r = revoke_for_scmp(
            &mut ps,
            &mut table,
            &topo,
            &msg,
            ttl,
            1,
            &mut ledger,
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(r, FaultRevocation::default());
        assert_eq!(tel.metrics.counter(ids::PS_REJECTED_OPS, Label::Global), 2);
        // InvalidPath never revokes.
        let msg = ScmpMessage::InvalidPath {
            at: IsdAsn::new(Isd(1), Asn::from_u64(1)),
            observed_at: SimTime::ZERO,
        };
        let r = revoke_for_scmp(
            &mut ps,
            &mut table,
            &topo,
            &msg,
            ttl,
            1,
            &mut ledger,
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(r, FaultRevocation::default());
    }

    #[test]
    fn recovery_events_are_no_ops() {
        let topo = dual_homed_world();
        let mut ps = PathServer::new(IsdAsn::new(Isd(1), Asn::from_u64(1)), true);
        let mut ledger = Ledger::new();
        let mut tel = Telemetry::disabled();
        let r = revoke_for_fault(
            &mut ps,
            &topo,
            &LinkFault::LinkUp(LinkIndex(0)),
            5,
            &mut ledger,
            SimTime::ZERO,
            &mut tel,
        );
        assert_eq!(r, FaultRevocation::default());
        assert_eq!(
            ledger.messages_at(Component::PathRevocation, Scope::IntraIsd),
            0
        );
    }
}
