//! Seeded stochastic link churn: an MTBF/MTTR renewal process per link.
//!
//! The SCIONLab deployment study observed that inter-domain *availability*
//! churns far faster than the link set itself: paths appear and disappear
//! on the order of minutes while topology changes take hours. This module
//! models that as independent alternating renewal processes — each link
//! alternates exponentially-distributed up periods (mean MTBF) and down
//! periods (mean MTTR), with core links an order of magnitude more stable
//! than leaf access links.
//!
//! Determinism: each link draws from its own `ChaCha12Rng` seeded from
//! `(run seed, LinkIndex)`, so the generated [`FaultSchedule`] is
//! byte-identical across runs and independent of iteration order.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use scion_simulator::{FaultSchedule, LinkFault};
use scion_topology::{AsTopology, LinkIndex};
use scion_types::{Duration, SimTime};

/// Mean time between failures / to repair for one link class.
#[derive(Clone, Copy, Debug)]
pub struct LinkClassParams {
    /// Mean length of an up period.
    pub mtbf: Duration,
    /// Mean length of a down period.
    pub mttr: Duration,
}

/// The two-class churn model: core↔core links vs. everything touching a
/// leaf AS.
#[derive(Clone, Copy, Debug)]
pub struct ChurnModel {
    /// Links with two core endpoints.
    pub core: LinkClassParams,
    /// Links with at least one non-core endpoint.
    pub leaf: LinkClassParams,
}

impl ChurnModel {
    /// A model scaled to a simulation window: over `sim_duration`, a core
    /// link fails about once every other run while a leaf link fails about
    /// once per run, and repairs are an order of magnitude faster than the
    /// window. This keeps tiny smoke runs and multi-hour runs equally
    /// eventful without retuning.
    pub fn scaled(sim_duration: Duration) -> ChurnModel {
        let us = sim_duration.as_micros();
        ChurnModel {
            core: LinkClassParams {
                mtbf: Duration::from_micros(us.saturating_mul(2)),
                mttr: Duration::from_micros((us / 8).max(1)),
            },
            leaf: LinkClassParams {
                mtbf: sim_duration,
                mttr: Duration::from_micros((us / 10).max(1)),
            },
        }
    }

    /// Parameters for `li` under this model.
    pub fn params_for(&self, topo: &AsTopology, li: LinkIndex) -> LinkClassParams {
        let l = topo.link(li);
        if topo.node(l.a).core && topo.node(l.b).core {
            self.core
        } else {
            self.leaf
        }
    }

    /// Generates the fault trace for every link over `[0, duration)`.
    pub fn generate(&self, topo: &AsTopology, duration: Duration, seed: u64) -> FaultSchedule {
        let horizon = duration.as_micros();
        let mut events = Vec::new();
        for li in topo.link_indices() {
            let params = self.params_for(topo, li);
            let mut rng = ChaCha12Rng::seed_from_u64(mix(seed, li.0));
            let mut t = sample_exp(&mut rng, params.mtbf);
            while t < horizon {
                events.push((SimTime::from_micros(t), LinkFault::LinkDown(li)));
                let repair = t.saturating_add(sample_exp(&mut rng, params.mttr));
                if repair >= horizon {
                    break; // stays down past the end of the run
                }
                events.push((SimTime::from_micros(repair), LinkFault::LinkUp(li)));
                t = repair.saturating_add(sample_exp(&mut rng, params.mtbf));
            }
        }
        FaultSchedule::from_events(events)
    }
}

/// Splitmix64-style mix of the run seed and a link index, so adjacent
/// links get uncorrelated streams.
fn mix(seed: u64, link: u32) -> u64 {
    let mut z = seed ^ (link as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One exponential draw with the given mean, in whole microseconds
/// (at least 1 so time always advances).
fn sample_exp(rng: &mut ChaCha12Rng, mean: Duration) -> u64 {
    let u: f64 = rng.gen(); // [0, 1)
    let x = -(1.0 - u).ln() * mean.as_micros() as f64;
    (x as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};

    fn world() -> AsTopology {
        let mut topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (1, 3, Relationship::AProviderOfB, 1),
        ]);
        for (n, core) in [(0u32, true), (1, true), (2, false)] {
            topo.set_core(scion_topology::AsIndex(n), core);
        }
        topo
    }

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let topo = world();
        let model = ChurnModel::scaled(Duration::from_hours(2));
        let a = model.generate(&topo, Duration::from_hours(2), 7);
        let b = model.generate(&topo, Duration::from_hours(2), 7);
        assert_eq!(a, b);
        let times: Vec<_> = a.events().iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn different_seeds_differ() {
        let topo = world();
        let model = ChurnModel::scaled(Duration::from_hours(2));
        let a = model.generate(&topo, Duration::from_hours(2), 7);
        let b = model.generate(&topo, Duration::from_hours(2), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn downs_and_ups_alternate_per_link() {
        let topo = world();
        let model = ChurnModel::scaled(Duration::from_hours(4));
        let sched = model.generate(&topo, Duration::from_hours(4), 3);
        assert!(!sched.is_empty(), "a multi-hour window churns");
        for li in topo.link_indices() {
            let mut expect_down = true;
            for (_, f) in sched.events() {
                match f {
                    LinkFault::LinkDown(l) if *l == li => {
                        assert!(expect_down, "two downs in a row on {li:?}");
                        expect_down = false;
                    }
                    LinkFault::LinkUp(l) if *l == li => {
                        assert!(!expect_down, "up before down on {li:?}");
                        expect_down = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn core_links_fail_less_often_than_leaf_links() {
        // One core link and one leaf link; over many seeds the leaf link
        // must accumulate at least as many failures.
        let topo = world();
        let model = ChurnModel::scaled(Duration::from_hours(1));
        let (mut core_downs, mut leaf_downs) = (0usize, 0usize);
        for seed in 0..50 {
            let sched = model.generate(&topo, Duration::from_hours(1), seed);
            for (_, f) in sched.events() {
                if let LinkFault::LinkDown(li) = f {
                    let l = topo.link(*li);
                    if topo.node(l.a).core && topo.node(l.b).core {
                        core_downs += 1;
                    } else {
                        leaf_downs += 1;
                    }
                }
            }
        }
        assert!(
            leaf_downs > core_downs,
            "leaf {leaf_downs} vs core {core_downs}"
        );
    }
}
