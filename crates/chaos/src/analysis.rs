//! Resilience-curve analysis: reconvergence times and liveness summaries
//! over the probe curves produced by the chaos-aware drivers.

use scion_types::{Duration, SimTime};

/// Tolerance when comparing liveness fractions (they are ratios of small
/// integer counts, so anything below this is numerical noise).
const EPS: f64 = 1e-9;

/// Time-to-reconverge per failure event.
///
/// For each down instant, the baseline is the liveness fraction of the
/// last probe *before* the failure (1.0 when the failure precedes every
/// probe). The reconvergence time is the delay until the first probe at or
/// after the failure whose fraction is back at the baseline; `None` means
/// the curve never recovered within the probed window.
///
/// `probes` must be time-sorted (as the drivers produce them).
pub fn reconvergence_times(probes: &[(SimTime, f64)], downs: &[SimTime]) -> Vec<Option<Duration>> {
    downs
        .iter()
        .map(|&d| {
            let baseline = probes
                .iter()
                .rev()
                .find(|&&(t, _)| t < d)
                .map(|&(_, f)| f)
                .unwrap_or(1.0);
            probes
                .iter()
                .find(|&&(t, f)| t >= d && f >= baseline - EPS)
                .map(|&(t, _)| t.since(d))
        })
        .collect()
}

/// Mean of the recovered events, or `None` when nothing recovered.
pub fn mean_reconvergence(times: &[Option<Duration>]) -> Option<Duration> {
    let recovered: Vec<Duration> = times.iter().flatten().copied().collect();
    if recovered.is_empty() {
        return None;
    }
    let sum: u64 = recovered.iter().map(|d| d.as_micros()).sum();
    Some(Duration::from_micros(sum / recovered.len() as u64))
}

/// Unweighted mean of the probe fractions (the probes are equally spaced,
/// so this equals the time average of the step curve).
pub fn mean_fraction(probes: &[(SimTime, f64)]) -> f64 {
    if probes.is_empty() {
        return 1.0;
    }
    probes.iter().map(|&(_, f)| f).sum::<f64>() / probes.len() as f64
}

/// The worst point of the curve.
pub fn min_fraction(probes: &[(SimTime, f64)]) -> f64 {
    probes.iter().map(|&(_, f)| f).fold(1.0, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn reconvergence_measures_dip_and_recovery() {
        let probes = vec![
            (t(10), 1.0),
            (t(20), 1.0),
            (t(30), 0.5), // fault at 25 dents the curve
            (t(40), 0.5),
            (t(50), 1.0), // recovered
        ];
        let times = reconvergence_times(&probes, &[t(25)]);
        assert_eq!(times, vec![Some(Duration::from_secs(25))]);
        assert_eq!(mean_reconvergence(&times), Some(Duration::from_secs(25)));
        assert_eq!(min_fraction(&probes), 0.5);
        assert!((mean_fraction(&probes) - 0.8).abs() < EPS);
    }

    #[test]
    fn unrecovered_failure_reports_none() {
        let probes = vec![(t(10), 1.0), (t(30), 0.5), (t(50), 0.5)];
        let times = reconvergence_times(&probes, &[t(20)]);
        assert_eq!(times, vec![None]);
        assert_eq!(mean_reconvergence(&times), None);
    }

    #[test]
    fn baseline_is_prefault_level_not_unity() {
        // The curve sits at 0.5 before the fault; returning to 0.5 counts
        // as reconverged even though 1.0 is never reached.
        let probes = vec![(t(10), 0.5), (t(30), 0.0), (t(40), 0.5)];
        let times = reconvergence_times(&probes, &[t(20)]);
        assert_eq!(times, vec![Some(Duration::from_secs(20))]);
    }

    #[test]
    fn multiple_downs_measured_independently() {
        let probes = vec![
            (t(10), 1.0),
            (t(20), 0.5),
            (t(30), 1.0),
            (t(40), 0.5),
            (t(60), 1.0),
        ];
        let times = reconvergence_times(&probes, &[t(15), t(35)]);
        assert_eq!(
            times,
            vec![Some(Duration::from_secs(15)), Some(Duration::from_secs(25))]
        );
    }
}
