//! Explicit fault scripts: a builder over [`FaultSchedule`] for the
//! experiment patterns that recur in tests and docs — a single outage
//! window, an AS blackout, a latency brown-out, an interface flap burst.

use scion_simulator::{FaultSchedule, LinkFault};
use scion_topology::{AsIndex, LinkIndex};
use scion_types::{Duration, SimTime};

/// Builder of an explicit fault script.
///
/// ```
/// use scion_chaos::Script;
/// use scion_topology::LinkIndex;
/// use scion_types::{Duration, SimTime};
///
/// let t = |s| SimTime::ZERO + Duration::from_secs(s);
/// let sched = Script::new()
///     .link_outage(LinkIndex(0), t(100), t(200))
///     .flap_burst(LinkIndex(1), t(300), 3, Duration::from_secs(10))
///     .build();
/// assert_eq!(sched.down_times().len(), 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Script {
    sched: FaultSchedule,
}

impl Script {
    pub fn new() -> Script {
        Script::default()
    }

    /// Takes `li` down over `[from, until)`.
    pub fn link_outage(mut self, li: LinkIndex, from: SimTime, until: SimTime) -> Script {
        self.sched.push(from, LinkFault::LinkDown(li));
        self.sched.push(until, LinkFault::LinkUp(li));
        self
    }

    /// Takes the whole AS down over `[from, until)` (every incident link
    /// becomes unusable).
    pub fn as_outage(mut self, a: AsIndex, from: SimTime, until: SimTime) -> Script {
        self.sched.push(from, LinkFault::AsDown(a));
        self.sched.push(until, LinkFault::AsUp(a));
        self
    }

    /// Multiplies `li`'s propagation delay by `factor_pct`/100 over
    /// `[from, until)`.
    pub fn degrade(
        mut self,
        li: LinkIndex,
        factor_pct: u32,
        from: SimTime,
        until: SimTime,
    ) -> Script {
        self.sched.push(
            from,
            LinkFault::Degrade {
                link: li,
                factor_pct,
            },
        );
        self.sched.push(until, LinkFault::Restore(li));
        self
    }

    /// An interface flap burst: `flaps` down/up cycles starting at
    /// `start`, one cycle per `period` (down for the first half of each
    /// period).
    pub fn flap_burst(
        mut self,
        li: LinkIndex,
        start: SimTime,
        flaps: u32,
        period: Duration,
    ) -> Script {
        let half = Duration::from_micros((period.as_micros() / 2).max(1));
        for k in 0..flaps as u64 {
            let down = start + period * k;
            self.sched.push(down, LinkFault::LinkDown(li));
            self.sched.push(down + half, LinkFault::LinkUp(li));
        }
        self
    }

    /// A raw event, for anything the shorthands don't cover.
    pub fn event(mut self, at: SimTime, fault: LinkFault) -> Script {
        self.sched.push(at, fault);
        self
    }

    /// The finished, time-sorted schedule.
    pub fn build(self) -> FaultSchedule {
        self.sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn outage_windows_sort_by_time() {
        let sched = Script::new()
            .link_outage(LinkIndex(1), t(200), t(300))
            .link_outage(LinkIndex(0), t(50), t(400))
            .build();
        let times: Vec<_> = sched.events().iter().map(|&(at, _)| at).collect();
        assert_eq!(times, vec![t(50), t(200), t(300), t(400)]);
    }

    #[test]
    fn flap_burst_alternates() {
        let sched = Script::new()
            .flap_burst(LinkIndex(2), t(100), 3, Duration::from_secs(10))
            .build();
        assert_eq!(sched.len(), 6);
        assert_eq!(sched.down_times(), vec![t(100), t(110), t(120)]);
        // Each up fires half a period after its down.
        assert_eq!(sched.events()[1].0, t(100) + Duration::from_secs(5));
    }

    #[test]
    fn as_outage_and_degrade_emit_paired_events() {
        let sched = Script::new()
            .as_outage(AsIndex(3), t(10), t(20))
            .degrade(LinkIndex(0), 300, t(15), t(25))
            .build();
        assert_eq!(sched.len(), 4);
        assert!(matches!(sched.events()[0].1, LinkFault::AsDown(AsIndex(3))));
        assert!(matches!(sched.events()[3].1, LinkFault::Restore(_)));
    }
}
