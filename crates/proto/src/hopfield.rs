//! Hop fields: the per-AS units of Packet-Carried Forwarding State.
//!
//! Paper §2.3: "The path segments contain compact hop-fields, that encode
//! information about which interfaces may be used to enter and leave an AS.
//! The hop-fields are cryptographically protected, preventing path
//! alteration." Routers verify the MAC and forward — no per-path state.
//!
//! The wire layout mirrors deployed SCION: 1 byte flags, 1 byte expiry
//! offset, 2×2 bytes interface ids, 6 bytes MAC = 12 bytes.

use serde::{Deserialize, Serialize};

use scion_crypto::hash::Hasher;
use scion_types::{IfId, SimTime};

/// A 6-byte hop-field MAC (truncated, as in deployed SCION).
pub type HopMac = [u8; 6];

/// One hop field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopField {
    /// Interface through which the beacon entered the AS
    /// ([`IfId::NONE`] at the origin of a segment).
    pub ingress: IfId,
    /// Interface through which it left ([`IfId::NONE`] at a segment's last
    /// hop until the segment is extended further).
    pub egress: IfId,
    /// Absolute expiry of this hop's forwarding authorization.
    pub expiry: SimTime,
    /// Truncated MAC binding the fields to the AS's forwarding key.
    pub mac: HopMac,
}

impl HopField {
    /// Wire size: flags(1) + exp(1) + ingress(2) + egress(2) + mac(6).
    pub const WIRE_SIZE: usize = 12;

    /// Creates a hop field MAC'd with `forwarding_key` (an AS-local secret;
    /// in deployed SCION this is the AS's hop-field key, never shared).
    pub fn new(ingress: IfId, egress: IfId, expiry: SimTime, forwarding_key: u64) -> HopField {
        let mac = Self::compute_mac(ingress, egress, expiry, forwarding_key);
        HopField {
            ingress,
            egress,
            expiry,
            mac,
        }
    }

    fn compute_mac(ingress: IfId, egress: IfId, expiry: SimTime, forwarding_key: u64) -> HopMac {
        let mut h = Hasher::new();
        h.update(b"hopfield-mac");
        h.update_u64(forwarding_key);
        h.update(&ingress.0.to_le_bytes());
        h.update(&egress.0.to_le_bytes());
        h.update_u64(expiry.as_micros());
        let mut out = [0u8; 6];
        h.finalize_into(&mut out);
        out
    }

    /// Verifies the MAC under `forwarding_key` — what a border router does
    /// per packet before forwarding.
    pub fn verify(&self, forwarding_key: u64) -> bool {
        Self::compute_mac(self.ingress, self.egress, self.expiry, forwarding_key) == self.mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::Duration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    #[test]
    fn mac_verifies_with_right_key() {
        let hf = HopField::new(IfId(1), IfId(2), t(100), 0xabc);
        assert!(hf.verify(0xabc));
    }

    #[test]
    fn mac_fails_with_wrong_key() {
        let hf = HopField::new(IfId(1), IfId(2), t(100), 0xabc);
        assert!(!hf.verify(0xabd));
    }

    #[test]
    fn mac_binds_all_fields() {
        let hf = HopField::new(IfId(1), IfId(2), t(100), 0xabc);
        let mut altered = hf;
        altered.egress = IfId(3);
        assert!(
            !altered.verify(0xabc),
            "interface alteration must be caught"
        );
        let mut altered = hf;
        altered.expiry = t(200);
        assert!(!altered.verify(0xabc), "expiry alteration must be caught");
    }

    #[test]
    fn wire_size_is_12() {
        assert_eq!(HopField::WIRE_SIZE, 12);
    }
}
