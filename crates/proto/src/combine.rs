//! End-to-end path construction from path segments.
//!
//! Paper §2.2–2.3: "Each end-to-end path consists of up to three path
//! segments: core-path, up-path, and down-path segments. … In a shortcut, a
//! path only contains an up-path and a down-path segment, which can cross
//! over at a non-core AS that is common to both paths. Peering links can be
//! added to up- or down-path segments" — a peering shortcut is valid "if
//! both up- and down-path segments contain the same peering link".
//!
//! [`combine_paths`] implements the general three-segment join;
//! [`shortcut_path`] the common-AS crossover; [`peering_path`] the
//! peering-link crossover. All return an [`EndToEndPath`]: the hop sequence
//! in travel direction with fully-resolved interfaces.

use serde::{Deserialize, Serialize};

use scion_types::{IsdAsn, LinkEnd};

use crate::segment::{PathSegment, SegmentType, TraversalHop};

/// Why a combination attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CombineError {
    /// A segment was supplied in a role its type does not allow.
    WrongSegmentType,
    /// Segment endpoints do not meet at a common AS.
    Disconnected,
    /// No common non-core AS for a shortcut.
    NoCommonAs,
    /// No matching peering link present in both segments.
    NoPeeringLink,
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::WrongSegmentType => write!(f, "segment used in wrong role"),
            CombineError::Disconnected => write!(f, "segments do not share a junction AS"),
            CombineError::NoCommonAs => write!(f, "no common non-core AS for shortcut"),
            CombineError::NoPeeringLink => write!(f, "no shared peering link"),
        }
    }
}

impl std::error::Error for CombineError {}

/// A complete forwarding path: hops in travel direction, each with the
/// interfaces used to enter and leave the AS (`IfId::NONE` at source
/// ingress and destination egress).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndToEndPath {
    pub hops: Vec<TraversalHop>,
}

impl EndToEndPath {
    /// AS-level path, source first.
    pub fn as_path(&self) -> Vec<IsdAsn> {
        self.hops.iter().map(|&(ia, _, _)| ia).collect()
    }

    /// Source AS.
    pub fn source(&self) -> IsdAsn {
        self.hops.first().expect("non-empty path").0
    }

    /// Destination AS.
    pub fn destination(&self) -> IsdAsn {
        self.hops.last().expect("non-empty path").0
    }

    /// The inter-domain links traversed, as `(near, far)` interface pairs.
    pub fn links(&self) -> Vec<(LinkEnd, LinkEnd)> {
        self.hops
            .windows(2)
            .map(|w| (LinkEnd::new(w[0].0, w[0].2), LinkEnd::new(w[1].0, w[1].1)))
            .collect()
    }

    /// Number of AS hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if the path has no hops (never produced by the combiners).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Structural sanity: no repeated AS (SCION forbids loops) and interior
    /// interfaces present.
    pub fn check(&self) -> Result<(), String> {
        let mut seen = Vec::new();
        for &(ia, _, _) in &self.hops {
            if seen.contains(&ia) {
                return Err(format!("AS {ia} repeats on path"));
            }
            seen.push(ia);
        }
        for (i, &(ia, ingress, egress)) in self.hops.iter().enumerate() {
            if i > 0 && ingress.is_none() {
                return Err(format!("hop {ia} missing ingress"));
            }
            if i + 1 < self.hops.len() && egress.is_none() {
                return Err(format!("hop {ia} missing egress"));
            }
        }
        Ok(())
    }
}

/// Glues two traversals that meet at the same AS: the junction AS appears
/// as the last hop of `a` (with egress NONE) and the first hop of `b`
/// (with ingress NONE); the merged junction hop uses `a`'s ingress and
/// `b`'s egress.
fn join(a: Vec<TraversalHop>, b: Vec<TraversalHop>) -> Result<Vec<TraversalHop>, CombineError> {
    let (&(ja, ja_in, _), &(jb, _, jb_out)) = match (a.last(), b.first()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Err(CombineError::Disconnected),
    };
    if ja != jb {
        return Err(CombineError::Disconnected);
    }
    let mut out = a;
    out.pop();
    out.push((ja, ja_in, jb_out));
    out.extend(b.into_iter().skip(1));
    Ok(out)
}

/// Orients a core segment so the traversal starts at `from`: forward if the
/// segment originates there, reversed if it terminates there.
fn orient_core(core: &PathSegment, from: IsdAsn) -> Result<Vec<TraversalHop>, CombineError> {
    if core.seg_type != SegmentType::Core {
        return Err(CombineError::WrongSegmentType);
    }
    if core.origin() == from {
        Ok(core.hops_forward())
    } else if core.terminal() == from {
        Ok(core.hops_reversed())
    } else {
        Err(CombineError::Disconnected)
    }
}

/// Combines up to three segments into an end-to-end path.
///
/// * `up` — segment whose *terminal* is the source leaf AS (an up/down
///   segment stored in beaconing direction; traversed in reverse).
///   `None` if the source is itself a core AS.
/// * `core` — core segment connecting the two ISD cores; `None` for
///   intra-ISD paths whose up and down segments meet at the same core AS.
/// * `down` — segment whose terminal is the destination leaf; `None` if
///   the destination is a core AS.
///
/// At least one segment must be given; junction ASes must match.
pub fn combine_paths(
    up: Option<&PathSegment>,
    core: Option<&PathSegment>,
    down: Option<&PathSegment>,
) -> Result<EndToEndPath, CombineError> {
    let mut acc: Option<Vec<TraversalHop>> = None;

    if let Some(u) = up {
        if u.seg_type == SegmentType::Core {
            return Err(CombineError::WrongSegmentType);
        }
        acc = Some(u.hops_reversed());
    }
    if let Some(c) = core {
        let hops = match &acc {
            Some(a) => orient_core(c, a.last().expect("non-empty").0)?,
            None => {
                if c.seg_type != SegmentType::Core {
                    return Err(CombineError::WrongSegmentType);
                }
                c.hops_forward()
            }
        };
        acc = Some(match acc {
            Some(a) => join(a, hops)?,
            None => hops,
        });
    }
    if let Some(d) = down {
        if d.seg_type == SegmentType::Core {
            return Err(CombineError::WrongSegmentType);
        }
        let hops = d.hops_forward();
        acc = Some(match acc {
            Some(a) => join(a, hops)?,
            None => hops,
        });
    }
    let hops = acc.ok_or(CombineError::Disconnected)?;
    let path = EndToEndPath { hops };
    path.check().map_err(|_| CombineError::Disconnected)?;
    Ok(path)
}

/// Builds a shortcut path: up and down segments crossing over at a common
/// non-core AS, avoiding the core entirely (§2.3).
///
/// Picks the crossover closest to the leaves (the latest common AS in the
/// up traversal), which yields the shortest shortcut.
pub fn shortcut_path(up: &PathSegment, down: &PathSegment) -> Result<EndToEndPath, CombineError> {
    if up.seg_type == SegmentType::Core || down.seg_type == SegmentType::Core {
        return Err(CombineError::WrongSegmentType);
    }
    let up_hops = up.hops_reversed(); // source leaf first, core last
    let down_hops = down.hops_forward(); // core first, dest leaf last

    // Earliest position in the up traversal that also appears in the down
    // traversal — excluding the core origin itself (that case is a normal
    // combine, not a shortcut).
    let mut best: Option<(usize, usize)> = None;
    for (i, &(ia, _, _)) in up_hops.iter().enumerate().take(up_hops.len() - 1) {
        if let Some(j) = down_hops
            .iter()
            .skip(1)
            .position(|&(d, _, _)| d == ia)
            .map(|p| p + 1)
        {
            best = Some((i, j));
            break; // up traversal order = closest to source leaf
        }
    }
    let (i, j) = best.ok_or(CombineError::NoCommonAs)?;
    let mut hops: Vec<TraversalHop> = up_hops[..=i].to_vec();
    let cross = hops.last_mut().expect("non-empty");
    cross.2 = down_hops[j].2; // leave crossover via the down segment's egress
    hops.extend_from_slice(&down_hops[j + 1..]);
    let path = EndToEndPath { hops };
    path.check().map_err(|_| CombineError::NoCommonAs)?;
    Ok(path)
}

/// Builds a peering-shortcut path: an AS `u` on the up segment and an AS
/// `d` on the down segment connected by a peering link that **both**
/// segments advertise (§2.3). The path ascends to `u`, crosses the peering
/// link, and descends from `d`.
pub fn peering_path(up: &PathSegment, down: &PathSegment) -> Result<EndToEndPath, CombineError> {
    if up.seg_type == SegmentType::Core || down.seg_type == SegmentType::Core {
        return Err(CombineError::WrongSegmentType);
    }
    let up_hops = up.hops_reversed();
    let down_hops = down.hops_forward();

    // Search for the first matching peering pair (closest to the source).
    for (i, &(u_ia, _, _)) in up_hops.iter().enumerate() {
        let u_entry = up
            .pcb()
            .entries
            .iter()
            .find(|e| e.ia == u_ia)
            .expect("hop exists in segment");
        for upe in &u_entry.peers {
            for (j, &(d_ia, _, _)) in down_hops.iter().enumerate() {
                if upe.peer != d_ia {
                    continue;
                }
                let d_entry = down
                    .pcb()
                    .entries
                    .iter()
                    .find(|e| e.ia == d_ia)
                    .expect("hop exists in segment");
                // Require the *same physical link* advertised on both
                // sides: local/remote interface ids must cross-match.
                let matched = d_entry.peers.iter().any(|dpe| {
                    dpe.peer == u_ia
                        && dpe.peer_if == upe.hop.ingress
                        && upe.peer_if == dpe.hop.ingress
                });
                if !matched {
                    continue;
                }
                let mut hops: Vec<TraversalHop> = up_hops[..=i].to_vec();
                hops.last_mut().expect("non-empty").2 = upe.hop.ingress;
                let mut down_tail = down_hops[j..].to_vec();
                down_tail[0].1 = upe.peer_if;
                hops.extend(down_tail);
                let path = EndToEndPath { hops };
                if path.check().is_ok() {
                    return Ok(path);
                }
            }
        }
    }
    Err(CombineError::NoPeeringLink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopfield::HopField;
    use crate::pcb::{forwarding_key, Pcb, PeerEntry};
    use scion_crypto::trc::TrustStore;
    use scion_types::{Asn, Duration, IfId, Isd, SimTime};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        let mut ases = vec![];
        for isd in 1..=2u16 {
            for asn in 1..=9u64 {
                ases.push((ia(isd, asn), asn <= 2)); // AS 1,2 core per ISD
            }
        }
        TrustStore::bootstrap(ases.into_iter(), SimTime::ZERO + Duration::from_days(30))
    }

    fn seg(
        trust: &TrustStore,
        seg_type: SegmentType,
        hops: &[(IsdAsn, u16, u16)], // (ia, ingress, egress) beaconing dir
    ) -> PathSegment {
        let (first, rest) = hops.split_first().unwrap();
        let mut pcb = Pcb::originate(
            first.0,
            IfId(first.2),
            SimTime::ZERO,
            Duration::from_hours(6),
            0,
            trust,
        );
        for &(h, ing, eg) in rest {
            pcb = pcb.extend(h, IfId(ing), IfId(eg), vec![], trust);
        }
        PathSegment::from_terminated_pcb(seg_type, pcb)
    }

    #[test]
    fn three_segment_combination() {
        let tr = trust();
        // Up seg (beacon dir): core 1-1 -> leaf 1-5.
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        // Core seg: 1-1 -> 2-1.
        let core = seg(
            &tr,
            SegmentType::Core,
            &[(ia(1, 1), 0, 2), (ia(2, 1), 1, 0)],
        );
        // Down seg: core 2-1 -> leaf 2-5.
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(2, 1), 0, 2), (ia(2, 5), 1, 0)],
        );

        let path = combine_paths(Some(&up), Some(&core), Some(&down)).unwrap();
        assert_eq!(path.as_path(), vec![ia(1, 5), ia(1, 1), ia(2, 1), ia(2, 5)]);
        assert_eq!(path.source(), ia(1, 5));
        assert_eq!(path.destination(), ia(2, 5));
        path.check().unwrap();
        // Junction interfaces resolved: 1-1 entered via 1 (up), left via 2
        // (core); 2-1 entered via 1 (core), left via 2 (down).
        assert_eq!(path.hops[1], (ia(1, 1), IfId(1), IfId(2)));
        assert_eq!(path.hops[2], (ia(2, 1), IfId(1), IfId(2)));
        assert_eq!(path.links().len(), 3);
    }

    #[test]
    fn core_segment_reversal_when_needed() {
        let tr = trust();
        let up = seg(&tr, SegmentType::Up, &[(ia(2, 1), 0, 1), (ia(2, 5), 1, 0)]);
        // Core seg originated at 1-1, but source side is 2-1: must reverse.
        let core = seg(
            &tr,
            SegmentType::Core,
            &[(ia(1, 1), 0, 2), (ia(2, 1), 1, 0)],
        );
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(1, 1), 0, 3), (ia(1, 5), 1, 0)],
        );
        let path = combine_paths(Some(&up), Some(&core), Some(&down)).unwrap();
        assert_eq!(path.as_path(), vec![ia(2, 5), ia(2, 1), ia(1, 1), ia(1, 5)]);
    }

    #[test]
    fn up_only_reaches_core() {
        let tr = trust();
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        let path = combine_paths(Some(&up), None, None).unwrap();
        assert_eq!(path.as_path(), vec![ia(1, 5), ia(1, 1)]);
    }

    #[test]
    fn same_core_up_down_join() {
        let tr = trust();
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(1, 1), 0, 2), (ia(1, 6), 1, 0)],
        );
        let path = combine_paths(Some(&up), None, Some(&down)).unwrap();
        assert_eq!(path.as_path(), vec![ia(1, 5), ia(1, 1), ia(1, 6)]);
    }

    #[test]
    fn disconnected_segments_rejected() {
        let tr = trust();
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(1, 2), 0, 2), (ia(1, 6), 1, 0)],
        );
        assert_eq!(
            combine_paths(Some(&up), None, Some(&down)),
            Err(CombineError::Disconnected)
        );
    }

    #[test]
    fn wrong_role_rejected() {
        let tr = trust();
        let core = seg(
            &tr,
            SegmentType::Core,
            &[(ia(1, 1), 0, 1), (ia(1, 2), 1, 0)],
        );
        assert_eq!(
            combine_paths(Some(&core), None, None),
            Err(CombineError::WrongSegmentType)
        );
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        assert_eq!(
            combine_paths(Some(&up), Some(&up), None),
            Err(CombineError::WrongSegmentType)
        );
    }

    #[test]
    fn shortcut_at_common_as() {
        let tr = trust();
        // Up:   1-1 -> 1-4 -> 1-5 (source 1-5).
        // Down: 1-1 -> 1-4 -> 1-6 (dest 1-6). Common non-core AS: 1-4.
        let up = seg(
            &tr,
            SegmentType::Up,
            &[(ia(1, 1), 0, 1), (ia(1, 4), 1, 2), (ia(1, 5), 1, 0)],
        );
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(1, 1), 0, 3), (ia(1, 4), 3, 4), (ia(1, 6), 1, 0)],
        );
        let path = shortcut_path(&up, &down).unwrap();
        // Core AS 1-1 is avoided entirely.
        assert_eq!(path.as_path(), vec![ia(1, 5), ia(1, 4), ia(1, 6)]);
        // Crossover hop enters via the up segment and leaves via the down
        // segment's egress at 1-4.
        assert_eq!(path.hops[1], (ia(1, 4), IfId(2), IfId(4)));
    }

    #[test]
    fn shortcut_requires_common_as() {
        let tr = trust();
        let up = seg(&tr, SegmentType::Up, &[(ia(1, 1), 0, 1), (ia(1, 5), 1, 0)]);
        let down = seg(
            &tr,
            SegmentType::Down,
            &[(ia(1, 1), 0, 2), (ia(1, 6), 1, 0)],
        );
        // Only common AS is the core origin -> not a shortcut.
        assert_eq!(shortcut_path(&up, &down), Err(CombineError::NoCommonAs));
    }

    #[test]
    fn peering_shortcut_requires_link_in_both_segments() {
        let tr = trust();
        let t0 = SimTime::ZERO;
        let lifetime = Duration::from_hours(6);
        // Up segment: 1-1 -> 1-5, where 1-5 advertises a peering link to
        // 1-6 (local if 9, remote if 8).
        let peer_up = PeerEntry {
            peer: ia(1, 6),
            peer_if: IfId(8),
            hop: HopField::new(IfId(9), IfId::NONE, t0 + lifetime, forwarding_key(ia(1, 5))),
        };
        let up_pcb = Pcb::originate(ia(1, 1), IfId(1), t0, lifetime, 0, &tr).extend(
            ia(1, 5),
            IfId(1),
            IfId::NONE,
            vec![peer_up],
            &tr,
        );
        let up = PathSegment::from_terminated_pcb(SegmentType::Up, up_pcb);

        // Down segment: 1-2 -> 1-6, 1-6 advertises the same link back.
        let peer_down = PeerEntry {
            peer: ia(1, 5),
            peer_if: IfId(9),
            hop: HopField::new(IfId(8), IfId::NONE, t0 + lifetime, forwarding_key(ia(1, 6))),
        };
        let down_pcb = Pcb::originate(ia(1, 2), IfId(1), t0, lifetime, 0, &tr).extend(
            ia(1, 6),
            IfId(1),
            IfId::NONE,
            vec![peer_down],
            &tr,
        );
        let down = PathSegment::from_terminated_pcb(SegmentType::Down, down_pcb);

        let path = peering_path(&up, &down).unwrap();
        assert_eq!(path.as_path(), vec![ia(1, 5), ia(1, 6)]);
        // Crosses the peering link 1-5#9 <-> 1-6#8.
        assert_eq!(
            path.links(),
            vec![(
                LinkEnd::new(ia(1, 5), IfId(9)),
                LinkEnd::new(ia(1, 6), IfId(8)),
            )]
        );

        // A down segment *without* the reciprocal peer entry must fail.
        let down_pcb2 = Pcb::originate(ia(1, 2), IfId(1), t0, lifetime, 0, &tr).extend(
            ia(1, 6),
            IfId(1),
            IfId::NONE,
            vec![],
            &tr,
        );
        let down2 = PathSegment::from_terminated_pcb(SegmentType::Down, down_pcb2);
        assert_eq!(peering_path(&up, &down2), Err(CombineError::NoPeeringLink));
    }
}
