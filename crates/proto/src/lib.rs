//! SCION control-plane protocol model.
//!
//! Implements the artifacts of paper §2.2–2.3:
//!
//! * [`hopfield`] — the cryptographically-protected per-AS forwarding
//!   entries that make up Packet-Carried Forwarding State (PCFS);
//! * [`pcb`] — Path-segment Construction Beacons: origination, extension
//!   (append-and-sign), validation, ages/lifetimes, and the *path key*
//!   identity used by the diversity algorithm ("has this exact path been
//!   sent before?");
//! * [`segment`] — finalized path segments (up / down / core) as registered
//!   at path servers, including the up/down reversal rule;
//! * [`combine`] — end-to-end path construction from up to three segments,
//!   including the shortcut and peering-link rules of §2.3;
//! * [`wire`] — the byte-size model used by every overhead experiment.

pub mod combine;
pub mod hopfield;
pub mod pcb;
pub mod segment;
pub mod wire;

pub use combine::{combine_paths, EndToEndPath};
pub use hopfield::HopField;
pub use pcb::{AsEntry, PathKey, Pcb, PcbError, PeerEntry};
pub use segment::{PathSegment, SegmentType};
