//! Path-segment Construction Beacons (PCBs).
//!
//! Paper §2.2: a PCB is initiated by a core AS and iteratively extended:
//! "Before propagating a PCB, the beacon server appends its AS number and
//! the incoming and outgoing interface identifiers of the links connecting
//! to the neighbor ASes. Additionally, each PCB has an expiration timestamp
//! which is specified by the initiator." Every appended AS entry is signed,
//! and validation walks the whole chain.
//!
//! Orientation convention: entry *i*'s `egress` interface leads to entry
//! *i+1*'s `ingress` interface. The **last** entry's `egress` points at the
//! AS the PCB is being sent to — that receiver has not yet appended itself,
//! so the final link's remote interface id is known only to the receiver
//! (from the link it arrived on). Beacon stores therefore keep
//! `(PCB, local ingress ifid)` pairs; see the beaconing crate.

use serde::{Deserialize, Serialize};

use scion_crypto::sim::{SignDomain, Signature};
use scion_crypto::trc::{TrustStore, VerifyError};
use scion_types::{Duration, IfId, IsdAsn, LinkEnd, SimTime};

use crate::hopfield::HopField;
use crate::wire;

/// A peering-link entry attached to an AS entry (paper §2.2: "Non-core ASes
/// can include their peering links in the PCBs, enabling valley-free
/// forwarding if both up- and down-path segments contain the same peering
/// link").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerEntry {
    /// The peer AS on the other side of the peering link.
    pub peer: IsdAsn,
    /// Interface id on the peer's side.
    pub peer_if: IfId,
    /// Hop field authorizing entry via the local peering interface
    /// (its `ingress` is the local peering interface id).
    pub hop: HopField,
}

/// One AS's contribution to a PCB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsEntry {
    /// The appending AS.
    pub ia: IsdAsn,
    /// Hop field: `ingress` = interface the PCB entered through
    /// ([`IfId::NONE`] at the origin), `egress` = interface it left through
    /// (toward the next entry / the receiver).
    pub hop: HopField,
    /// Advertised peering links of this AS.
    pub peers: Vec<PeerEntry>,
    /// Signature over the beacon up to and including this entry.
    pub signature: Signature,
}

/// The identity of a *path* irrespective of beacon freshness: the sequence
/// of `(AS, ingress, egress)` triples.
///
/// The diversity algorithm must recognize "a newer instance of a PCB with
/// the same path as its previous instance" (§4.2) — equality of this key is
/// exactly that notion.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PathKey(pub Vec<(IsdAsn, IfId, IfId)>);

impl PathKey {
    /// Extends the key with an additional egress hop at the end — used to
    /// identify the *candidate* path "stored PCB + egress interface" before
    /// actually building the extended PCB (Algorithm 1's `p_new`).
    pub fn with_egress(&self, egress: IfId) -> PathKey {
        let mut v = self.0.clone();
        if let Some(last) = v.last_mut() {
            last.2 = egress;
        }
        PathKey(v)
    }
}

/// Validation failures for received PCBs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcbError {
    /// The beacon has expired (or was never valid at `now`).
    Expired,
    /// No AS entries.
    Empty,
    /// The origin entry has a non-NONE ingress interface.
    BadOriginEntry,
    /// An AS appears twice — beacons must not loop.
    LoopDetected(IsdAsn),
    /// A non-final entry is missing its egress interface.
    MissingEgress,
    /// Signature-chain verification failed at the given hop.
    Chain(usize, VerifyError),
}

impl std::fmt::Display for PcbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcbError::Expired => write!(f, "beacon expired"),
            PcbError::Empty => write!(f, "beacon has no AS entries"),
            PcbError::BadOriginEntry => write!(f, "origin entry must have no ingress interface"),
            PcbError::LoopDetected(ia) => write!(f, "AS {ia} appears twice in beacon"),
            PcbError::MissingEgress => write!(f, "non-final entry lacks an egress interface"),
            PcbError::Chain(hop, e) => write!(f, "signature chain invalid at hop {hop}: {e}"),
        }
    }
}

impl std::error::Error for PcbError {}

/// A Path-segment Construction Beacon.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcb {
    /// The initiating core AS.
    pub origin: IsdAsn,
    /// Initiation timestamp (set by the origin).
    pub initiated_at: SimTime,
    /// Expiration timestamp (set by the origin; paper §2.2).
    pub expires_at: SimTime,
    /// Per-origin beacon sequence number, distinguishing beacons initiated
    /// in the same interval on different interfaces.
    pub segment_id: u32,
    /// AS entries, origin first.
    pub entries: Vec<AsEntry>,
}

/// Derives an AS's (simulation) hop-field forwarding key from its address.
pub fn forwarding_key(ia: IsdAsn) -> u64 {
    (u64::from(ia.isd.0) << 48) ^ ia.asn.value() ^ 0x5c10_4f0d
}

impl Pcb {
    /// Originates a beacon at a core AS on egress interface `egress`.
    ///
    /// `trust` supplies the origin's signing key; `segment_id`
    /// disambiguates beacons of the same interval.
    pub fn originate(
        origin: IsdAsn,
        egress: IfId,
        initiated_at: SimTime,
        lifetime: Duration,
        segment_id: u32,
        trust: &TrustStore,
    ) -> Pcb {
        let expires_at = initiated_at + lifetime;
        let hop = HopField::new(IfId::NONE, egress, expires_at, forwarding_key(origin));
        let mut pcb = Pcb {
            origin,
            initiated_at,
            expires_at,
            segment_id,
            entries: Vec::new(),
        };
        let signature = pcb.sign_next_entry(origin, &hop, &[], trust);
        pcb.entries.push(AsEntry {
            ia: origin,
            hop,
            peers: Vec::new(),
            signature,
        });
        pcb
    }

    /// Returns a copy of this beacon extended by `ia`, which received it on
    /// `ingress` and propagates it on `egress`, advertising `peers`.
    pub fn extend(
        &self,
        ia: IsdAsn,
        ingress: IfId,
        egress: IfId,
        peers: Vec<PeerEntry>,
        trust: &TrustStore,
    ) -> Pcb {
        assert!(!ingress.is_none(), "extension requires a real ingress");
        let hop = HopField::new(ingress, egress, self.expires_at, forwarding_key(ia));
        let mut pcb = self.clone();
        let signature = pcb.sign_next_entry(ia, &hop, &peers, trust);
        pcb.entries.push(AsEntry {
            ia,
            hop,
            peers,
            signature,
        });
        pcb
    }

    /// The byte string signed by the `entries.len()`-th entry: everything
    /// accumulated so far plus the new entry's unsigned fields. Hash
    /// chaining over the serialized prefix mirrors real SCION, where each
    /// signature covers all preceding entries.
    fn signed_payload(&self, ia: IsdAsn, hop: &HopField, peers: &[PeerEntry]) -> Vec<u8> {
        self.signed_payload_over(&self.entries, ia, hop, peers)
    }

    /// The signed byte string with an explicit entry prefix: what
    /// [`Pcb::signed_payload`] produces for a beacon whose `entries` are
    /// exactly `prefix`. Taking the prefix as a slice lets validation
    /// replay the construction without materializing (and deep-cloning
    /// entries into) a prefix beacon per hop.
    fn signed_payload_over(
        &self,
        prefix: &[AsEntry],
        ia: IsdAsn,
        hop: &HopField,
        peers: &[PeerEntry],
    ) -> Vec<u8> {
        let mut p = Vec::with_capacity(128 + prefix.len() * 32);
        p.extend_from_slice(&self.origin.isd.0.to_le_bytes());
        p.extend_from_slice(&self.origin.asn.value().to_le_bytes());
        p.extend_from_slice(&self.initiated_at.as_micros().to_le_bytes());
        p.extend_from_slice(&self.expires_at.as_micros().to_le_bytes());
        p.extend_from_slice(&self.segment_id.to_le_bytes());
        for e in prefix {
            Self::push_entry_bytes(&mut p, e.ia, &e.hop, &e.peers);
            p.extend_from_slice(&e.signature.0);
        }
        Self::push_entry_bytes(&mut p, ia, hop, peers);
        p
    }

    fn push_entry_bytes(p: &mut Vec<u8>, ia: IsdAsn, hop: &HopField, peers: &[PeerEntry]) {
        p.extend_from_slice(&ia.isd.0.to_le_bytes());
        p.extend_from_slice(&ia.asn.value().to_le_bytes());
        p.extend_from_slice(&hop.ingress.0.to_le_bytes());
        p.extend_from_slice(&hop.egress.0.to_le_bytes());
        p.extend_from_slice(&hop.expiry.as_micros().to_le_bytes());
        p.extend_from_slice(&hop.mac);
        for pe in peers {
            p.extend_from_slice(&pe.peer.isd.0.to_le_bytes());
            p.extend_from_slice(&pe.peer.asn.value().to_le_bytes());
            p.extend_from_slice(&pe.peer_if.0.to_le_bytes());
            p.extend_from_slice(&pe.hop.mac);
        }
    }

    fn sign_next_entry(
        &self,
        ia: IsdAsn,
        hop: &HopField,
        peers: &[PeerEntry],
        trust: &TrustStore,
    ) -> Signature {
        let payload = self.signed_payload(ia, hop, peers);
        trust
            .key_of(ia)
            .unwrap_or_else(|| panic!("no signing key for {ia}"))
            .sign(SignDomain::PcbAsEntry, &payload)
    }

    /// Full validation of a received beacon at time `now`: liveness,
    /// structural sanity, loop freedom, and the signature chain
    /// (each entry verified against its AS certificate and ISD TRC).
    pub fn validate(&self, trust: &TrustStore, now: SimTime) -> Result<(), PcbError> {
        if self.entries.is_empty() {
            return Err(PcbError::Empty);
        }
        if now >= self.expires_at || self.initiated_at > now {
            return Err(PcbError::Expired);
        }
        if !self.entries[0].hop.ingress.is_none() {
            return Err(PcbError::BadOriginEntry);
        }
        let mut seen = Vec::with_capacity(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            if seen.contains(&e.ia) {
                return Err(PcbError::LoopDetected(e.ia));
            }
            seen.push(e.ia);
            if i + 1 < self.entries.len() && e.hop.egress.is_none() {
                return Err(PcbError::MissingEgress);
            }
        }
        // Verify the signature chain by replaying the construction. Each
        // hop's payload is rebuilt over the entry *slice* before it — no
        // prefix beacon, no per-hop entry clones (validation is the hot
        // path of every delivery when `verify_on_receive` is set).
        for (i, e) in self.entries.iter().enumerate() {
            let payload = self.signed_payload_over(&self.entries[..i], e.ia, &e.hop, &e.peers);
            trust
                .verify_chain(e.ia, SignDomain::PcbAsEntry, &payload, &e.signature, now)
                .map_err(|ve| PcbError::Chain(i, ve))?;
        }
        Ok(())
    }

    /// Number of AS hops accumulated so far.
    pub fn hop_count(&self) -> usize {
        self.entries.len()
    }

    /// The AS-level path, origin first.
    pub fn as_path(&self) -> Vec<IsdAsn> {
        self.entries.iter().map(|e| e.ia).collect()
    }

    /// True if `ia` already appears in the beacon (loop prevention).
    pub fn contains_as(&self, ia: IsdAsn) -> bool {
        self.entries.iter().any(|e| e.ia == ia)
    }

    /// The path identity key (see [`PathKey`]).
    pub fn path_key(&self) -> PathKey {
        PathKey(
            self.entries
                .iter()
                .map(|e| (e.ia, e.hop.ingress, e.hop.egress))
                .collect(),
        )
    }

    /// The fully-specified interior links of the beacon: for consecutive
    /// entries `(i, i+1)`, the link `(ia_i, egress_i) ↔ (ia_{i+1},
    /// ingress_{i+1})`. The final entry's egress (toward the receiver) is
    /// *not* included — the receiver resolves it via
    /// [`Pcb::dangling_egress`] and its own arrival interface.
    pub fn interior_links(&self) -> Vec<(LinkEnd, LinkEnd)> {
        self.entries
            .windows(2)
            .map(|w| {
                (
                    LinkEnd::new(w[0].ia, w[0].hop.egress),
                    LinkEnd::new(w[1].ia, w[1].hop.ingress),
                )
            })
            .collect()
    }

    /// The last entry's `(AS, egress interface)` — the local end of the
    /// link over which the beacon is in flight, or `None` when the final
    /// egress is unset.
    pub fn dangling_egress(&self) -> Option<(IsdAsn, IfId)> {
        self.entries.last().and_then(|e| {
            if e.hop.egress.is_none() {
                None
            } else {
                Some((e.ia, e.hop.egress))
            }
        })
    }

    /// Beacon age at `now` (zero if not yet initiated).
    pub fn age(&self, now: SimTime) -> Duration {
        now.since(self.initiated_at)
    }

    /// Total lifetime as stamped by the origin.
    pub fn lifetime(&self) -> Duration {
        self.expires_at.since(self.initiated_at)
    }

    /// Remaining lifetime at `now` (zero once expired).
    pub fn remaining_lifetime(&self, now: SimTime) -> Duration {
        now.until(self.expires_at)
    }

    /// True if expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }

    /// Wire size in bytes per the [`wire`] model.
    pub fn wire_size(&self) -> u64 {
        wire::pcb_size(
            self.entries.len(),
            self.entries.iter().map(|e| e.peers.len()).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_types::{Asn, Isd};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        TrustStore::bootstrap(
            vec![
                (ia(1, 1), true),
                (ia(1, 2), true),
                (ia(1, 3), false),
                (ia(2, 1), true),
            ]
            .into_iter(),
            SimTime::ZERO + Duration::from_days(30),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(secs)
    }

    fn sample_pcb(trust: &TrustStore) -> Pcb {
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, trust);
        let pcb = pcb.extend(ia(1, 2), IfId(1), IfId(2), vec![], trust);
        pcb.extend(ia(1, 3), IfId(7), IfId(9), vec![], trust)
    }

    #[test]
    fn origination_shape() {
        let tr = trust();
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 3, &tr);
        assert_eq!(pcb.hop_count(), 1);
        assert_eq!(pcb.origin, ia(1, 1));
        assert!(pcb.entries[0].hop.ingress.is_none());
        assert_eq!(pcb.entries[0].hop.egress, IfId(5));
        assert_eq!(pcb.lifetime(), Duration::from_hours(6));
        assert_eq!(pcb.segment_id, 3);
    }

    #[test]
    fn extension_appends_and_validates() {
        let tr = trust();
        let pcb = sample_pcb(&tr);
        assert_eq!(pcb.as_path(), vec![ia(1, 1), ia(1, 2), ia(1, 3)]);
        assert_eq!(pcb.validate(&tr, t(10)), Ok(()));
    }

    #[test]
    fn validate_rejects_expired() {
        let tr = trust();
        let pcb = sample_pcb(&tr);
        assert_eq!(
            pcb.validate(&tr, t(6 * 3600)),
            Err(PcbError::Expired),
            "expiry boundary is exclusive"
        );
    }

    #[test]
    fn validate_rejects_tampered_entry() {
        let tr = trust();
        let mut pcb = sample_pcb(&tr);
        pcb.entries[1].hop.egress = IfId(42);
        assert!(matches!(
            pcb.validate(&tr, t(10)),
            Err(PcbError::Chain(1, _))
        ));
    }

    #[test]
    fn validate_rejects_truncation_then_regrowth() {
        // Replace the last entry's signature with the first one's: chain
        // must break.
        let tr = trust();
        let mut pcb = sample_pcb(&tr);
        pcb.entries[2].signature = pcb.entries[0].signature;
        assert!(matches!(
            pcb.validate(&tr, t(10)),
            Err(PcbError::Chain(2, _))
        ));
    }

    #[test]
    fn validate_rejects_loop() {
        let tr = trust();
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
        let pcb = pcb.extend(ia(1, 2), IfId(1), IfId(2), vec![], &tr);
        let pcb = pcb.extend(ia(1, 1), IfId(6), IfId(7), vec![], &tr);
        assert_eq!(
            pcb.validate(&tr, t(10)),
            Err(PcbError::LoopDetected(ia(1, 1)))
        );
    }

    #[test]
    fn path_key_identifies_paths_not_instances() {
        let tr = trust();
        // Same path, two beacon instances initiated at different times.
        let mk = |at: SimTime| {
            Pcb::originate(ia(1, 1), IfId(5), at, Duration::from_hours(6), 0, &tr).extend(
                ia(1, 2),
                IfId(1),
                IfId(2),
                vec![],
                &tr,
            )
        };
        let a = mk(t(0));
        let b = mk(t(600));
        assert_eq!(a.path_key(), b.path_key());
        assert_ne!(a, b);
    }

    #[test]
    fn path_key_with_egress_sets_last_hop() {
        let tr = trust();
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
        let k = pcb.path_key().with_egress(IfId(9));
        assert_eq!(k.0.last().unwrap().2, IfId(9));
        // Original key untouched.
        assert_eq!(pcb.path_key().0.last().unwrap().2, IfId(5));
    }

    #[test]
    fn interior_links_and_dangling_egress() {
        let tr = trust();
        let pcb = sample_pcb(&tr);
        let links = pcb.interior_links();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].0, LinkEnd::new(ia(1, 1), IfId(5)));
        assert_eq!(links[0].1, LinkEnd::new(ia(1, 2), IfId(1)));
        assert_eq!(links[1].0, LinkEnd::new(ia(1, 2), IfId(2)));
        assert_eq!(links[1].1, LinkEnd::new(ia(1, 3), IfId(7)));
        assert_eq!(pcb.dangling_egress(), Some((ia(1, 3), IfId(9))));
    }

    #[test]
    fn ages_and_lifetimes() {
        let tr = trust();
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(100), Duration::from_secs(1000), 0, &tr);
        assert_eq!(pcb.age(t(150)), Duration::from_secs(50));
        assert_eq!(pcb.remaining_lifetime(t(150)), Duration::from_secs(950));
        assert!(!pcb.is_expired(t(1099)));
        assert!(pcb.is_expired(t(1100)));
        assert_eq!(pcb.remaining_lifetime(t(2000)), Duration::ZERO);
    }

    #[test]
    fn wire_size_grows_with_hops() {
        let tr = trust();
        let one = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
        let two = one.extend(ia(1, 2), IfId(1), IfId(2), vec![], &tr);
        assert!(two.wire_size() > one.wire_size());
        // Each extra hop adds at least a signature's worth of bytes.
        assert!(two.wire_size() - one.wire_size() >= 96);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

            /// Any loop-free extension chain built through the API
            /// validates, and its path key length equals its hop count.
            #[test]
            fn prop_random_chains_validate(hops in proptest::collection::vec((1u64..4, 1u16..9, 1u16..9), 0..3)) {
                let tr = trust();
                // Origin is 1-1; extensions walk distinct ASes 1-2, 1-3, 2-1.
                let mut pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
                let pool = [ia(1, 2), ia(1, 3), ia(2, 1)];
                for (i, &(_, ing, eg)) in hops.iter().enumerate() {
                    pcb = pcb.extend(pool[i], IfId(ing), IfId(eg), vec![], &tr);
                }
                prop_assert_eq!(pcb.validate(&tr, t(10)), Ok(()));
                prop_assert_eq!(pcb.path_key().0.len(), pcb.hop_count());
                prop_assert_eq!(pcb.interior_links().len(), pcb.hop_count() - 1);
            }

            /// Corrupting any single signature byte anywhere in the chain
            /// is always detected.
            #[test]
            fn prop_any_signature_corruption_detected(entry in 0usize..3, byte in 0usize..96) {
                let tr = trust();
                let mut pcb = sample_pcb(&tr);
                pcb.entries[entry].signature.0[byte] ^= 0x01;
                prop_assert!(matches!(pcb.validate(&tr, t(10)), Err(PcbError::Chain(_, _))));
            }

            /// Remaining lifetime plus age equals total lifetime while the
            /// beacon is alive.
            #[test]
            fn prop_age_lifetime_identity(offset in 0u64..21_599) {
                let tr = trust();
                let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
                let now = t(offset);
                prop_assert_eq!(
                    pcb.age(now) + pcb.remaining_lifetime(now),
                    pcb.lifetime()
                );
            }
        }
    }

    #[test]
    fn peer_entries_signed() {
        let tr = trust();
        let pcb = Pcb::originate(ia(1, 1), IfId(5), t(0), Duration::from_hours(6), 0, &tr);
        let peer = PeerEntry {
            peer: ia(2, 1),
            peer_if: IfId(3),
            hop: HopField::new(IfId(8), IfId::NONE, t(3600), forwarding_key(ia(1, 2))),
        };
        let mut ext = pcb.extend(ia(1, 2), IfId(1), IfId(2), vec![peer], &tr);
        assert_eq!(ext.validate(&tr, t(1)), Ok(()));
        // Dropping the peer entry invalidates the signature.
        ext.entries[1].peers.clear();
        assert!(matches!(
            ext.validate(&tr, t(1)),
            Err(PcbError::Chain(1, _))
        ));
    }
}
