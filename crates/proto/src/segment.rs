//! Finalized path segments.
//!
//! When beaconing terminates (a PCB reaches a leaf AS, or a core AS decides
//! to register a core path), the receiving AS appends a *terminal* entry —
//! its own AS entry with no egress interface — and registers the result at
//! a path server. The terminal beacon is a **path segment**: every link on
//! it is fully specified.
//!
//! Segment types follow §2.2: *up* (leaf→core inside an ISD), *down*
//! (core→leaf), and *core* (between core ASes). "Up- and down-path segments
//! are interchangeable, simply by reversing the order of ASes in a
//! segment" — segments are stored in beaconing direction (origin first) and
//! reversal happens at path-construction time ([`crate::combine`]).

use serde::{Deserialize, Serialize};

use scion_types::{IfId, IsdAsn, LinkEnd, SimTime};

use crate::pcb::{PathKey, Pcb};

/// The role a segment plays in end-to-end path construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentType {
    /// Leaf→core within an ISD (a reversed down-segment).
    Up,
    /// Core→leaf within an ISD (beaconing direction).
    Down,
    /// Between core ASes (possibly across ISDs).
    Core,
}

/// A hop of a traversal: `(AS, ingress, egress)` in travel direction.
pub type TraversalHop = (IsdAsn, IfId, IfId);

/// A finalized path segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    pub seg_type: SegmentType,
    pcb: Pcb,
}

impl PathSegment {
    /// Finalizes a beacon into a segment.
    ///
    /// # Panics
    /// Panics if the beacon's last entry still has an egress interface set
    /// (i.e. it was captured mid-flight rather than terminated) or if it is
    /// empty.
    pub fn from_terminated_pcb(seg_type: SegmentType, pcb: Pcb) -> PathSegment {
        let last = pcb.entries.last().expect("segment from empty beacon");
        assert!(
            last.hop.egress.is_none(),
            "segment requires a terminated beacon (last egress must be NONE)"
        );
        PathSegment { seg_type, pcb }
    }

    /// The underlying beacon (read-only).
    pub fn pcb(&self) -> &Pcb {
        &self.pcb
    }

    /// The initiating core AS.
    pub fn origin(&self) -> IsdAsn {
        self.pcb.origin
    }

    /// The terminal AS (leaf for up/down segments, far core for core
    /// segments).
    pub fn terminal(&self) -> IsdAsn {
        self.pcb.entries.last().expect("non-empty").ia
    }

    /// Number of AS hops.
    pub fn hop_count(&self) -> usize {
        self.pcb.hop_count()
    }

    /// Expiry (inherited from the beacon).
    pub fn expires_at(&self) -> SimTime {
        self.pcb.expires_at
    }

    /// True if expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.pcb.is_expired(now)
    }

    /// Path identity (see [`PathKey`]).
    pub fn path_key(&self) -> PathKey {
        self.pcb.path_key()
    }

    /// All inter-domain links of the segment, as `(near end, far end)`
    /// pairs in beaconing direction. Fully specified because the segment is
    /// terminated.
    pub fn links(&self) -> Vec<(LinkEnd, LinkEnd)> {
        self.pcb.interior_links()
    }

    /// The hops in beaconing direction (origin first): `(AS, ingress,
    /// egress)` — the origin's ingress and the terminal's egress are
    /// [`IfId::NONE`].
    pub fn hops_forward(&self) -> Vec<TraversalHop> {
        self.pcb
            .entries
            .iter()
            .map(|e| (e.ia, e.hop.ingress, e.hop.egress))
            .collect()
    }

    /// The hops reversed for up-path traversal (terminal first, ingress and
    /// egress swapped): "up- and down-path segments are interchangeable,
    /// simply by reversing the order of ASes" (§2.2).
    pub fn hops_reversed(&self) -> Vec<TraversalHop> {
        self.pcb
            .entries
            .iter()
            .rev()
            .map(|e| (e.ia, e.hop.egress, e.hop.ingress))
            .collect()
    }

    /// The AS-level path in beaconing direction.
    pub fn as_path(&self) -> Vec<IsdAsn> {
        self.pcb.as_path()
    }

    /// True if `ia` lies on the segment.
    pub fn contains_as(&self, ia: IsdAsn) -> bool {
        self.pcb.contains_as(ia)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_crypto::trc::TrustStore;
    use scion_types::{Asn, Duration, Isd};

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    fn trust() -> TrustStore {
        TrustStore::bootstrap(
            vec![(ia(1, 1), true), (ia(1, 2), false), (ia(1, 3), false)].into_iter(),
            SimTime::ZERO + Duration::from_days(30),
        )
    }

    fn terminated(trust: &TrustStore) -> Pcb {
        Pcb::originate(
            ia(1, 1),
            IfId(5),
            SimTime::ZERO,
            Duration::from_hours(6),
            0,
            trust,
        )
        .extend(ia(1, 2), IfId(1), IfId(2), vec![], trust)
        .extend(ia(1, 3), IfId(7), IfId::NONE, vec![], trust)
    }

    #[test]
    fn finalize_terminated_beacon() {
        let tr = trust();
        let seg = PathSegment::from_terminated_pcb(SegmentType::Down, terminated(&tr));
        assert_eq!(seg.origin(), ia(1, 1));
        assert_eq!(seg.terminal(), ia(1, 3));
        assert_eq!(seg.hop_count(), 3);
        assert_eq!(seg.links().len(), 2);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn refuses_in_flight_beacon() {
        let tr = trust();
        let pcb = Pcb::originate(
            ia(1, 1),
            IfId(5),
            SimTime::ZERO,
            Duration::from_hours(6),
            0,
            &tr,
        );
        let _ = PathSegment::from_terminated_pcb(SegmentType::Down, pcb);
    }

    #[test]
    fn reversal_swaps_direction_and_interfaces() {
        let tr = trust();
        let seg = PathSegment::from_terminated_pcb(SegmentType::Down, terminated(&tr));
        let fwd = seg.hops_forward();
        let rev = seg.hops_reversed();
        assert_eq!(fwd.len(), rev.len());
        // Reversed first hop is the terminal AS with swapped interfaces.
        assert_eq!(rev[0], (ia(1, 3), IfId::NONE, IfId(7)));
        assert_eq!(rev[2], (ia(1, 1), IfId(5), IfId::NONE));
        // Forward and reversed visit the same links.
        let relink = |hops: &[TraversalHop]| -> Vec<(IsdAsn, IsdAsn)> {
            hops.windows(2).map(|w| (w[0].0, w[1].0)).collect()
        };
        let mut f = relink(&fwd);
        let r: Vec<_> = relink(&rev)
            .into_iter()
            .map(|(a, b)| (b, a))
            .rev()
            .collect();
        f.sort();
        let mut r = r;
        r.sort();
        assert_eq!(f, r);
    }

    #[test]
    fn expiry_propagates() {
        let tr = trust();
        let seg = PathSegment::from_terminated_pcb(SegmentType::Up, terminated(&tr));
        assert!(!seg.is_expired(SimTime::ZERO + Duration::from_hours(5)));
        assert!(seg.is_expired(SimTime::ZERO + Duration::from_hours(6)));
    }
}
