//! Byte-size model for control-plane messages.
//!
//! Every overhead number in the evaluation (Fig. 5, Fig. 9, EXPERIMENTS.md)
//! comes from these formulas. They follow the structure of the deployed
//! SCION wire format with ECDSA-P384 signatures (per §5.2's assumption),
//! and are kept in one place so the model is auditable.

use scion_crypto::sizes::ECDSA_P384_SIGNATURE;

use crate::hopfield::HopField;

/// Fixed PCB header: origin ⟨ISD,AS⟩ (8) + initiation (8) + expiry (8) +
/// segment id (4) + framing/version (4).
pub const PCB_HEADER: u64 = 8 + 8 + 8 + 4 + 4;

/// One AS entry without peer entries: ⟨ISD,AS⟩ (8) + hop field (12) +
/// MTU/extension metadata (4) + signature metadata (4, algorithm + key
/// version) + ECDSA-P384 signature (96).
pub const AS_ENTRY_BASE: u64 = 8 + HopField::WIRE_SIZE as u64 + 4 + 4 + ECDSA_P384_SIGNATURE as u64;

/// One peer entry: peer ⟨ISD,AS⟩ (8) + peer interface (2) + hop field (12).
pub const PEER_ENTRY: u64 = 8 + 2 + HopField::WIRE_SIZE as u64;

/// Size of a PCB with `hops` AS entries and `peer_entries` total peer
/// entries across all hops.
pub fn pcb_size(hops: usize, peer_entries: usize) -> u64 {
    PCB_HEADER + hops as u64 * AS_ENTRY_BASE + peer_entries as u64 * PEER_ENTRY
}

/// A path-segment registration message: the segment (same encoding as the
/// PCB it came from, minus the last egress) + registration framing.
pub fn registration_size(hops: usize, peer_entries: usize) -> u64 {
    pcb_size(hops, peer_entries) + 16
}

/// A path-segment lookup request: queried ⟨ISD,AS⟩ + flags + framing.
pub const SEGMENT_REQUEST: u64 = 8 + 2 + 8;

/// A reliable-channel delivery acknowledgment: message id (8) + framing
/// (8). Acks ride the same links as the data they confirm, so the lossy
/// experiments account them as control-plane overhead.
pub const RELIABLE_ACK: u64 = 8 + 8;

/// An SCMP "external interface down" revocation message: origin
/// ⟨ISD,AS⟩ (8) + interface id (8) + timestamp (8) + SCMP/quoting
/// overhead (40).
pub const SCMP_REVOCATION: u64 = 8 + 8 + 8 + 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcb_size_formula() {
        assert_eq!(pcb_size(1, 0), PCB_HEADER + AS_ENTRY_BASE);
        assert_eq!(
            pcb_size(3, 2),
            PCB_HEADER + 3 * AS_ENTRY_BASE + 2 * PEER_ENTRY
        );
    }

    #[test]
    fn signature_dominates_as_entry() {
        // Sanity: the per-hop cost is signature-dominated, matching the
        // paper's observation that SCION baseline overhead lands in
        // BGPsec's order of magnitude.
        assert!(AS_ENTRY_BASE as usize > ECDSA_P384_SIGNATURE);
        assert!((AS_ENTRY_BASE as usize) < 2 * ECDSA_P384_SIGNATURE);
    }

    #[test]
    fn registration_wraps_pcb() {
        assert!(registration_size(2, 0) > pcb_size(2, 0));
    }
}
