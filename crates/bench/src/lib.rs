//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary accepts `--scale tiny|small|paper` (default `small`),
//! prints a human-readable table to stdout, and writes a JSON record to
//! `results/<name>.json` so EXPERIMENTS.md numbers can be regenerated and
//! diffed.

use std::path::PathBuf;

use scion_core::prelude::ExperimentScale;

/// Parses the common CLI arguments of a harness binary.
///
/// Exits with a usage message on unknown arguments, so typos never
/// silently run at the wrong scale.
pub fn parse_scale() -> ExperimentScale {
    let mut args = std::env::args().skip(1);
    let mut scale = ExperimentScale::Small;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (expected tiny|small|paper)");
                    std::process::exit(2);
                });
            }
            "--full" => scale = ExperimentScale::Paper,
            "--tiny" => scale = ExperimentScale::Tiny,
            "--help" | "-h" => {
                eprintln!("usage: <bin> [--scale tiny|small|paper] [--tiny] [--full]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    scale
}

/// Writes an experiment's JSON record under `results/`.
pub fn write_json(name: &str, json: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_creates_file() {
        let tmp = std::env::temp_dir().join(format!("scion-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let path = write_json("probe", "{\"x\":1}");
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}");
        std::env::set_current_dir(prev).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
    }
}
