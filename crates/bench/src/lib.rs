//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary accepts `--scale tiny|small|paper` (default `small`),
//! prints a human-readable table to stdout, and writes a JSON record to
//! `results/<name>.json` so EXPERIMENTS.md numbers can be regenerated and
//! diffed. Binaries wired for telemetry additionally accept
//! `--telemetry <dir>` and dump the JSONL files plus a `summary.txt`
//! there (see README.md, "Telemetry & profiling").

use std::path::{Path, PathBuf};

use scion_core::experiments::World;
use scion_core::ingest::ingest_spec;
use scion_core::prelude::{ExperimentScale, Telemetry, TelemetryConfig};
use scion_core::report::telemetry_summary;

/// Parsed common CLI arguments of a harness binary.
pub struct BenchArgs {
    pub scale: ExperimentScale,
    /// Output directory of a telemetry dump, when `--telemetry DIR` was
    /// given.
    pub telemetry: Option<PathBuf>,
    /// Master-seed override, when `--seed N` was given. Binaries that
    /// ignore it run at the scale's built-in seed.
    pub seed: Option<u64>,
    /// Loss-rate sweep override, when `--loss a,b,…` was given. Only the
    /// `lossy` binary consumes it; others ignore it.
    pub loss: Option<Vec<f64>>,
    /// Worker-thread counts, when `--threads a,b,…` was given. The
    /// `scaling` binary sweeps the whole list; single-run binaries
    /// (`table1`, `fig5`, `lossy`) use the first entry to switch their
    /// beaconing runs onto the parallel driver.
    pub threads: Option<Vec<usize>>,
    /// Ingested-topology spec (`kind:path`), when `--source` was given.
    /// Experiment binaries then run on the file-derived topology instead
    /// of the synthetic generator's; see `scion-ingest`.
    pub source: Option<String>,
    /// IXP-overlay document path, when `--ixp PATH` was given (only
    /// meaningful together with `--source`).
    pub ixp: Option<PathBuf>,
    /// Canonical-export output path, when `--export PATH` was given.
    /// Only the `ingest` binary consumes it; others ignore it.
    pub export: Option<PathBuf>,
}

impl BenchArgs {
    /// The single thread count of `--threads` for non-sweep binaries
    /// (`None` when the flag was absent → serial driver).
    pub fn thread_count(&self) -> Option<usize> {
        self.threads.as_ref().and_then(|t| t.first().copied())
    }

    /// A telemetry handle matching the CLI: recording when `--telemetry`
    /// was given, the inert no-op handle otherwise.
    pub fn telemetry_handle(&self) -> Telemetry {
        if self.telemetry.is_some() {
            Telemetry::new(TelemetryConfig::default())
        } else {
            Telemetry::disabled()
        }
    }

    /// Builds the experiment world the CLI asked for: from the ingested
    /// `--source` topology (plus optional `--ixp` overlay) when given,
    /// otherwise from the synthetic generator at the requested scale. The
    /// `--seed` override applies either way.
    pub fn build_world(&self) -> World {
        let mut params = self.scale.params();
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        match &self.source {
            Some(spec) => {
                let ingested = ingest_spec(spec, self.ixp.as_deref()).unwrap_or_else(|e| {
                    eprintln!("--source {spec}: {e}");
                    std::process::exit(2);
                });
                eprintln!(
                    "ingested {} ({}): {} ASes, {} links, fingerprint {}",
                    ingested.provenance.origin,
                    ingested.provenance.kind,
                    ingested.topology.num_ases(),
                    ingested.topology.num_links(),
                    ingested.topology.fingerprint(),
                );
                World::from_internet(ingested.topology.to_topology(), params)
            }
            None => World::build(params),
        }
    }
}

/// Parses the common CLI arguments of a harness binary.
///
/// Exits with a usage message on unknown arguments, so typos never
/// silently run at the wrong scale.
pub fn parse_args() -> BenchArgs {
    let mut args = std::env::args().skip(1);
    let mut scale = ExperimentScale::Small;
    let mut telemetry = None;
    let mut seed = None;
    let mut loss = None;
    let mut threads = None;
    let mut source = None;
    let mut ixp = None;
    let mut export = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = ExperimentScale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (expected tiny|small|paper)");
                    std::process::exit(2);
                });
            }
            "--full" => scale = ExperimentScale::Paper,
            "--tiny" => scale = ExperimentScale::Tiny,
            "--telemetry" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--telemetry requires an output directory");
                    std::process::exit(2);
                }
                telemetry = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed requires an unsigned integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--loss" => {
                let v = args.next().unwrap_or_default();
                let rates: Result<Vec<f64>, _> =
                    v.split(',').map(|s| s.trim().parse::<f64>()).collect();
                match rates {
                    Ok(r) if !r.is_empty() && r.iter().all(|p| (0.0..=1.0).contains(p)) => {
                        loss = Some(r);
                    }
                    _ => {
                        eprintln!(
                            "--loss requires comma-separated probabilities in [0,1], got '{v}'"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => {
                let v = args.next().unwrap_or_default();
                let counts: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                match counts {
                    Ok(c) if !c.is_empty() && c.iter().all(|&n| n >= 1) => threads = Some(c),
                    _ => {
                        eprintln!("--threads requires comma-separated counts ≥ 1, got '{v}'");
                        std::process::exit(2);
                    }
                }
            }
            "--source" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--source requires a kind:path spec (as-rel|graphml|rib)");
                    std::process::exit(2);
                }
                source = Some(v);
            }
            "--ixp" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--ixp requires a path to an IXP-metadata document");
                    std::process::exit(2);
                }
                ixp = Some(PathBuf::from(v));
            }
            "--export" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--export requires an output path");
                    std::process::exit(2);
                }
                export = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: <bin> [--scale tiny|small|paper] [--tiny] [--full] \
                     [--seed N] [--telemetry DIR] [--loss a,b,…] [--threads a,b,…] \
                     [--source kind:path] [--ixp PATH] [--export PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    BenchArgs {
        scale,
        telemetry,
        seed,
        loss,
        threads,
        source,
        ixp,
        export,
    }
}

/// Parses the common CLI arguments, keeping only the scale (binaries not
/// yet wired for telemetry).
pub fn parse_scale() -> ExperimentScale {
    parse_args().scale
}

/// Dumps a telemetry handle as JSONL files plus a rendered `summary.txt`
/// under `dir`.
pub fn write_telemetry(tel: &Telemetry, dir: &Path) {
    tel.export_jsonl(dir).expect("write telemetry dump");
    std::fs::write(dir.join("summary.txt"), telemetry_summary(tel))
        .expect("write telemetry summary");
    eprintln!("telemetry dump written to {}", dir.display());
}

/// Writes an experiment's JSON record under `results/`.
pub fn write_json(name: &str, json: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_telemetry_dumps_jsonl_and_summary() {
        use scion_core::telemetry::{ids, Label};
        let tmp = std::env::temp_dir().join(format!("scion-bench-tel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.inc(ids::BEACONS_SENT, Label::As(0), 4);
        write_telemetry(&tel, &tmp);
        for name in [
            "metrics.jsonl",
            "series.jsonl",
            "trace.jsonl",
            "profile.jsonl",
            "summary.txt",
        ] {
            assert!(tmp.join(name).exists(), "{name} missing");
        }
        let summary = std::fs::read_to_string(tmp.join("summary.txt")).unwrap();
        assert!(summary.contains(ids::BEACONS_SENT), "{summary}");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn write_json_creates_file() {
        let tmp = std::env::temp_dir().join(format!("scion-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let path = write_json("probe", "{\"x\":1}");
        assert!(path.exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}");
        std::env::set_current_dir(prev).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
    }
}
