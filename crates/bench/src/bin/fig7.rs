//! Regenerates **Figure 7** (Appendix B): minimum number of failing links
//! disconnecting two ASes on the SCIONLab-scale topology, per storage
//! limit.
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig7
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::analysis::Cdf;
use scion_core::experiments::run_fig78;
use scion_core::report::{json_line, Table};

fn main() {
    let scale = parse_scale();
    eprintln!("running Figure 7 (SCIONLab resilience) at {scale:?} scale…");
    let result = run_fig78(scale);

    println!("Figure 7: minimum failing links disconnecting two SCIONLab core ASes");
    let mut table = Table::new(&["series", "mean", "median", "max", "optimal share"]);
    let opt_cdf = Cdf::from_u64(result.optimum.iter().copied());
    table.row(&[
        "Optimum".into(),
        format!("{:.2}", opt_cdf.mean()),
        format!("{}", opt_cdf.summary().median),
        format!("{}", opt_cdf.summary().max),
        "1.000".into(),
    ]);
    for (name, values) in &result.series {
        let cdf = Cdf::from_u64(values.iter().copied());
        // Fraction of pairs achieving exactly the optimal resilience.
        let optimal_share = values
            .iter()
            .zip(&result.optimum)
            .filter(|&(v, o)| v == o)
            .count() as f64
            / values.len() as f64;
        table.row(&[
            name.clone(),
            format!("{:.2}", cdf.mean()),
            format!("{}", cdf.summary().median),
            format!("{}", cdf.summary().max),
            format!("{optimal_share:.3}"),
        ]);
    }
    println!("{}", table.render());

    let path = write_json("fig7", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
