//! Topology-ingestion inspector: loads a `--source kind:path` document
//! through `scion-ingest`, prints graph statistics, and records the
//! canonical form.
//!
//! ```text
//! cargo run --release -p scion-bench --bin ingest -- \
//!     --source as-rel:tests/data/equiv.as-rel [--ixp PATH] [--export PATH]
//! ```
//!
//! Writes the run record to `results/ingest.json` (provenance,
//! fingerprint, stats, normalization counters). With `--export PATH`, also
//! writes the canonical topology JSON — which contains *only* the
//! canonical form, so equivalent inputs in different formats export
//! byte-identically and `telediff a.json b.json` gates on it.

use serde::Serialize;

use scion_bench::{parse_args, write_json};
use scion_core::ingest::{
    canonical_json, ingest_spec, IxpApplyReport, NormalizeReport, Provenance, TopologyStats,
};
use scion_core::report::{json_line, Table};

/// The `results/ingest.json` record of one run.
#[derive(Serialize)]
struct IngestRecord {
    provenance: Provenance,
    fingerprint: String,
    stats: TopologyStats,
    normalize: NormalizeReport,
    ixp: Option<IxpApplyReport>,
}

fn main() {
    let args = parse_args();
    let Some(spec) = args.source.as_deref() else {
        eprintln!("ingest requires --source kind:path (as-rel|graphml|rib)");
        std::process::exit(2);
    };
    eprintln!("ingesting {spec}…");
    let ingested = ingest_spec(spec, args.ixp.as_deref()).unwrap_or_else(|e| {
        eprintln!("--source {spec}: {e}");
        std::process::exit(2);
    });
    let topo = &ingested.topology;
    let stats = TopologyStats::compute(topo);

    println!(
        "source: {} ({})",
        ingested.provenance.origin, ingested.provenance.kind
    );
    println!("fingerprint: {}", topo.fingerprint());
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["ASes".into(), stats.ases.to_string()]);
    table.row(&["links".into(), stats.links.to_string()]);
    table.row(&["p2c pairs".into(), stats.p2c_pairs.to_string()]);
    table.row(&["p2p pairs".into(), stats.p2p_pairs.to_string()]);
    table.row(&[
        "parallel extra links".into(),
        stats.parallel_extra_links.to_string(),
    ]);
    table.row(&[
        "degree min/p50/p90/p99/max".into(),
        format!(
            "{}/{}/{}/{}/{}",
            stats.degree.min,
            stats.degree.p50,
            stats.degree.p90,
            stats.degree.p99,
            stats.degree.max
        ),
    ]);
    println!("{}", table.render());

    let n = &topo.report;
    println!(
        "normalization: {} raw edges, {} self-loops dropped, {} duplicates merged, \
         {} conflicts resolved, {} components pruned ({} ASes, {} pairs)",
        n.input_edges,
        n.self_loops_dropped,
        n.duplicates_merged,
        n.conflicts_resolved,
        n.components_pruned,
        n.ases_pruned,
        n.pairs_pruned,
    );
    if let Some(ixp) = &ingested.ixp {
        println!(
            "ixp overlay: {} exchanges, {} members matched ({} unknown), \
             {} parallel links added, {} non-adjacent pairs skipped",
            ixp.ixps,
            ixp.members_matched,
            ixp.members_unknown,
            ixp.links_added,
            ixp.pairs_not_adjacent,
        );
    }

    // The materialized multigraph must hold the topology invariants —
    // a cheap end-to-end audit of the whole pipeline on every run.
    topo.to_topology()
        .check_invariants()
        .expect("ingested topology violates multigraph invariants");

    let record = IngestRecord {
        provenance: ingested.provenance,
        fingerprint: topo.fingerprint(),
        stats,
        normalize: topo.report,
        ixp: ingested.ixp,
    };
    let path = write_json("ingest", &json_line(&record));
    eprintln!("JSON written to {}", path.display());

    if let Some(export) = &args.export {
        if let Some(parent) = export.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create export directory");
        }
        std::fs::write(export, canonical_json(topo)).expect("write canonical export");
        eprintln!("canonical export written to {}", export.display());
    }
}
