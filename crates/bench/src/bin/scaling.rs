//! Scaling sweep: wall-clock speedup and event throughput of the
//! deterministic parallel beaconing driver versus worker-thread count.
//!
//! ```text
//! cargo run --release -p scion-bench --bin scaling -- \
//!     [--scale tiny|small|paper] [--threads 1,2,4,8] [--telemetry DIR] \
//!     [--source kind:path] [--ixp PATH]
//! ```
//!
//! Prints per-thread-count wall-clock, speedup, events/sec, and the
//! driver's phase breakdown (window pop / shard / merge), and writes the
//! JSON record to `results/scaling.json`. Every row must report identical
//! protocol outcomes — the run doubles as a determinism audit. With
//! `--telemetry DIR`, every row runs on a recording handle and dumps its
//! full telemetry under `DIR/threads-<n>/`; the deterministic files of
//! any two rows must be byte-identical (`telediff DIR/threads-1
//! DIR/threads-8` exits 0). Recording adds overhead, so wall-clock
//! numbers from a dumping run are not comparable to a plain run.

use scion_bench::{parse_args, write_json};
use scion_core::experiments::run_scaling_in;
use scion_core::report::{json_line, Table};

fn main() {
    let args = parse_args();
    let counts = args.threads.clone().unwrap_or_default();
    eprintln!(
        "running parallel-beaconing scaling sweep at {:?} scale…",
        args.scale
    );
    let world = args.build_world();
    let result = run_scaling_in(&world, &counts, args.telemetry.as_deref());

    println!(
        "Parallel beaconing scaling: {} core ASes, {} simulated seconds, verification on",
        result.num_core, result.sim_secs
    );
    let mut table = Table::new(&[
        "threads",
        "wall ms",
        "speedup",
        "events/s",
        "pop ms",
        "shard ms",
        "merge ms",
        "delivered",
    ]);
    for r in &result.rows {
        table.row(&[
            r.threads.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.2}x", r.speedup),
            format!("{:.0}", r.events_per_sec),
            format!("{:.1}", r.pop_ms),
            format!("{:.1}", r.shard_ms),
            format!("{:.1}", r.merge_ms),
            r.beacons_delivered.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "outcomes identical across thread counts: {}",
        result.outcomes_identical
    );
    if !result.outcomes_identical {
        eprintln!("DETERMINISM VIOLATION: outcomes differ across thread counts");
        std::process::exit(1);
    }

    let path = write_json("scaling", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        eprintln!("per-thread telemetry dumps written under {}", dir.display());
    }
}
