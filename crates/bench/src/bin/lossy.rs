//! Lossy control-plane sweep: diversity beaconing over the reliable
//! channel vs a no-retry control across a range of per-message loss
//! rates, reporting availability, convergence, and message/byte
//! overhead, plus the deterministic path-server degradation leg.
//!
//! ```text
//! cargo run --release -p scion-bench --bin lossy -- \
//!     [--scale tiny|small|paper] [--seed N] [--loss 0,0.01,0.05] \
//!     [--telemetry DIR] [--threads N]
//! ```

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::{run_lossy_sweep, LOSS_RATES};
use scion_core::report::{human_bytes, json_line, Table};

fn main() {
    let args = parse_args();
    let rates = args.loss.clone().unwrap_or_else(|| LOSS_RATES.to_vec());
    eprintln!(
        "running lossy sweep at {:?} scale ({} rates × 2 arms + degradation leg)…",
        args.scale,
        rates.len()
    );
    let mut tel = args.telemetry_handle();
    let result = run_lossy_sweep(args.scale, args.seed, &rates, args.thread_count(), &mut tel);

    println!(
        "Lossy control plane: seed {}, {} probed AS pairs, rates {:?}",
        result.seed, result.pairs, rates
    );
    let mut table = Table::new(&[
        "loss",
        "arm",
        "final live",
        "converge",
        "msgs",
        "msg x",
        "bytes",
        "byte x",
        "lost",
        "retx",
        "dups",
        "give-ups",
    ]);
    for p in &result.points {
        for arm in [&p.reliable, &p.no_retry] {
            table.row(&[
                format!("{:.3}%", p.loss * 100.0),
                arm.name.clone(),
                format!("{:.3}", arm.final_fraction),
                match arm.convergence_us {
                    Some(us) => format!("{}s", us / 1_000_000),
                    None => "—".to_string(),
                },
                format!("{}", arm.messages),
                format!("{:.2}", arm.message_overhead),
                human_bytes(arm.bytes),
                format!("{:.2}", arm.byte_overhead),
                format!("{}", arm.loss.messages_lost),
                format!("{}", arm.loss.retransmits),
                format!("{}", arm.loss.duplicates_suppressed),
                format!("{}", arm.loss.give_ups),
            ]);
        }
    }
    println!("{}", table.render());

    let d = &result.degradation;
    println!(
        "degradation leg: {}/{} registrations stored ({} retransmits, {} duplicates \
         suppressed, {} abandoned); {} lookups ({} retries) → {} fresh, {} degraded, \
         {} unreachable, {} negative-cache hit(s)",
        d.registrations_stored,
        d.registrations_offered,
        d.registration_retransmits,
        d.registration_duplicates,
        d.registrations_abandoned,
        d.lookups_started,
        d.lookup_retries,
        d.lookups_resolved,
        d.degraded_serves,
        d.unreachable_verdicts,
        d.negative_hits
    );

    let path = write_json("lossy", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
