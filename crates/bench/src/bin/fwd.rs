//! Forwarding microbenchmark: data-plane packets/sec through a chain of
//! border routers, scalar vs batched hop-field verification.
//!
//! ```text
//! cargo run --release -p scion-bench --bin fwd -- \
//!     [--scale tiny|small|paper] [--seed N] [--threads N] [--telemetry DIR] \
//!     [--source kind:path] [--ixp PATH]
//! ```
//!
//! Prints per-arm throughput, per-hop latency quantiles, and the drop
//! breakdown; writes the JSON record to `results/forwarding.json`. With
//! `--telemetry DIR`, dumps the scalar arm's telemetry under
//! `DIR/scalar/` and the batched arm's under `DIR/batched/` — their
//! deterministic files must be byte-identical (`telediff DIR/scalar
//! DIR/batched` exits 0). Both arms must report identical protocol
//! outcomes; a mismatch is a determinism violation and exits nonzero.

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_forwarding_in;
use scion_core::report::{json_line, Table};

fn main() {
    let args = parse_args();
    let threads = args.thread_count().unwrap_or(4);
    eprintln!(
        "running forwarding bench at {:?} scale, {threads} worker threads…",
        args.scale
    );
    let mut tel_scalar = args.telemetry_handle();
    let mut tel_batched = args.telemetry_handle();
    let world = args.build_world();
    let result = run_forwarding_in(&world, threads, &mut tel_scalar, &mut tel_batched);

    println!(
        "Forwarding: {} packets over {} paths across {} core ASes ({} links, {} failed), seed {:#x}",
        result.num_packets,
        result.num_paths,
        result.num_ases,
        result.num_links,
        result.failed_links,
        result.seed,
    );
    let mut table = Table::new(&[
        "arm",
        "threads",
        "wall ms",
        "pkts/s",
        "hops/s",
        "delivered",
        "dropped",
        "scmp",
        "hop p50 ns",
        "hop p99 ns",
    ]);
    for arm in &result.arms {
        let (p50, p99) = arm
            .hop_latency
            .as_ref()
            .map_or((0.0, 0.0), |l| (l.p50_ns, l.p99_ns));
        table.row(&[
            arm.name.to_string(),
            arm.threads.to_string(),
            format!("{:.1}", arm.wall_ms),
            format!("{:.0}", arm.packets_per_sec),
            format!("{:.0}", arm.hops_per_sec),
            arm.delivered.to_string(),
            arm.dropped.to_string(),
            arm.scmp_sent.to_string(),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
    println!("{}", table.render());
    if let Some(arm) = result.arms.first() {
        let drops: Vec<String> = arm.drops.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("drop breakdown: {}", drops.join(", "));
    }
    println!(
        "plain (uninstrumented) throughput: {:.0} pkts/s; scalar instrumentation overhead: {:+.1}%",
        result.plain_packets_per_sec, result.telemetry_overhead_pct
    );
    println!(
        "outcomes identical across plain/scalar/batched: {}",
        result.outcomes_identical
    );
    if !result.outcomes_identical {
        eprintln!("DETERMINISM VIOLATION: arms disagree on outcomes or telemetry");
        std::process::exit(1);
    }

    let path = write_json("forwarding", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel_scalar, &dir.join("scalar"));
        write_telemetry(&tel_batched, &dir.join("batched"));
    }
}
