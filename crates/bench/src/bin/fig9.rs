//! Regenerates **Figure 9** (Appendix B): CDF of core-beaconing bandwidth
//! per interface on the SCIONLab-scale topology. The paper observes
//! "less than 4 KB/s per interface for almost 80 % of all core
//! interfaces".
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig9
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::experiments::run_fig9;
use scion_core::report::json_line;

fn main() {
    let scale = parse_scale();
    eprintln!("running Figure 9 (SCIONLab per-interface bandwidth) at {scale:?} scale…");
    let result = run_fig9(scale);

    println!("Figure 9: core beaconing bandwidth per interface (SCIONLab)");
    println!("CDF (bytes/second -> cumulative fraction of interfaces):");
    for (bps, frac) in &result.cdf_points {
        println!("  {bps:>10.1} Bps  {frac:.3}");
    }
    println!();
    println!(
        "interfaces below 4 KB/s: {:.1} %  (paper: ~80 %)",
        result.fraction_below_4kbps * 100.0
    );

    let path = write_json("fig9", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
