//! Overload-protection experiment: a flash crowd of path lookups against
//! one front-end path server, unprotected vs shedding vs full degradation.
//!
//! ```text
//! cargo run --release -p scion-bench --bin overload -- \
//!     [--scale tiny|small|paper] [--seed N] [--threads N] [--telemetry DIR]
//! ```
//!
//! Sweeps offered load from 0.5× to 8× of the server's service capacity
//! and prints one three-arm table per load point (goodput, latency
//! percentiles, shed/degraded breakdowns). Writes the JSON record to
//! `results/overload.json`. With `--telemetry DIR`, dumps the recording
//! handle's deterministic telemetry (all arms and loads share one handle,
//! disambiguated by run label) under `DIR`.

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_overload_with;
use scion_core::report::{json_line, Table};

fn main() {
    let args = parse_args();
    let threads = args.thread_count().unwrap_or(4);
    eprintln!(
        "running overload experiment at {:?} scale, {threads} worker threads…",
        args.scale
    );
    let mut tel = args.telemetry_handle();
    let result = run_overload_with(args.scale, args.seed, threads, &mut tel);

    let p = &result.params;
    println!(
        "Overload: capacity {}/tick ({} rps), upstream {}/tick, {} clients, \
         {} destinations ({} hot), {} arrival + {} drain ticks, seed {:#x}",
        p.capacity_per_tick,
        p.capacity_per_sec(),
        p.upstream_per_tick,
        p.num_clients,
        p.num_destinations,
        result.hot_destinations,
        p.arrival_ticks,
        p.drain_ticks,
        result.seed,
    );
    let mut table = Table::new(&[
        "load", "arm", "offered", "shed", "busy", "fresh", "stale", "ctl", "up fail", "in-ddl",
        "goodput", "p50 ms", "p99 ms", "peak q",
    ]);
    for point in &result.points {
        for arm in &point.arms {
            table.row(&[
                format!("{:.1}x", point.load_permille as f64 / 1e3),
                arm.name.clone(),
                arm.offered.to_string(),
                (arm.shed_rate_limited + arm.shed_queue_full + arm.shed_evicted).to_string(),
                arm.busy_backoffs.to_string(),
                arm.served_fresh.to_string(),
                arm.served_stale.to_string(),
                arm.served_control.to_string(),
                arm.upstream_failed.to_string(),
                arm.completed_in_deadline.to_string(),
                format!("{:.3}", arm.goodput_ratio),
                format!("{:.1}", arm.p50_us as f64 / 1e3),
                format!("{:.1}", arm.p99_us as f64 / 1e3),
                arm.peak_queue_depth.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    for point in &result.points {
        let full = &point.arms[2];
        if full.brownout_entries + full.breaker_trips > 0 {
            println!(
                "{:.1}x full: {} brownout entries / {} exits, {} breaker trips, \
                 {} probes, {} short-circuits",
                point.load_permille as f64 / 1e3,
                full.brownout_entries,
                full.brownout_exits,
                full.breaker_trips,
                full.breaker_probes,
                full.breaker_short_circuits,
            );
        }
    }

    let path = write_json("overload", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
