//! Resilience-under-churn experiment: replays one seeded fault trace
//! against diversity beaconing, baseline beaconing, and BGP, and reports
//! live-path fractions, reconvergence times, and control-plane overhead.
//!
//! ```text
//! cargo run --release -p scion-bench --bin resilience -- \
//!     [--scale tiny|small|paper] [--seed N] [--telemetry DIR]
//! ```

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_resilience_telemetry;
use scion_core::report::{human_bytes, json_line, Table};

fn main() {
    let args = parse_args();
    eprintln!(
        "running resilience-under-churn at {:?} scale (2 beaconing runs + BGP + revocations)…",
        args.scale
    );
    let mut tel = args.telemetry_handle();
    let result = run_resilience_telemetry(args.scale, args.seed, &mut tel);

    println!(
        "Resilience under churn: seed {}, {} fault events ({} downs), {} probed AS pairs",
        result.seed,
        result.fault_events,
        result.link_downs,
        result.pairs.len()
    );
    let mut table = Table::new(&[
        "series",
        "mean live",
        "min live",
        "reconverge",
        "unrecovered",
        "messages",
        "bytes",
    ]);
    for s in &result.series {
        table.row(&[
            s.name.clone(),
            format!("{:.3}", s.mean_fraction),
            format!("{:.3}", s.min_fraction),
            match s.mean_reconvergence_us {
                Some(us) => format!("{}s", us / 1_000_000),
                None => "—".to_string(),
            },
            format!("{}", s.unrecovered),
            format!("{}", s.messages),
            human_bytes(s.bytes),
        ]);
    }
    println!("{}", table.render());

    println!("live-pair fraction over time (t_s:fraction):");
    for s in &result.series {
        let step = (s.curve.len() / 10).max(1);
        let pts: Vec<String> = s
            .curve
            .iter()
            .step_by(step)
            .map(|&(t, f)| format!("{}:{f:.2}", t / 1_000_000))
            .collect();
        println!("  {:<12} {}", s.name, pts.join("  "));
    }

    println!(
        "revocation leg: {} downs replayed, {} segments revoked, {} intra-ISD + {} global messages",
        result.revocation.downs_replayed,
        result.revocation.segments_revoked,
        result.revocation.intra_isd_messages,
        result.revocation.global_scmp_messages
    );

    let path = write_json("resilience", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
