//! Regenerates **Table 1**: path-management overhead comparison —
//! measured scope and frequency per SCION control-plane component.
//!
//! ```text
//! cargo run --release -p scion-bench --bin table1 \
//!     [--scale tiny|small|paper] [--telemetry DIR] [--threads N] \
//!     [--source kind:path] [--ixp PATH]
//! ```

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_table1_in;
use scion_core::report::{human_bytes, json_line, Table};

fn main() {
    let args = parse_args();
    let scale = args.scale;
    eprintln!("running Table 1 scenario at {scale:?} scale…");
    let mut tel = args.telemetry_handle();
    let world = args.build_world();
    let result = run_table1_in(&world, args.thread_count(), &mut tel);

    let mut table = Table::new(&[
        "SCION Control Plane Component",
        "Scope",
        "Frequency",
        "Messages",
        "Bytes",
    ]);
    for row in &result.rows {
        table.row(&[
            row.component.clone(),
            row.scope.clone(),
            row.frequency.clone(),
            row.messages.to_string(),
            human_bytes(row.bytes),
        ]);
    }
    println!("Table 1: Path Management Overhead Comparison (measured)");
    println!("{}", table.render());
    println!(
        "down-segment lookup cache hit rate: {:.1} % (the §4.1 amortization)",
        result.lookup_cache_hit_rate * 100.0
    );

    let path = write_json("table1", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
