//! Regenerates **Figure 5**: distribution of monthly control-plane
//! overhead relative to BGP, per monitor, for BGPsec, SCION core beaconing
//! (baseline and diversity-based), and SCION intra-ISD beaconing.
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig5 \
//!     [--scale tiny|small|paper] [--telemetry DIR] [--threads N] \
//!     [--source kind:path] [--ixp PATH]
//! ```

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_fig5_in;
use scion_core::report::{human_bytes, json_line, sci, Table};

fn main() {
    let args = parse_args();
    let scale = args.scale;
    eprintln!("running Figure 5 pipeline at {scale:?} scale (BGP/BGPsec month + SCION beaconing)…");
    let mut tel = args.telemetry_handle();
    let world = args.build_world();
    let result = run_fig5_in(&world, args.thread_count(), &mut tel);

    println!("Figure 5: monthly control-plane overhead relative to BGP (per monitor)");
    let mut table = Table::new(&[
        "monitor ASN",
        "BGP bytes/mo",
        "BGPsec/BGP",
        "core baseline/BGP",
        "core diversity/BGP",
        "intra-ISD/BGP",
    ]);
    let opt = |v: Option<f64>| v.map(sci).unwrap_or_else(|| "-".into());
    for r in &result.rows {
        table.row(&[
            r.monitor_asn.to_string(),
            human_bytes(r.bgp_bytes),
            sci(r.bgpsec_rel),
            opt(r.core_baseline_rel),
            opt(r.core_diversity_rel),
            opt(r.intra_isd_rel),
        ]);
    }
    println!("{}", table.render());

    println!("Distribution over monitors (box-plot statistics, log-scale in the paper):");
    let mut sum = Table::new(&["series", "monitors", "min", "median", "max", "mean"]);
    for s in &result.summaries {
        sum.row(&[
            s.series.clone(),
            s.monitors.to_string(),
            sci(s.summary.min),
            sci(s.summary.median),
            sci(s.summary.max),
            sci(s.summary.mean),
        ]);
    }
    println!("{}", sum.render());

    println!("Network-wide monthly totals:");
    println!("  BGP             {}", human_bytes(result.totals.bgp));
    println!("  BGPsec          {}", human_bytes(result.totals.bgpsec));
    println!(
        "  core baseline   {}",
        human_bytes(result.totals.core_baseline)
    );
    println!(
        "  core diversity  {}",
        human_bytes(result.totals.core_diversity)
    );
    println!("  intra-ISD       {}", human_bytes(result.totals.intra_isd));

    let path = write_json("fig5", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
