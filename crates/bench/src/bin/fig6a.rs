//! Regenerates **Figure 6a**: CDF of the minimum number of failing links
//! disconnecting an AS pair, for the SCION algorithms, BGP, and the
//! optimum.
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig6a [--scale tiny|small|paper]
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::analysis::Cdf;
use scion_core::experiments::run_fig6;
use scion_core::report::{json_line, Table};

fn main() {
    let scale = parse_scale();
    eprintln!("running Figure 6a pipeline at {scale:?} scale (5 beaconing runs + BGP)…");
    let result = run_fig6(scale);

    println!("Figure 6a: minimum number of failing links disconnecting an AS pair");
    let mut table = Table::new(&["series", "mean", "p25", "median", "p75", "max"]);
    let mut add = |name: &str, values: &[u64]| {
        let cdf = Cdf::from_u64(values.iter().copied());
        let s = cdf.summary();
        table.row(&[
            name.to_string(),
            format!("{:.2}", s.mean),
            format!("{}", s.q25),
            format!("{}", s.median),
            format!("{}", s.q75),
            format!("{}", s.max),
        ]);
    };
    add("Optimum", &result.optimum);
    for (name, values) in &result.series {
        add(name, values);
    }
    println!("{}", table.render());

    println!("CDF points (value -> cumulative fraction of AS pairs):");
    for (name, values) in &result.series {
        let cdf = Cdf::from_u64(values.iter().copied());
        let pts: Vec<String> = cdf
            .points(8)
            .into_iter()
            .map(|(v, f)| format!("{v}:{f:.2}"))
            .collect();
        println!("  {name:<24} {}", pts.join("  "));
    }

    let path = write_json("fig6a", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
