//! Structural diff of two telemetry dumps or bench JSON records — the
//! regression gate of the observability layer.
//!
//! ```text
//! cargo run --release -p scion-bench --bin telediff -- \
//!     <reference> <candidate> [--tol R] [--ignore-wall]
//! ```
//!
//! When both arguments are directories, compares the deterministic dump
//! files (`metrics.jsonl`, `series.jsonl`, `trace.jsonl`) line by line
//! with zero tolerance; `profile.jsonl` (wall clock) is skipped. When
//! both are files, compares them as JSON: counters, counts, and virtual
//! times must match exactly, while wall-clock figures (`*_ms`, `*_ns`,
//! `*per_sec`, `*_pct`, `speedup`) pass within a relative tolerance
//! (`--tol`, default 0.5) or are skipped entirely with `--ignore-wall`.
//!
//! Exit status: 0 when the candidate matches the reference, 1 when
//! differences were found (each printed on its own line), 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::exit;

use scion_core::telemetry::telediff::{diff_dumps, diff_json_files, DiffConfig, DiffEntry};

fn usage() -> ! {
    eprintln!("usage: telediff <reference> <candidate> [--tol R] [--ignore-wall]");
    exit(2);
}

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tol" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => cfg.wall_tolerance = t,
                    _ => {
                        eprintln!("--tol requires a non-negative number, got '{v}'");
                        exit(2);
                    }
                }
            }
            "--ignore-wall" => cfg.ignore_wall = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown argument '{other}'");
                exit(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    let [reference, candidate] = paths.as_slice() else {
        usage();
    };

    let both_dirs = reference.is_dir() && candidate.is_dir();
    let diffs: Vec<DiffEntry> = if both_dirs {
        diff_dumps(reference, candidate, &cfg)
    } else {
        diff_json_files(reference, candidate, &cfg)
    }
    .unwrap_or_else(|e| {
        eprintln!("telediff: {}: {e}", candidate.display());
        exit(2);
    });

    if diffs.is_empty() {
        println!(
            "telediff: {} matches {}",
            candidate.display(),
            reference.display()
        );
        return;
    }
    for d in &diffs {
        println!("{d}");
    }
    eprintln!(
        "telediff: {} difference(s) between {} and {}",
        diffs.len(),
        reference.display(),
        candidate.display()
    );
    exit(1);
}
