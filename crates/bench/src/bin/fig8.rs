//! Regenerates **Figure 8** (Appendix B): maximum capacity in multiples of
//! inter-AS links on the SCIONLab-scale topology.
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig8
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::analysis::Cdf;
use scion_core::experiments::run_fig78;
use scion_core::report::{json_line, Table};

fn main() {
    let scale = parse_scale();
    eprintln!("running Figure 8 (SCIONLab capacity) at {scale:?} scale…");
    let result = run_fig78(scale);

    println!("Figure 8: maximum capacity between SCIONLab core AS pairs");
    let mut table = Table::new(&["series", "Σ capacity / Σ optimum", "CDF points"]);
    let fmt_cdf = |values: &[u64]| {
        Cdf::from_u64(values.iter().copied())
            .points(6)
            .into_iter()
            .map(|(v, f)| format!("{v}:{f:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    table.row(&[
        "All Paths (optimum)".into(),
        "1.000".into(),
        fmt_cdf(&result.optimum),
    ]);
    for (name, frac) in &result.fraction_of_optimum {
        let values = &result
            .series
            .iter()
            .find(|(n, _)| n == name)
            .expect("series exists")
            .1;
        table.row(&[name.clone(), format!("{frac:.3}"), fmt_cdf(values)]);
    }
    println!("{}", table.render());

    let path = write_json("fig8", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
