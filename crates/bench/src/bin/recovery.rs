//! Failure-recovery experiment: live flows under link churn, SCMP fast
//! failover vs path-server re-query vs reconvergence baseline.
//!
//! ```text
//! cargo run --release -p scion-bench --bin recovery -- \
//!     [--scale tiny|small|paper] [--seed N] [--threads N] [--telemetry DIR] \
//!     [--source kind:path] [--ixp PATH]
//! ```
//!
//! Prints the three-arm recovery table (per-flow outage CDFs, failover and
//! revocation counters) and writes the JSON record to
//! `results/recovery.json`. With `--telemetry DIR`, dumps the recording
//! handle's deterministic telemetry (all three arms share one handle,
//! disambiguated by run label) under `DIR`.

use scion_bench::{parse_args, write_json, write_telemetry};
use scion_core::experiments::run_recovery_in;
use scion_core::report::{json_line, Table};

fn main() {
    let args = parse_args();
    let threads = args.thread_count().unwrap_or(4);
    eprintln!(
        "running recovery experiment at {:?} scale, {threads} worker threads…",
        args.scale
    );
    let mut tel = args.telemetry_handle();
    let world = args.build_world();
    let result = run_recovery_in(&world, threads, &mut tel);

    println!(
        "Recovery: {} flows across {} core ASes ({} links), seed {:#x}; \
         {} primary links down at t={}s, repair at t={}s, victim flow: {}",
        result.num_flows,
        result.num_ases,
        result.num_links,
        result.seed,
        result.primary_failed_links.len(),
        result.fault_at_us / 1_000_000,
        result.repair_at_us / 1_000_000,
        result
            .victim_flow
            .map_or("none".to_string(), |fi| format!("#{fi}")),
    );
    let mut table = Table::new(&[
        "arm",
        "sent",
        "delivered",
        "lost",
        "affected",
        "scmp",
        "failovers",
        "requeries",
        "revoked",
        "restored",
        "outage p50 ms",
        "outage max ms",
        "victim ms",
    ]);
    for arm in &result.arms {
        table.row(&[
            arm.name.to_string(),
            arm.packets_sent.to_string(),
            arm.delivered.to_string(),
            arm.lost.to_string(),
            arm.affected_flows.to_string(),
            arm.scmp_received.to_string(),
            arm.failovers.to_string(),
            arm.requeries.to_string(),
            arm.segments_revoked.to_string(),
            arm.segments_restored.to_string(),
            format!("{:.1}", arm.outage_us.p50 as f64 / 1e3),
            format!("{:.1}", arm.outage_us.max as f64 / 1e3),
            arm.victim_max_outage_us
                .map_or("-".to_string(), |us| format!("{:.1}", us as f64 / 1e3)),
        ]);
    }
    println!("{}", table.render());
    for arm in &result.arms {
        println!(
            "{}: {}/{} fast failovers within one RTT; limiter admitted {} of {} SCMPs",
            arm.name,
            arm.fast_failover_within_rtt,
            arm.fast_failover_flows,
            arm.scmp_admitted,
            arm.scmp_admitted + arm.scmp_suppressed,
        );
    }

    let path = write_json("recovery", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
    if let Some(dir) = &args.telemetry {
        write_telemetry(&tel, dir);
    }
}
