//! Runs the diversity-algorithm **ablation** (DESIGN.md §6): how each
//! scoring ingredient affects the overhead/quality trade-off.
//!
//! ```text
//! cargo run --release -p scion-bench --bin ablation [--scale tiny|small]
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::experiments::run_ablation;
use scion_core::report::{human_bytes, json_line, Table};

fn main() {
    let scale = parse_scale();
    eprintln!("running diversity ablation at {scale:?} scale (6 variants)…");
    let result = run_ablation(scale);

    println!("Diversity-algorithm ablation: overhead vs path quality");
    let mut table = Table::new(&["variant", "beaconing bytes", "fraction of optimum"]);
    for row in &result.rows {
        table.row(&[
            row.variant.clone(),
            human_bytes(row.total_bytes),
            format!("{:.3}", row.fraction_of_optimum),
        ]);
    }
    println!("{}", table.render());

    let path = write_json("ablation", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
