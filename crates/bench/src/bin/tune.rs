//! Runs the §4.2 **grid search** for the diversity parameters (α, β, γ,
//! score threshold): a coarse exponential sweep followed by a linear
//! refinement, on a small core topology.
//!
//! ```text
//! cargo run --release -p scion-bench --bin tune
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::beaconing::tuning::grid_search;
use scion_core::beaconing::BeaconingConfig;
use scion_core::prelude::*;
use scion_core::report::{human_bytes, Table};
use scion_core::topology::isd::assign_isds;

fn main() {
    let scale = parse_scale();
    let params = scale.params();
    eprintln!("running parameter grid search at {scale:?} scale…");

    // Tuning runs dozens of simulations, so use a deliberately small core.
    let internet = generate_internet(&GeneratorConfig::small(
        params.num_ases.min(200),
        params.seed,
    ));
    let (mut core, _) = prune_to_top_degree(&internet, params.num_core.min(16));
    assign_isds(&mut core, params.isd_size);

    let base = BeaconingConfig {
        interval: params.interval,
        pcb_lifetime: params.pcb_lifetime,
        ..BeaconingConfig::default()
    };
    let results = grid_search(&core, &base, params.sim_duration, params.seed);

    println!(
        "Grid search results (best first, top 15 of {}):",
        results.len()
    );
    let mut table = Table::new(&[
        "alpha",
        "beta",
        "gamma",
        "threshold",
        "bytes",
        "coverage",
        "links/pair",
        "objective",
    ]);
    for r in results.iter().take(15) {
        table.row(&[
            format!("{:.1}", r.params.alpha),
            format!("{:.1}", r.params.beta),
            format!("{:.1}", r.params.gamma),
            format!("{:.2}", r.params.score_threshold),
            human_bytes(r.total_bytes),
            format!("{:.2}", r.coverage),
            format!("{:.2}", r.avg_distinct_links),
            format!("{:.4}", r.objective),
        ]);
    }
    println!("{}", table.render());
    let best = &results[0];
    println!(
        "selected: alpha={:.1} beta={:.1} gamma={:.1} threshold={:.2}",
        best.params.alpha, best.params.beta, best.params.gamma, best.params.score_threshold
    );

    let rows: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "alpha": r.params.alpha,
                "beta": r.params.beta,
                "gamma": r.params.gamma,
                "threshold": r.params.score_threshold,
                "bytes": r.total_bytes,
                "coverage": r.coverage,
                "links_per_pair": r.avg_distinct_links,
                "objective": r.objective,
            })
        })
        .collect();
    let path = write_json("tune", &serde_json::to_string(&rows).expect("serializable"));
    eprintln!("JSON written to {}", path.display());
}
