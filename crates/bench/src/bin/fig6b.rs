//! Regenerates **Figure 6b**: CDF of the maximum capacity between AS
//! pairs in multiples of inter-AS links, and each series' fraction of the
//! optimal capacity (the paper's 99 % / 97 % / 95 % / 82 % numbers).
//!
//! ```text
//! cargo run --release -p scion-bench --bin fig6b [--scale tiny|small|paper]
//! ```

use scion_bench::{parse_scale, write_json};
use scion_core::analysis::Cdf;
use scion_core::experiments::run_fig6;
use scion_core::report::{json_line, Table};

fn main() {
    let scale = parse_scale();
    eprintln!("running Figure 6b pipeline at {scale:?} scale…");
    let result = run_fig6(scale);

    println!("Figure 6b: maximum capacity in multiples of inter-AS links");
    let mut table = Table::new(&["series", "Σ capacity / Σ optimum", "mean capacity"]);
    let opt_cdf = Cdf::from_u64(result.optimum.iter().copied());
    table.row(&[
        "All Paths (optimum)".into(),
        "1.000".into(),
        format!("{:.2}", opt_cdf.mean()),
    ]);
    for (name, frac) in &result.fraction_of_optimum {
        let values = &result
            .series
            .iter()
            .find(|(n, _)| n == name)
            .expect("series exists")
            .1;
        let cdf = Cdf::from_u64(values.iter().copied());
        table.row(&[
            name.clone(),
            format!("{frac:.3}"),
            format!("{:.2}", cdf.mean()),
        ]);
    }
    println!("{}", table.render());

    let path = write_json("fig6b", &json_line(&result));
    eprintln!("JSON written to {}", path.display());
}
