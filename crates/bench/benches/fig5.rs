//! Criterion wrapper for the Figure 5 pipeline at Tiny scale (BGP + BGPsec
//! month, SCION core baseline + diversity, intra-ISD).

use criterion::{criterion_group, criterion_main, Criterion};
use scion_core::experiments::run_fig5;
use scion_core::prelude::ExperimentScale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig5_bench", |b| {
        b.iter(|| run_fig5(ExperimentScale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
