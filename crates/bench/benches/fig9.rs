//! Criterion wrapper for the Appendix B Figure 9 pipeline (SCIONLab
//! per-interface beaconing bandwidth).

use criterion::{criterion_group, criterion_main, Criterion};
use scion_core::experiments::run_fig9;
use scion_core::prelude::ExperimentScale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig9_scionlab", |b| {
        b.iter(|| run_fig9(ExperimentScale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
