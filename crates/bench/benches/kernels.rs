//! Criterion microbenchmarks of the hot kernels behind every experiment:
//! PCB extension/validation, one beacon-server interval under each
//! algorithm, max-flow, and one BGP origin convergence.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use scion_core::beaconing::server::{egress_refs, BeaconServer};
use scion_core::beaconing::{Algorithm, BeaconingConfig, DiversityParams};
use scion_core::crypto::trc::TrustStore;
use scion_core::prelude::*;
use scion_core::topology::isd::assign_isds;

fn bench_topology() -> AsTopology {
    let internet = generate_internet(&GeneratorConfig::small(200, 42));
    let (mut core, _) = prune_to_top_degree(&internet, 16);
    assign_isds(&mut core, 4);
    core
}

fn trust_for(topo: &AsTopology) -> TrustStore {
    TrustStore::bootstrap(
        topo.as_indices()
            .map(|i| (topo.node(i).ia, topo.node(i).core)),
        SimTime::ZERO + Duration::from_days(365),
    )
}

fn bench_pcb(c: &mut Criterion) {
    let topo = bench_topology();
    let trust = trust_for(&topo);
    let origin = topo.node(AsIndex(0)).ia;
    let mid = topo.node(AsIndex(1)).ia;
    let leaf = topo.node(AsIndex(2)).ia;

    c.bench_function("pcb_originate_extend_3hops", |b| {
        b.iter(|| {
            let pcb = Pcb::originate(
                origin,
                IfId(1),
                SimTime::ZERO,
                Duration::from_hours(6),
                0,
                &trust,
            );
            let pcb = pcb.extend(mid, IfId(1), IfId(2), vec![], &trust);
            pcb.extend(leaf, IfId(1), IfId(2), vec![], &trust)
        })
    });

    let pcb = Pcb::originate(
        origin,
        IfId(1),
        SimTime::ZERO,
        Duration::from_hours(6),
        0,
        &trust,
    )
    .extend(mid, IfId(1), IfId(2), vec![], &trust)
    .extend(leaf, IfId(1), IfId(2), vec![], &trust);
    c.bench_function("pcb_validate_3hops", |b| {
        b.iter(|| {
            pcb.validate(&trust, SimTime::ZERO + Duration::from_secs(1))
                .unwrap()
        })
    });
}

fn bench_selection_interval(c: &mut Criterion) {
    let topo = bench_topology();
    let trust = trust_for(&topo);

    // Warm a server with beacons from every other core AS.
    let me = AsIndex(0);
    let core_links: Vec<_> = topo
        .node(me)
        .links
        .iter()
        .copied()
        .filter(|&li| {
            let l = topo.link(li);
            topo.node(l.a).core && topo.node(l.b).core
        })
        .collect();
    let egress = egress_refs(&topo, me, &core_links);

    let fill = |cfg: BeaconingConfig| {
        let mut srv = BeaconServer::new(&topo, me, cfg);
        for (li, nb, _, remote_if) in topo.incident(me) {
            let pcb = Pcb::originate(
                topo.node(nb).ia,
                remote_if,
                SimTime::ZERO,
                Duration::from_hours(6),
                0,
                &trust,
            );
            let _ = srv.handle_beacon(pcb, li, &topo, &trust, SimTime::from_micros(1));
        }
        srv
    };

    let now = SimTime::ZERO + Duration::from_mins(10);
    c.bench_function("interval_baseline", |b| {
        b.iter_batched(
            || fill(BeaconingConfig::default()),
            |mut srv| srv.run_interval(&topo, &trust, now, &egress, true),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("interval_diversity", |b| {
        b.iter_batched(
            || {
                fill(BeaconingConfig::with_algorithm(Algorithm::Diversity(
                    DiversityParams::default(),
                )))
            },
            |mut srv| srv.run_interval(&topo, &trust, now, &egress, true),
            BatchSize::SmallInput,
        )
    });
}

fn bench_maxflow(c: &mut Criterion) {
    let topo = bench_topology();
    let links: Vec<_> = topo.link_indices().collect();
    let (src, dst) = (AsIndex(0), AsIndex(15));
    c.bench_function("maxflow_core_graph", |b| {
        b.iter(|| max_flow(&topo, links.iter().copied(), src, dst))
    });
}

fn bench_bgp_origin(c: &mut Criterion) {
    let topo = generate_internet(&GeneratorConfig::small(200, 42));
    let origin = AsIndex(150);
    c.bench_function("bgp_origin_convergence_200as", |b| {
        b.iter(|| {
            scion_core::bgp::simulate_origin(
                &topo,
                origin,
                &scion_core::bgp::OriginSimConfig {
                    churn_resets: 0,
                    ..Default::default()
                },
            )
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_pcb, bench_selection_interval, bench_maxflow, bench_bgp_origin
}
criterion_main!(kernels);
