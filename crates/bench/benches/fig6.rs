//! Criterion wrapper for the Figures 6a/6b pipeline at Tiny scale
//! (five beaconing runs, BGP convergence, max-flow per sampled pair).

use criterion::{criterion_group, criterion_main, Criterion};
use scion_core::experiments::run_fig6;
use scion_core::prelude::ExperimentScale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig6_bench", |b| {
        b.iter(|| run_fig6(ExperimentScale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
