//! Criterion wrapper for the Appendix B Figures 7/8 pipeline (SCIONLab
//! quality, five algorithm/storage series over 420 core pairs).

use criterion::{criterion_group, criterion_main, Criterion};
use scion_core::experiments::run_fig78;
use scion_core::prelude::ExperimentScale;

fn bench(c: &mut Criterion) {
    c.bench_function("fig78_scionlab", |b| {
        b.iter(|| run_fig78(ExperimentScale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
