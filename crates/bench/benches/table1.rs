//! Criterion wrapper for the Table 1 scenario at Tiny scale: tracks the
//! end-to-end cost of regenerating the table.

use criterion::{criterion_group, criterion_main, Criterion};
use scion_core::experiments::run_table1;
use scion_core::prelude::ExperimentScale;

fn bench(c: &mut Criterion) {
    c.bench_function("table1_bench", |b| {
        b.iter(|| run_table1(ExperimentScale::Bench))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
