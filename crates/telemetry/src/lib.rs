//! `scion-telemetry`: a virtual-time metrics, tracing, and profiling layer
//! for the whole simulation stack.
//!
//! The paper's evaluation (§5, Appendix B) is built on *measuring* the
//! control plane — per-interface PCB traffic, beacon-store occupancy, path
//! quality over time. This crate provides the instruments:
//!
//! * [`metrics`] — a registry of named counters, gauges, and fixed-bucket
//!   histograms keyed by metric id + [`Label`] (AS / interface / link),
//!   with deterministic `BTreeMap` ordering so same-seed runs export
//!   byte-identical dumps;
//! * [`series`] — a virtual-time time-series recorder fed by a sampler
//!   that the simulation drivers fire from engine timer events on a
//!   configurable cadence;
//! * [`trace`] — a ring-buffered sink of typed PCB/segment lifecycle
//!   records with virtual timestamps, plus a no-op mode costing the hot
//!   path one branch;
//! * [`profile`] — wall-clock RAII spans aggregated into a per-phase
//!   profile (the only intentionally nondeterministic part);
//! * [`export`] — the JSONL dump format written by `--telemetry <dir>`,
//!   plus a Prometheus text-exposition rendering (`metrics.prom`);
//! * [`telediff`] — a structural regression gate: diffs two telemetry
//!   dumps or bench JSON records, exact on deterministic values and
//!   relative-tolerance on wall-clock figures.
//!
//! The [`Telemetry`] handle bundles all four and is threaded by mutable
//! reference through the simulator drivers, beacon servers, path servers,
//! and the BGP engine. [`Telemetry::disabled`] is the default everywhere:
//! a no-op handle whose per-event cost is a branch.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod profile;
pub mod series;
pub mod telediff;
pub mod trace;

use scion_types::{Duration, SimTime};

pub use metrics::{Histogram, Label, MetricsRegistry, DEFAULT_BUCKETS};
pub use profile::{phase, PhaseStats, Profiler, WALL_NS_BUCKETS};
pub use series::{Sample, SeriesRecorder};
pub use telediff::{diff_dumps, diff_json_files, DiffConfig, DiffEntry};
pub use trace::{TraceEvent, TraceRecord, TraceSink, DEFAULT_TRACE_CAPACITY};

/// Well-known metric ids, so instrument sites, reports, and documentation
/// agree on spelling. See README.md ("Telemetry & profiling") for the
/// catalogue with units.
pub mod ids {
    /// Gauge: events pending in the engine queue (timers + deliveries).
    pub const ENGINE_QUEUE_DEPTH: &str = "engine.queue_depth";
    /// Gauge: messages sent but not yet delivered.
    pub const ENGINE_IN_FLIGHT: &str = "engine.in_flight";
    /// Gauge: cumulative events popped by the engine.
    pub const ENGINE_EVENTS: &str = "engine.events_processed";
    /// Gauge (per AS): beacons currently in the beacon store.
    pub const STORE_OCCUPANCY: &str = "beacon_store.occupancy";
    /// Counter (per AS): store inserts that changed state.
    pub const STORE_INSERTS: &str = "beacon_store.inserts";
    /// Counter (per AS): storage-limit evictions.
    pub const STORE_EVICTIONS: &str = "beacon_store.evictions";
    /// Counter (per AS): beacons sent (origination + propagation).
    pub const BEACONS_SENT: &str = "beaconing.sent_messages";
    /// Counter (per AS): bytes of beacons sent.
    pub const BEACONS_SENT_BYTES: &str = "beaconing.sent_bytes";
    /// Counter (per AS): beacons delivered.
    pub const BEACONS_DELIVERED: &str = "beaconing.delivered";
    /// Counter (per AS): beacons dropped on receive (loop / invalid).
    pub const BEACONS_DROPPED: &str = "beaconing.dropped";
    /// Counter: beacons originated.
    pub const BEACONS_ORIGINATED: &str = "beaconing.originated";
    /// Histogram: age of a beacon at delivery, seconds.
    pub const PCB_AGE_AT_DELIVERY: &str = "beaconing.pcb_age_at_delivery_s";
    /// Histogram: hop count of delivered beacons.
    pub const PCB_HOPS_AT_DELIVERY: &str = "beaconing.pcb_hops_at_delivery";
    /// Gauge (per interface): cumulative bytes sent, sampled over time.
    pub const IFACE_BYTES: &str = "traffic.iface_bytes";
    /// Gauge (per AS): cumulative bytes sent by the AS.
    pub const NODE_BYTES: &str = "traffic.node_bytes";
    /// Gauge: cumulative bytes sent network-wide.
    pub const TOTAL_BYTES: &str = "traffic.total_bytes";
    /// Gauge: cumulative messages sent network-wide.
    pub const TOTAL_MESSAGES: &str = "traffic.total_messages";
    /// Counter: BGP announcements received, summed over ASes.
    pub const BGP_ANNOUNCES: &str = "bgp.announces_received";
    /// Counter: BGP withdrawals received, summed over ASes.
    pub const BGP_WITHDRAWS: &str = "bgp.withdraws_received";
    /// Counter: segment registrations at path servers.
    pub const PS_REGISTRATIONS: &str = "pathserver.registrations";
    /// Counter: lookups served by a path server.
    pub const PS_LOOKUPS: &str = "pathserver.lookups";
    /// Counter: lookups answered from the cache.
    pub const PS_CACHE_HITS: &str = "pathserver.cache_hits";
    /// Counter: fault events applied to the link-state overlay
    /// (state-changing ones only; duplicate downs don't count).
    pub const CHAOS_FAULT_EVENTS: &str = "chaos.fault_events";
    /// Gauge: links currently unusable (down or endpoint-AS down).
    pub const CHAOS_LINKS_DOWN: &str = "chaos.links_down";
    /// Counter: in-flight messages cancelled because their link failed
    /// mid-flight.
    pub const CHAOS_INFLIGHT_CANCELLED: &str = "chaos.in_flight_cancelled";
    /// Counter: sends/deliveries dropped because the link was already down.
    pub const CHAOS_DELIVERIES_DROPPED: &str = "chaos.deliveries_dropped";
    /// Gauge: fraction of probed AS pairs with >= 1 live path, in [0, 1].
    pub const CHAOS_LIVE_PAIR_FRACTION: &str = "chaos.live_pair_fraction";
    /// Counter: path-server segment invalidations triggered by faults.
    pub const CHAOS_PATHS_INVALIDATED: &str = "chaos.paths_invalidated";
    /// Counter: messages dropped on the wire by the stochastic loss model.
    pub const LOSS_MESSAGES_DROPPED: &str = "loss.messages_dropped";
    /// Counter: retransmissions issued by the reliable channel.
    pub const RELIABLE_RETRANSMITS: &str = "reliable.retransmits";
    /// Counter: acks received that settled a pending message.
    pub const RELIABLE_ACKS: &str = "reliable.acks_received";
    /// Counter: retransmit deadlines that fired (message still pending).
    pub const RELIABLE_TIMEOUTS: &str = "reliable.timeouts";
    /// Counter: duplicate deliveries suppressed at receivers.
    pub const RELIABLE_DUPLICATES: &str = "reliable.duplicates_suppressed";
    /// Counter: messages abandoned after max retransmit attempts.
    pub const RELIABLE_GIVE_UPS: &str = "reliable.give_ups";
    /// Counter: lookups answered from the cache after expiry (stale-served
    /// `Degraded` answers when a fresh lookup exhausted its retries).
    pub const PS_DEGRADED_SERVES: &str = "pathserver.degraded_serves";
    /// Counter: lookups short-circuited by the negative cache.
    pub const PS_NEGATIVE_HITS: &str = "pathserver.negative_cache_hits";
    /// Counter: lookups that missed the cache.
    pub const PS_CACHE_MISSES: &str = "pathserver.cache_misses";
    /// Counter: expired segments garbage-collected from authoritative
    /// stores on registration.
    pub const PS_SEGMENTS_PURGED: &str = "pathserver.segments_purged";
    /// Counter (per AS): packets a border router forwarded onward.
    pub const FWD_FORWARDED: &str = "dataplane.packets_forwarded";
    /// Counter: packets delivered to their destination AS.
    pub const FWD_DELIVERED: &str = "dataplane.packets_delivered";
    /// Counter: packets dropped anywhere on the forwarding path (the
    /// `dataplane.drop.*` counters break this down by reason).
    pub const FWD_DROPPED: &str = "dataplane.packets_dropped";
    /// Counter: SCMP error messages emitted by border routers.
    pub const FWD_SCMP_SENT: &str = "dataplane.scmp_sent";
    /// Counter: hop-field MACs that verified successfully.
    pub const FWD_MACS_VERIFIED: &str = "dataplane.macs_verified";
    /// Counter: hop-field MACs that failed verification.
    pub const FWD_MACS_REJECTED: &str = "dataplane.macs_rejected";
    /// Counter (per interface): packets sent out of an egress interface.
    pub const FWD_IFACE_PACKETS: &str = "dataplane.iface_packets";
    /// Counter (per interface): wire bytes sent out of an egress
    /// interface.
    pub const FWD_IFACE_BYTES: &str = "dataplane.iface_tx_bytes";
    /// Histogram: AS hop count of delivered packets (deterministic —
    /// virtual quantity, safe for byte-identical dumps).
    pub const FWD_HOPS_AT_DELIVERY: &str = "dataplane.hops_at_delivery";
    /// Counter: drops — hop field owned by a different AS.
    pub const FWD_DROP_WRONG_AS: &str = "dataplane.drop.wrong_as";
    /// Counter: drops — hop-field MAC invalid (path alteration).
    pub const FWD_DROP_BAD_MAC: &str = "dataplane.drop.bad_mac";
    /// Counter: drops — hop-field authorization expired.
    pub const FWD_DROP_EXPIRED: &str = "dataplane.drop.expired";
    /// Counter: drops — packet arrived on an unauthorized interface.
    pub const FWD_DROP_WRONG_INGRESS: &str = "dataplane.drop.wrong_ingress";
    /// Counter: drops — PCFS pointer ran past the end of the path.
    pub const FWD_DROP_PATH_EXHAUSTED: &str = "dataplane.drop.path_exhausted";
    /// Counter: drops — the next link on the path is down (SCMP emitted).
    pub const FWD_DROP_LINK_DOWN: &str = "dataplane.drop.link_down";
    /// Counter: drops — the hop field names a nonexistent egress
    /// interface.
    pub const FWD_DROP_NO_INTERFACE: &str = "dataplane.drop.no_interface";
    /// Counter: drops — the packet's source AS is not in the topology.
    pub const FWD_DROP_UNKNOWN_SOURCE: &str = "dataplane.drop.unknown_source";
    /// Counter: SCMP revocation signals suppressed by the per-link rate
    /// limiter (dedup within the holdoff window).
    pub const FWD_SCMP_SUPPRESSED: &str = "dataplane.scmp_suppressed";
    /// Counter: dataplane-driven revocation reactions executed at a path
    /// server (one per admitted SCMP signal, storms deduplicated).
    pub const PS_REVOCATIONS: &str = "pathserver.revocations";
    /// Counter: segments pulled from a path server by revocations.
    pub const PS_SEGMENTS_REVOKED: &str = "pathserver.segments_revoked";
    /// Counter: revoked segments re-registered after their revocation TTL
    /// lapsed (expiry-driven path restoration).
    pub const PS_SEGMENTS_RESTORED: &str = "pathserver.segments_restored";
    /// Counter: path-server operations rejected with a typed
    /// `ServerError` instead of panicking (wrong role / wrong segment
    /// type).
    pub const PS_REJECTED_OPS: &str = "pathserver.rejected_ops";
    /// Counter: SCMP notifications processed by endhost daemons.
    pub const RECOVERY_SCMP_RECEIVED: &str = "recovery.scmp_received";
    /// Counter: flows switched onto an alternate cached path on SCMP.
    pub const RECOVERY_FAILOVERS: &str = "recovery.path_failovers";
    /// Counter: flow paths restored after failure marks expired.
    pub const RECOVERY_RESTORED: &str = "recovery.paths_restored";
    /// Counter: path-server re-queries launched when every cached path of
    /// a flow was dead.
    pub const RECOVERY_REQUERIES: &str = "recovery.requeries";
    /// Counter: flow ticks skipped because the daemon had no usable path.
    pub const RECOVERY_NO_PATH: &str = "recovery.no_path_drops";
    /// Counter: requests admitted to the path server's bounded queue.
    pub const PS_OVERLOAD_ADMITTED: &str = "pathserver.overload_admitted";
    /// Counter: requests shed because the client's token bucket was
    /// empty.
    pub const PS_SHED_RATE_LIMITED: &str = "pathserver.shed_rate_limited";
    /// Counter: requests shed because the bounded queue was full of
    /// equal-or-higher-priority work.
    pub const PS_SHED_QUEUE_FULL: &str = "pathserver.shed_queue_full";
    /// Counter: queued requests evicted by higher-priority arrivals.
    pub const PS_SHED_EVICTED: &str = "pathserver.shed_evicted";
    /// Gauge: current depth of the bounded admission queue.
    pub const PS_QUEUE_DEPTH: &str = "pathserver.queue_depth";
    /// Histogram: time a request spent in the admission queue before
    /// service, in virtual microseconds.
    pub const PS_TIME_IN_QUEUE_US: &str = "pathserver.time_in_queue_us";
    /// Counter: times brownout mode was entered.
    pub const PS_BROWNOUT_ENTRIES: &str = "pathserver.brownout_entries";
    /// Counter: times brownout mode was exited.
    pub const PS_BROWNOUT_EXITS: &str = "pathserver.brownout_exits";
    /// Counter: cache-miss lookups answered stale under brownout or an
    /// open circuit breaker.
    pub const PS_BROWNOUT_STALE_SERVES: &str = "pathserver.brownout_stale_serves";
    /// Counter: circuit-breaker trips on consecutive upstream failures.
    pub const PS_BREAKER_TRIPS: &str = "pathserver.breaker_trips";
    /// Counter: half-open recovery probes dispatched by the breaker.
    pub const PS_BREAKER_PROBES: &str = "pathserver.breaker_probes";
    /// Counter: upstream lookups short-circuited while the breaker was
    /// open.
    pub const PS_BREAKER_SHORT_CIRCUITS: &str = "pathserver.breaker_short_circuits";
    /// Counter: busy signals that re-armed a reliable sender's deadline
    /// on the penalized backoff schedule.
    pub const RELIABLE_BUSY_BACKOFFS: &str = "reliable.busy_backoffs";
}

/// Configuration of a telemetry handle.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Virtual-time cadence of the gauge sampler.
    pub sample_cadence: Duration,
    /// Ring capacity of the trace sink.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            // One sample per beaconing interval of the paper's standard
            // configuration (10 min): time series stay small even for
            // multi-hour windows.
            sample_cadence: Duration::from_mins(10),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// The bundled telemetry handle threaded through the simulation stack.
///
/// Fields are public on purpose: instrument sites borrow them disjointly
/// (e.g. an RAII profile scope on [`Telemetry::profile`] while emitting a
/// trace through [`Telemetry::traces`]).
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// The run label attached to series samples and trace records.
    run: &'static str,
    /// Sampler cadence and other knobs.
    pub config: TelemetryConfig,
    /// Counters, gauges, and histograms.
    pub metrics: MetricsRegistry,
    /// Virtual-time samples of the live gauges.
    pub series: SeriesRecorder,
    /// Ring buffer of typed lifecycle records.
    pub traces: TraceSink,
    /// Wall-clock phase profiler (the only nondeterministic stream).
    pub profile: Profiler,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A recording handle.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            enabled: true,
            run: "",
            config,
            metrics: MetricsRegistry::new(),
            series: SeriesRecorder::new(),
            traces: TraceSink::ring(config.trace_capacity),
            profile: Profiler::enabled(),
        }
    }

    /// The no-op handle: every instrument call is a branch, nothing is
    /// allocated or recorded.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            run: "",
            config: TelemetryConfig::default(),
            metrics: MetricsRegistry::new(),
            series: SeriesRecorder::new(),
            traces: TraceSink::disabled(),
            profile: Profiler::disabled(),
        }
    }

    /// True when this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the run label for subsequent samples and trace records (used
    /// by multi-run experiments such as Figure 5 to distinguish the
    /// baseline run from the diversity run in one dump).
    pub fn begin_run(&mut self, run: &'static str) {
        self.run = run;
    }

    /// The current run label.
    pub fn run(&self) -> &'static str {
        self.run
    }

    /// Increments a counter (no-op when disabled).
    #[inline]
    pub fn inc(&mut self, id: &'static str, label: Label, delta: u64) {
        if self.enabled {
            self.metrics.inc_counter(id, label, delta);
        }
    }

    /// Records a gauge snapshot: updates the registry's gauge *and*
    /// appends a virtual-time sample (no-op when disabled).
    #[inline]
    pub fn sample(&mut self, now: SimTime, id: &'static str, label: Label, value: f64) {
        if self.enabled {
            self.metrics.set_gauge(id, label, value);
            self.series.record(self.run, now, id, label, value);
        }
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, id: &'static str, label: Label, value: f64) {
        if self.enabled {
            self.metrics.observe(id, label, value);
        }
    }

    /// Emits a trace record; the closure runs only when tracing is on.
    #[inline]
    pub fn trace_event(&mut self, now: SimTime, build: impl FnOnce() -> TraceEvent) {
        self.traces.emit_with(self.run, now, build);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let mut tel = Telemetry::disabled();
        tel.inc(ids::BEACONS_SENT, Label::Global, 1);
        tel.sample(SimTime::ZERO, ids::ENGINE_QUEUE_DEPTH, Label::Global, 1.0);
        tel.observe(ids::PCB_AGE_AT_DELIVERY, Label::Global, 1.0);
        tel.trace_event(SimTime::ZERO, || unreachable!("tracing disabled"));
        assert!(tel.metrics.is_empty());
        assert!(tel.series.is_empty());
        assert!(tel.traces.is_empty());
        assert!(tel.profile.is_empty());
    }

    #[test]
    fn enabled_handle_records_everything() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.begin_run("r1");
        tel.inc(ids::BEACONS_SENT, Label::As(3), 2);
        tel.sample(
            SimTime::from_micros(10),
            ids::ENGINE_QUEUE_DEPTH,
            Label::Global,
            4.0,
        );
        tel.observe(ids::PCB_HOPS_AT_DELIVERY, Label::Global, 3.0);
        tel.trace_event(SimTime::from_micros(11), || TraceEvent::PcbOriginated {
            node: 3,
            egress_if: 1,
            seq: 0,
        });
        assert_eq!(tel.metrics.counter(ids::BEACONS_SENT, Label::As(3)), 2);
        assert_eq!(
            tel.metrics.gauge(ids::ENGINE_QUEUE_DEPTH, Label::Global),
            Some(4.0)
        );
        assert_eq!(tel.series.samples()[0].run, "r1");
        assert_eq!(tel.traces.len(), 1);
    }
}
