//! The virtual-time time-series recorder.
//!
//! The evaluation's interesting behaviour lives in *time series* — queue
//! depth over the run, beacon-store occupancy as stores warm up, per-
//! interface send rates — not in end-of-run totals. The recorder stores
//! `(run, virtual time, metric id, label, value)` samples appended by a
//! sampler that the simulation driver fires from engine timer events on a
//! configurable virtual-time cadence (see
//! `scion_beaconing::driver`). Samples are kept in arrival order, which is
//! deterministic because the sampler itself is driven by the deterministic
//! event queue.

use scion_types::SimTime;
use serde::Serialize;

use crate::metrics::Label;

/// One sample of one gauge at one virtual instant.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Sample {
    /// Which run of a multi-run experiment produced this sample
    /// (e.g. `"core_baseline"`); empty for single-run drivers.
    pub run: &'static str,
    /// Virtual time of the snapshot, in microseconds.
    pub t_us: u64,
    /// Metric id (same namespace as the registry's gauges).
    pub id: &'static str,
    /// The AS / interface / link the sample is about.
    pub label: Label,
    /// The gauge value at the snapshot.
    pub value: f64,
}

/// Append-only store of virtual-time samples.
#[derive(Clone, Debug, Default)]
pub struct SeriesRecorder {
    samples: Vec<Sample>,
}

impl SeriesRecorder {
    /// An empty recorder.
    pub fn new() -> SeriesRecorder {
        SeriesRecorder::default()
    }

    /// Appends one sample.
    pub fn record(
        &mut self,
        run: &'static str,
        now: SimTime,
        id: &'static str,
        label: Label,
        value: f64,
    ) {
        self.samples.push(Sample {
            run,
            t_us: now.as_micros(),
            id,
            label,
            value,
        });
    }

    /// All samples in recording order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples of one metric id, in time order (recording order).
    pub fn of(&self, id: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.id == id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_types::Duration;

    #[test]
    fn records_in_order_and_filters_by_id() {
        let mut r = SeriesRecorder::new();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::ZERO + Duration::from_secs(60);
        r.record("a", t0, "depth", Label::Global, 1.0);
        r.record("a", t1, "depth", Label::Global, 2.0);
        r.record("a", t1, "occupancy", Label::As(3), 5.0);
        assert_eq!(r.len(), 3);
        let depth = r.of("depth");
        assert_eq!(depth.len(), 2);
        assert_eq!(depth[0].t_us, 0);
        assert_eq!(depth[1].t_us, 60_000_000);
        assert_eq!(depth[1].value, 2.0);
        assert_eq!(r.of("occupancy")[0].label, Label::As(3));
    }
}
