//! `telediff`: the structural telemetry regression gate.
//!
//! CI needs a machine-checkable answer to "did this change alter any
//! deterministic metric, or regress a wall-clock figure beyond noise?".
//! This module diffs two telemetry artifacts:
//!
//! * **Dump directories** (the `--telemetry <dir>` output):
//!   `metrics.jsonl`, `series.jsonl`, and `trace.jsonl` are fully
//!   deterministic for a given seed, so every line must match *exactly* —
//!   counters, trace counts, histogram buckets, virtual timestamps.
//!   `profile.jsonl` records real elapsed time and is skipped, exactly as
//!   the determinism tests exempt it.
//! * **Bench JSON records** (`results/*.json`): values are compared
//!   exactly, except fields recognized as wall-clock figures (`*_ms`,
//!   `*_ns`, `*per_sec`, `speedup`, …) which match under a relative
//!   tolerance — or are skipped entirely with
//!   [`DiffConfig::ignore_wall`] for cross-machine comparisons against
//!   checked-in references.
//!
//! The `telediff` harness binary wraps this into an exit code: `0` when
//! the artifacts agree, `1` with a printed report when they do not.

use std::fs;
use std::io;
use std::path::Path;

use serde_json::Value;

/// How strictly to compare.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Relative tolerance for wall-clock figures: `a` and `b` agree when
    /// `|a - b| <= wall_tolerance * max(|a|, |b|)`.
    pub wall_tolerance: f64,
    /// Skip wall-clock figures entirely (for cross-machine comparisons
    /// where even generous tolerances are meaningless).
    pub ignore_wall: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            // Generous by design: the gate must catch order-of-magnitude
            // regressions without tripping on same-machine jitter.
            wall_tolerance: 0.5,
            ignore_wall: false,
        }
    }
}

/// One observed difference.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// JSON-pointer-ish location, e.g. `metrics.jsonl:3/value`.
    pub path: String,
    /// Human-readable explanation (`12 != 13`).
    pub detail: String,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// True when a JSON object key names a wall-clock figure (real elapsed
/// time or anything derived from it). Virtual-time fields (`t_us`,
/// `sim_secs`) are deterministic and deliberately *not* matched.
pub fn is_wall_key(key: &str) -> bool {
    key.ends_with("_ms")
        || key.ends_with("_ns")
        || key.ends_with("per_sec")
        || key.ends_with("_pct")
        || key == "speedup"
        || key.starts_with("wall")
}

fn render(v: &Value) -> String {
    v.to_json()
}

fn numbers_match(a: f64, b: f64, cfg: &DiffConfig) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= cfg.wall_tolerance * scale
}

/// Recursively diffs two JSON values. `key` is the object key under which
/// the values sit (`""` at the root) — it decides wall-clock treatment.
fn diff_value(
    loc: &str,
    key: &str,
    a: &Value,
    b: &Value,
    cfg: &DiffConfig,
    out: &mut Vec<DiffEntry>,
) {
    let wall = is_wall_key(key);
    if wall && cfg.ignore_wall {
        return;
    }
    match (a, b) {
        (Value::Object(fa), Value::Object(fb)) => {
            for (k, va) in fa {
                match b.get(k) {
                    Some(vb) => diff_value(&format!("{loc}/{k}"), k, va, vb, cfg, out),
                    None => out.push(DiffEntry {
                        path: format!("{loc}/{k}"),
                        detail: "missing from candidate".into(),
                    }),
                }
            }
            for (k, _) in fb {
                if a.get(k).is_none() {
                    out.push(DiffEntry {
                        path: format!("{loc}/{k}"),
                        detail: "not present in reference".into(),
                    });
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            if xa.len() != xb.len() {
                out.push(DiffEntry {
                    path: loc.to_string(),
                    detail: format!("array length {} != {}", xa.len(), xb.len()),
                });
                return;
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_value(&format!("{loc}[{i}]"), key, va, vb, cfg, out);
            }
        }
        _ => {
            let (na, nb) = (a.as_f64(), b.as_f64());
            let matches = match (na, nb) {
                // Numbers under a wall-clock key compare with tolerance;
                // everything else must be exactly equal.
                (Some(x), Some(y)) if wall => numbers_match(x, y, cfg),
                _ => a == b,
            };
            if !matches {
                out.push(DiffEntry {
                    path: loc.to_string(),
                    detail: format!("{} != {}", render(a), render(b)),
                });
            }
        }
    }
}

/// Diffs two parsed JSON values (reference vs candidate).
pub fn diff_values(a: &Value, b: &Value, cfg: &DiffConfig) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    diff_value("", "", a, b, cfg, &mut out);
    out
}

/// Diffs two JSON files (e.g. `results/forwarding.json` against a
/// checked-in reference record).
pub fn diff_json_files(
    reference: &Path,
    candidate: &Path,
    cfg: &DiffConfig,
) -> io::Result<Vec<DiffEntry>> {
    let parse = |p: &Path| -> io::Result<Value> {
        let text = fs::read_to_string(p)?;
        Value::parse_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{p:?}: {e}")))
    };
    let (va, vb) = (parse(reference)?, parse(candidate)?);
    Ok(diff_values(&va, &vb, cfg))
}

/// The deterministic files of a telemetry dump, in comparison order.
pub const DETERMINISTIC_DUMP_FILES: [&str; 3] = ["metrics.jsonl", "series.jsonl", "trace.jsonl"];

/// Diffs two telemetry dump directories: every line of the deterministic
/// JSONL files must match exactly (`profile.jsonl` — wall clock — is
/// skipped). Lines are compared as parsed values, so a diff names the
/// offending field rather than a byte offset. The config is accepted for
/// signature symmetry with [`diff_json_files`] but ignored: deterministic
/// dumps tolerate nothing.
pub fn diff_dumps(
    reference: &Path,
    candidate: &Path,
    _cfg: &DiffConfig,
) -> io::Result<Vec<DiffEntry>> {
    let mut out = Vec::new();
    for name in DETERMINISTIC_DUMP_FILES {
        let (pa, pb) = (reference.join(name), candidate.join(name));
        match (pa.exists(), pb.exists()) {
            (false, false) => continue,
            (true, false) => {
                out.push(DiffEntry {
                    path: name.into(),
                    detail: "missing from candidate dump".into(),
                });
                continue;
            }
            (false, true) => {
                out.push(DiffEntry {
                    path: name.into(),
                    detail: "not present in reference dump".into(),
                });
                continue;
            }
            (true, true) => {}
        }
        let (ta, tb) = (fs::read_to_string(&pa)?, fs::read_to_string(&pb)?);
        let (la, lb): (Vec<&str>, Vec<&str>) = (ta.lines().collect(), tb.lines().collect());
        if la.len() != lb.len() {
            out.push(DiffEntry {
                path: name.into(),
                detail: format!("{} lines != {} lines", la.len(), lb.len()),
            });
        }
        for (i, (a, b)) in la.iter().zip(&lb).enumerate() {
            if a == b {
                continue;
            }
            let loc = format!("{name}:{}", i + 1);
            match (Value::parse_json(a), Value::parse_json(b)) {
                (Ok(va), Ok(vb)) => {
                    // Deterministic files tolerate nothing: compare with a
                    // zero-tolerance config regardless of key names.
                    let strict = DiffConfig {
                        wall_tolerance: 0.0,
                        ignore_wall: false,
                    };
                    let mut diffs = Vec::new();
                    diff_value(&loc, "", &va, &vb, &strict, &mut diffs);
                    if diffs.is_empty() {
                        // Byte difference without a structural one
                        // (e.g. float formatting) still counts.
                        diffs.push(DiffEntry {
                            path: loc.clone(),
                            detail: "lines differ".into(),
                        });
                    }
                    out.extend(diffs);
                }
                _ => out.push(DiffEntry {
                    path: loc,
                    detail: "unparseable line differs".into(),
                }),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::parse_json(s).unwrap()
    }

    #[test]
    fn identical_values_produce_no_diffs() {
        let a = v(r#"{"kind":"counter","id":"x","value":5,"nested":{"arr":[1,2,3]}}"#);
        assert!(diff_values(&a, &a.clone(), &DiffConfig::default()).is_empty());
    }

    #[test]
    fn counter_perturbation_is_detected() {
        let a = v(r#"{"delivered":100,"dropped":7}"#);
        let b = v(r#"{"delivered":100,"dropped":8}"#);
        let diffs = diff_values(&a, &b, &DiffConfig::default());
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "/dropped");
    }

    #[test]
    fn wall_clock_fields_tolerate_noise_but_not_regressions() {
        let cfg = DiffConfig {
            wall_tolerance: 0.5,
            ignore_wall: false,
        };
        let a = v(r#"{"wall_ms":100.0,"packets_per_sec":1000.0}"#);
        let near = v(r#"{"wall_ms":130.0,"packets_per_sec":900.0}"#);
        assert!(diff_values(&a, &near, &cfg).is_empty());
        let far = v(r#"{"wall_ms":100.0,"packets_per_sec":10.0}"#);
        let diffs = diff_values(&a, &far, &cfg);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "/packets_per_sec");
    }

    #[test]
    fn ignore_wall_skips_wall_figures_entirely() {
        let cfg = DiffConfig {
            wall_tolerance: 0.0,
            ignore_wall: true,
        };
        let a = v(r#"{"wall_ms":1.0,"delivered":5,"hop_latency":{"p50_ns":10.0}}"#);
        let b = v(r#"{"wall_ms":99.0,"delivered":5,"hop_latency":{"p50_ns":7777.0}}"#);
        assert!(diff_values(&a, &b, &cfg).is_empty());
        let bad = v(r#"{"wall_ms":1.0,"delivered":6,"hop_latency":{"p50_ns":10.0}}"#);
        assert_eq!(diff_values(&a, &bad, &cfg).len(), 1);
    }

    #[test]
    fn virtual_time_fields_are_exact() {
        let a = v(r#"{"t_us":100,"sim_secs":3600}"#);
        let b = v(r#"{"t_us":101,"sim_secs":3600}"#);
        let diffs = diff_values(&a, &b, &DiffConfig::default());
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "/t_us");
    }

    #[test]
    fn missing_and_extra_fields_are_reported() {
        let a = v(r#"{"x":1,"y":2}"#);
        let b = v(r#"{"x":1,"z":3}"#);
        let diffs = diff_values(&a, &b, &DiffConfig::default());
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"/y"));
        assert!(paths.contains(&"/z"));
    }

    #[test]
    fn array_length_mismatch_is_one_diff() {
        let a = v(r#"{"rows":[1,2,3]}"#);
        let b = v(r#"{"rows":[1,2]}"#);
        let diffs = diff_values(&a, &b, &DiffConfig::default());
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("length"));
    }

    #[test]
    fn dump_dirs_diff_exactly_and_skip_profile() {
        let root = std::env::temp_dir().join(format!("scion-telediff-{}", std::process::id()));
        let (da, db) = (root.join("a"), root.join("b"));
        for d in [&da, &db] {
            let _ = fs::remove_dir_all(d);
            fs::create_dir_all(d).unwrap();
        }
        let metrics = "{\"kind\":\"counter\",\"id\":\"x\",\"label\":\"Global\",\"value\":3}\n";
        for d in [&da, &db] {
            fs::write(d.join("metrics.jsonl"), metrics).unwrap();
            fs::write(d.join("series.jsonl"), "").unwrap();
            fs::write(d.join("trace.jsonl"), "").unwrap();
        }
        // Profile differs wildly — must not matter.
        fs::write(
            da.join("profile.jsonl"),
            "{\"phase\":\"p\",\"total_ns\":1}\n",
        )
        .unwrap();
        fs::write(
            db.join("profile.jsonl"),
            "{\"phase\":\"p\",\"total_ns\":999}\n",
        )
        .unwrap();
        assert!(diff_dumps(&da, &db, &DiffConfig::default())
            .unwrap()
            .is_empty());

        // A perturbed counter fails.
        fs::write(
            db.join("metrics.jsonl"),
            "{\"kind\":\"counter\",\"id\":\"x\",\"label\":\"Global\",\"value\":4}\n",
        )
        .unwrap();
        let diffs = diff_dumps(&da, &db, &DiffConfig::default()).unwrap();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].path.starts_with("metrics.jsonl:1"));
        fs::remove_dir_all(&root).ok();
    }
}
