//! The structured trace layer: typed lifecycle records with virtual
//! timestamps, collected into a bounded ring buffer.
//!
//! Tracing is designed for the PCB lifecycle the paper's §5 evaluation
//! reasons about: origination at a core AS, propagation hops, delivery,
//! store admission/eviction, and segment registration at path servers.
//! When tracing is off ([`TraceSink::disabled`]) the hot path pays exactly
//! one predictable branch: [`TraceSink::emit_with`] takes the record as a
//! closure, so a disabled sink never even constructs the record.

use std::collections::VecDeque;

use scion_types::{IsdAsn, SimTime};
use serde::Serialize;

/// A typed lifecycle event. Numeric fields are dense topology indices
/// (`AsIndex.0`, `LinkIndex.0`, `IfId.0`).
#[derive(Clone, Debug, PartialEq, Serialize)]
#[serde(tag = "event")]
pub enum TraceEvent {
    /// A core AS originated a fresh zero-hop beacon.
    PcbOriginated {
        /// Originating core AS.
        node: u32,
        /// Interface the beacon left through.
        egress_if: u16,
        /// Per-(AS, interface) origination sequence number.
        seq: u32,
    },
    /// An AS extended a stored beacon and sent it onward.
    PcbPropagated {
        /// Propagating AS.
        node: u32,
        /// The beacon's originating AS.
        origin: IsdAsn,
        /// Interface the extended beacon left through.
        egress_if: u16,
        /// Hop count after extension.
        hops: u32,
    },
    /// A beacon arrived at an AS over a link.
    PcbDelivered {
        /// Receiving AS.
        node: u32,
        /// The beacon's originating AS.
        origin: IsdAsn,
        /// Link the beacon arrived over.
        link: u32,
        /// Hop count at delivery.
        hops: u32,
    },
    /// A received beacon was admitted to (or refreshed in) the store.
    BeaconStored {
        /// Storing AS.
        node: u32,
        /// The beacon's originating AS.
        origin: IsdAsn,
        /// Hop count of the stored beacon.
        hops: u32,
    },
    /// The per-origin storage limit evicted a beacon.
    BeaconEvicted {
        /// Evicting AS.
        node: u32,
        /// The beacon's originating AS.
        origin: IsdAsn,
        /// Hop count of the evicted beacon.
        hops: u32,
        /// True if evicted because it expired (vs crowded out).
        expired: bool,
    },
    /// A path segment was registered at a path server.
    SegmentRegistered {
        /// The path server that accepted the registration.
        server: IsdAsn,
        /// The segment's non-core terminal AS.
        terminal: IsdAsn,
        /// `"up"`, `"down"`, or `"core"`.
        seg_type: &'static str,
        /// Hop count of the segment.
        hops: u32,
    },
    /// A link became unusable (fault injection).
    LinkDown {
        /// The failed link.
        link: u32,
    },
    /// A link recovered (fault injection).
    LinkUp {
        /// The recovered link.
        link: u32,
    },
    /// A path server invalidated stored segments after a link failure.
    PathInvalidated {
        /// The path server that invalidated the segments.
        node: u32,
        /// Origin AS of the invalidated segments.
        origin: IsdAsn,
        /// The failed link that triggered the invalidation.
        link: u32,
    },
    /// A border router verified a packet's current hop-field MAC.
    MacVerified {
        /// Verifying AS.
        node: u32,
        /// True when the MAC was valid under the AS's forwarding key.
        ok: bool,
    },
    /// A packet crossed a border router: entered via `ingress_if`, left
    /// via `egress_if` with the PCFS pointer advanced.
    PacketForwarded {
        /// Forwarding AS.
        node: u32,
        /// Interface the packet arrived on (`IfId::NONE.0` at the source).
        ingress_if: u16,
        /// Interface the packet left through.
        egress_if: u16,
    },
    /// A packet reached its destination AS and was handed to the local
    /// dispatcher.
    PacketDelivered {
        /// Destination AS.
        node: u32,
        /// AS hops of the packet's path (source and destination included).
        hops: u32,
    },
    /// A border router dropped a packet.
    PacketDropped {
        /// Dropping AS.
        node: u32,
        /// Stable drop reason code (e.g. `"bad_mac"`, `"expired"`,
        /// `"link_down"`); the same codes key the `dataplane.drop.*`
        /// counters.
        reason: &'static str,
    },
    /// A border router emitted an SCMP error back toward the source.
    ScmpEmitted {
        /// Emitting AS.
        node: u32,
        /// The interface the error concerns.
        interface: u16,
        /// SCMP message kind (e.g. `"external_interface_down"`).
        kind: &'static str,
    },
    /// An endhost daemon received an SCMP error for one of its flows.
    ScmpReceived {
        /// Receiving (source endhost) AS.
        node: u32,
        /// The AS that raised the error.
        origin: IsdAsn,
        /// The interface the error concerns.
        interface: u16,
    },
    /// An endhost daemon switched a flow onto an alternate cached path
    /// after an SCMP notification (§4.1 fast failover).
    PathFailedOver {
        /// Source endhost AS.
        node: u32,
        /// Destination of the failed-over flow.
        dst: IsdAsn,
    },
    /// A previously failed path became usable again (failure marks
    /// expired or revoked segments were restored after their TTL).
    PathRestored {
        /// The AS whose path set recovered (endhost or path server).
        node: u32,
        /// Destination whose path was restored.
        dst: IsdAsn,
    },
    /// A path server shed requests under overload. Emitted aggregated —
    /// at most one record per (tick, class, reason) — so a flash crowd
    /// cannot flush the trace ring with per-request records.
    RequestShed {
        /// The shedding path server's AS.
        node: u32,
        /// Request class (`"lookup_miss"`, `"lookup_hit"`,
        /// `"registration"`, `"revocation"`).
        class: &'static str,
        /// Why (`"rate_limited"`, `"queue_full"`, `"evicted"`).
        reason: &'static str,
        /// Requests shed in this aggregation window.
        count: u64,
    },
    /// Utilization crossed the brownout threshold: the server now answers
    /// cache-miss lookups from stale-but-valid cache instead of fanning
    /// out upstream.
    BrownoutEntered {
        /// The path server's AS.
        node: u32,
        /// Queue occupancy at the transition, permille of capacity.
        utilization_permille: u32,
    },
    /// Utilization fell below the brownout exit threshold: fresh upstream
    /// fan-out resumes.
    BrownoutExited {
        /// The path server's AS.
        node: u32,
        /// Queue occupancy at the transition, permille of capacity.
        utilization_permille: u32,
    },
    /// The circuit breaker on upstream core-server lookups tripped open
    /// after consecutive failures; lookups short-circuit to degraded
    /// serving until a half-open probe succeeds.
    BreakerTripped {
        /// The path server's AS.
        node: u32,
        /// Consecutive-failure count that tripped it.
        failures: u32,
    },
}

/// A trace record: the event plus its virtual timestamp and run label.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Run label (e.g. `"core_diversity"`).
    pub run: &'static str,
    /// Virtual timestamp, microseconds since the epoch.
    pub t_us: u64,
    /// The event itself.
    #[serde(flatten)]
    pub event: TraceEvent,
}

/// Ring-buffered sink of trace records.
#[derive(Clone, Debug)]
pub struct TraceSink {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    emitted: u64,
    dropped: u64,
}

/// Default ring capacity: enough for every PCB event of a small-scale run;
/// big runs wrap and keep the most recent window.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// A no-op sink: `emit_with` is a single branch, records are never
    /// constructed.
    pub fn disabled() -> TraceSink {
        TraceSink {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            emitted: 0,
            dropped: 0,
        }
    }

    /// A recording sink keeping at most `capacity` records (oldest records
    /// are dropped first once full).
    pub fn ring(capacity: usize) -> TraceSink {
        TraceSink {
            enabled: true,
            capacity: capacity.max(1),
            records: VecDeque::new(),
            emitted: 0,
            dropped: 0,
        }
    }

    /// True when this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a record; `build` runs only when the sink is enabled.
    #[inline]
    pub fn emit_with(
        &mut self,
        run: &'static str,
        now: SimTime,
        build: impl FnOnce() -> TraceEvent,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            run,
            t_us: now.as_micros(),
            event: build(),
        });
        self.emitted += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter()
    }

    /// Total records ever emitted (including since-dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records dropped because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u32) -> TraceEvent {
        TraceEvent::PcbOriginated {
            node: 0,
            egress_if: 1,
            seq,
        }
    }

    #[test]
    fn disabled_sink_never_builds_records() {
        let mut sink = TraceSink::disabled();
        sink.emit_with("", SimTime::ZERO, || panic!("must not be called"));
        assert_eq!(sink.len(), 0);
        assert_eq!(sink.emitted(), 0);
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let mut sink = TraceSink::ring(3);
        for seq in 0..5u32 {
            sink.emit_with("r", SimTime::from_micros(seq as u64), || ev(seq));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.emitted(), 5);
        assert_eq!(sink.dropped(), 2);
        let seqs: Vec<u32> = sink
            .records()
            .map(|r| match r.event {
                TraceEvent::PcbOriginated { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(sink.records().next().unwrap().t_us, 2);
    }

    #[test]
    fn records_serialize_with_event_tag() {
        let mut sink = TraceSink::ring(8);
        sink.emit_with("core", SimTime::from_micros(7), || ev(1));
        let json = serde_json::to_string(sink.records().next().unwrap()).unwrap();
        assert!(json.contains("\"event\":\"PcbOriginated\""), "{json}");
        assert!(json.contains("\"t_us\":7"), "{json}");
        assert!(json.contains("\"run\":\"core\""), "{json}");
    }
}
