//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, keyed by a static metric id plus a [`Label`].
//!
//! Every map in here is a `BTreeMap` keyed by `(&'static str, Label)`, so
//! iteration — and therefore every export — is in a deterministic order
//! independent of insertion history. Two runs with the same seed produce
//! byte-identical metric dumps; the determinism test in
//! `tests/telemetry_determinism.rs` relies on exactly this.

use std::collections::BTreeMap;

use serde::Serialize;

/// The label dimension of a metric instance.
///
/// Labels are raw dense indices (`AsIndex.0`, `LinkIndex.0`, `IfId.0`)
/// rather than the topology types themselves so the telemetry crate sits
/// below every other crate in the dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum Label {
    /// A network-wide metric.
    Global,
    /// Per-AS, by dense AS index.
    As(u32),
    /// Per-interface: `(AS index, interface id)`.
    Iface(u32, u16),
    /// Per-link, by dense link index.
    Link(u32),
}

/// A fixed-bucket histogram with cumulative-walk quantile estimation.
///
/// `bounds` are inclusive upper bucket boundaries in ascending order; one
/// implicit overflow bucket catches everything above the last bound. A
/// value exactly on a boundary lands in that boundary's bucket.
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Default histogram buckets: 1-2.5-5 decades from 0.001 to 100 000,
/// suiting both sub-second latencies (in seconds) and hop counts.
pub const DEFAULT_BUCKETS: [f64; 25] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
];

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&DEFAULT_BUCKETS)
    }
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (must be
    /// ascending; an overflow bucket is added automatically).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`None` before the first observation).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` before the first observation).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram into this one (bucket-wise addition of
    /// counts plus combined count / sum / min / max). Built for the
    /// shard/merge pattern: parallel shards each fill a local histogram
    /// and the serial merge folds them together in input order, keeping
    /// the result independent of thread scheduling.
    ///
    /// # Panics
    /// Panics when the two histograms have different bucket bounds —
    /// merging across incompatible layouts silently miscounts, so it is
    /// treated as a programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "Histogram::merge requires identical bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by cumulative walk:
    /// returns the upper bound of the bucket containing the target rank
    /// (clamped to the observed max for the overflow bucket, and to the
    /// observed min from below). Returns `None` when empty or when `q` is
    /// NaN; a `q` outside `[0, 1]` is clamped into the range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, at least 1.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let est = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                // The estimate can never lie outside the observed range.
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// The registry: all counters, gauges, and histograms of one run.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(&'static str, Label), u64>,
    gauges: BTreeMap<(&'static str, Label), f64>,
    histograms: BTreeMap<(&'static str, Label), Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero on first use.
    pub fn inc_counter(&mut self, id: &'static str, label: Label, delta: u64) {
        *self.counters.entry((id, label)).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, id: &'static str, label: Label, value: f64) {
        self.gauges.insert((id, label), value);
    }

    /// Records an observation into a histogram with [`DEFAULT_BUCKETS`].
    pub fn observe(&mut self, id: &'static str, label: Label, value: f64) {
        self.histograms
            .entry((id, label))
            .or_default()
            .observe(value);
    }

    /// Records an observation into a histogram with custom buckets (the
    /// buckets apply only on first creation of the instance).
    pub fn observe_with_buckets(
        &mut self,
        id: &'static str,
        label: Label,
        bounds: &[f64],
        value: f64,
    ) {
        self.histograms
            .entry((id, label))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, id: &'static str, label: Label) -> u64 {
        self.counters.get(&(id, label)).copied().unwrap_or(0)
    }

    /// Current gauge value.
    pub fn gauge(&self, id: &'static str, label: Label) -> Option<f64> {
        self.gauges.get(&(id, label)).copied()
    }

    /// The histogram instance for `(id, label)`, if any.
    pub fn histogram(&self, id: &'static str, label: Label) -> Option<&Histogram> {
        self.histograms.get(&(id, label))
    }

    /// All counters in deterministic `(id, label)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, Label, u64)> + '_ {
        self.counters.iter().map(|(&(id, l), &v)| (id, l, v))
    }

    /// All gauges in deterministic `(id, label)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, Label, f64)> + '_ {
        self.gauges.iter().map(|(&(id, l), &v)| (id, l, v))
    }

    /// All histograms in deterministic `(id, label)` order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, Label, &Histogram)> + '_ {
        self.histograms.iter().map(|(&(id, l), h)| (id, l, h))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("x", Label::Global, 2);
        m.inc_counter("x", Label::Global, 3);
        m.inc_counter("x", Label::As(1), 1);
        assert_eq!(m.counter("x", Label::Global), 5);
        assert_eq!(m.counter("x", Label::As(1)), 1);
        assert_eq!(m.counter("y", Label::Global), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", Label::Global, 3.0);
        m.set_gauge("depth", Label::Global, 7.0);
        assert_eq!(m.gauge("depth", Label::Global), Some(7.0));
        assert_eq!(m.gauge("other", Label::Global), None);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        // Insert in two different orders; iteration must agree.
        let mut a = MetricsRegistry::new();
        a.inc_counter("b", Label::As(2), 1);
        a.inc_counter("a", Label::Global, 1);
        a.inc_counter("b", Label::As(1), 1);
        let mut b = MetricsRegistry::new();
        b.inc_counter("b", Label::As(1), 1);
        b.inc_counter("b", Label::As(2), 1);
        b.inc_counter("a", Label::Global, 1);
        let ka: Vec<_> = a.counters().map(|(id, l, _)| (id, l)).collect();
        let kb: Vec<_> = b.counters().map(|(id, l, _)| (id, l)).collect();
        assert_eq!(ka, kb);
        assert_eq!(ka[0].0, "a");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0 (<= 1.0)
        h.observe(1.0); // bucket 0 (exactly on the boundary)
        h.observe(1.5); // bucket 1
        h.observe(2.0); // bucket 1 (exactly on the boundary)
        h.observe(4.0); // bucket 2
        h.observe(9.0); // overflow bucket
        assert_eq!(h.bucket_counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9.0));
        assert!((h.sum() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_walk_cumulative_counts() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // 10 observations in bucket 0, 10 in bucket 2.
        for _ in 0..10 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(3.0);
        }
        assert_eq!(h.quantile(0.25), Some(1.0)); // rank 5 -> bucket 0 bound
                                                 // Rank 15 -> bucket 2 bound (4.0), clamped to the observed max.
        assert_eq!(h.quantile(0.75), Some(3.0));
        // p100 never exceeds the observed max.
        assert_eq!(h.quantile(1.0), Some(3.0));
        // p0 never undershoots the observed min... it returns a bucket
        // bound clamped to [min, max].
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn histogram_overflow_quantile_reports_observed_max() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99), Some(200.0));
    }

    #[test]
    fn quantile_clamps_q_and_rejects_nan() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        // Out-of-range q clamps to the nearest valid quantile.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        // NaN has no meaningful rank.
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_within_observed_range() {
        let mut h = Histogram::new(&[1.0]);
        for v in [5.0, 50.0, 500.0] {
            h.observe(v);
        }
        // Every rank lands in the overflow bucket; estimates must stay
        // inside [min, max].
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((5.0..=500.0).contains(&est), "q={q} -> {est}");
        }
        assert_eq!(h.quantile(1.0), Some(500.0));
    }

    #[test]
    fn merge_combines_counts_sums_and_extremes() {
        let mut a = Histogram::new(&[1.0, 2.0, 4.0]);
        a.observe(0.5);
        a.observe(3.0);
        let mut b = Histogram::new(&[1.0, 2.0, 4.0]);
        b.observe(9.0);
        b.observe(1.5);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_counts(), &[1, 1, 1, 1]);
        assert!((a.sum() - 14.0).abs() < 1e-9);
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.max(), Some(9.0));
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new(&[1.0, 2.0, 4.0]));
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
        assert_eq!(a.max(), before.max());
    }

    #[test]
    fn merge_order_does_not_matter() {
        let mut parts = Vec::new();
        for shard in 0..4u64 {
            let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
            for i in 0..10u64 {
                h.observe((shard * 10 + i) as f64);
            }
            parts.push(h);
        }
        let mut fwd = Histogram::new(&[1.0, 10.0, 100.0]);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new(&[1.0, 10.0, 100.0]);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.bucket_counts(), rev.bucket_counts());
        assert_eq!(fwd.count(), rev.count());
        assert_eq!(fwd.min(), rev.min());
        assert_eq!(fwd.max(), rev.max());
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 3.0]);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn label_ordering_is_total_and_stable() {
        let mut labels = vec![
            Label::Link(0),
            Label::Iface(1, 2),
            Label::As(9),
            Label::Global,
            Label::As(1),
        ];
        labels.sort();
        assert_eq!(
            labels,
            vec![
                Label::Global,
                Label::As(1),
                Label::As(9),
                Label::Iface(1, 2),
                Label::Link(0),
            ]
        );
    }
}
