//! Wall-clock profiling scopes.
//!
//! Unlike everything else in this crate, the profiler measures *real* time
//! (`std::time::Instant`): its purpose is finding the hot phases of the
//! simulator itself — origination, propagation scoring, verification, path
//! combination — so later PRs can optimize them against a recorded
//! baseline. Profile numbers are therefore intentionally excluded from the
//! determinism guarantee and exported to their own file.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;

/// Phase name constants, so call sites and reports agree on spelling.
pub mod phase {
    /// Core beacon servers signing fresh zero-hop PCBs.
    pub const ORIGINATION: &str = "beaconing.origination";
    /// Candidate scoring and selection (baseline k-shortest or Algorithm 1).
    pub const SELECTION: &str = "beaconing.selection_scoring";
    /// Signature-chain verification of received PCBs.
    pub const VERIFICATION: &str = "beaconing.verification";
    /// Up + core + down segment combination into end-to-end paths.
    pub const COMBINATION: &str = "proto.path_combination";
    /// One per-origin BGP convergence run.
    pub const BGP_CONVERGENCE: &str = "bgp.origin_convergence";
    /// The full monthly BGP churn workload.
    pub const BGP_MONTH: &str = "bgp.monthly_workload";
    /// The telemetry sampler reading the live gauges.
    pub const SAMPLING: &str = "telemetry.sampling";
    /// Draining one causally-closed window from the event queue.
    pub const PAR_POP: &str = "parallel.window_pop";
    /// Sharded per-AS execution across the worker pool.
    pub const PAR_SHARD: &str = "parallel.shard_exec";
    /// Serial merge: side effects replayed in deterministic event order.
    pub const PAR_MERGE: &str = "parallel.merge";
}

/// Accumulated wall-clock statistics of one phase.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct PhaseStats {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Longest single scope, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean scope duration in nanoseconds (0 when no calls).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Aggregates wall-clock spans per named phase.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    enabled: bool,
    phases: BTreeMap<&'static str, PhaseStats>,
}

impl Profiler {
    /// A profiler that records nothing; `scope` costs one branch.
    pub fn disabled() -> Profiler {
        Profiler {
            enabled: false,
            phases: BTreeMap::new(),
        }
    }

    /// A recording profiler.
    pub fn enabled() -> Profiler {
        Profiler {
            enabled: true,
            phases: BTreeMap::new(),
        }
    }

    /// True when spans are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens an RAII span: the elapsed wall-clock time is recorded under
    /// `phase` when the returned guard drops.
    #[inline]
    pub fn scope(&mut self, phase: &'static str) -> ProfileScope<'_> {
        let start = if self.enabled {
            Some(Instant::now())
        } else {
            None
        };
        ProfileScope {
            profiler: self,
            phase,
            start,
        }
    }

    /// Records an already-measured span.
    pub fn record_ns(&mut self, phase: &'static str, ns: u64) {
        let stats = self.phases.entry(phase).or_default();
        stats.calls += 1;
        stats.total_ns += ns;
        stats.max_ns = stats.max_ns.max(ns);
    }

    /// The stats of one phase, if it ever ran.
    pub fn stats(&self, phase: &str) -> Option<PhaseStats> {
        self.phases.get(phase).copied()
    }

    /// All phases in deterministic name order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, PhaseStats)> + '_ {
        self.phases.iter().map(|(&p, &s)| (p, s))
    }

    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// RAII guard of one wall-clock span; records on drop.
pub struct ProfileScope<'a> {
    profiler: &'a mut Profiler,
    phase: &'static str,
    start: Option<Instant>,
}

impl Drop for ProfileScope<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.profiler.record_ns(self.phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_calls_and_time() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            let _g = p.scope(phase::VERIFICATION);
            std::hint::black_box(42);
        }
        let s = p.stats(phase::VERIFICATION).unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.max_ns <= s.total_ns);
        assert!(s.mean_ns() <= s.max_ns);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        {
            let _g = p.scope(phase::ORIGINATION);
        }
        assert!(p.is_empty());
        assert!(p.stats(phase::ORIGINATION).is_none());
    }

    #[test]
    fn record_ns_tracks_max() {
        let mut p = Profiler::enabled();
        p.record_ns("x", 10);
        p.record_ns("x", 30);
        p.record_ns("x", 20);
        let s = p.stats("x").unwrap();
        assert_eq!((s.calls, s.total_ns, s.max_ns), (3, 60, 30));
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn phases_iterate_in_name_order() {
        let mut p = Profiler::enabled();
        p.record_ns("z", 1);
        p.record_ns("a", 1);
        p.record_ns("m", 1);
        let names: Vec<_> = p.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
