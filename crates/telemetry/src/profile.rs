//! Wall-clock profiling scopes.
//!
//! Unlike everything else in this crate, the profiler measures *real* time
//! (`std::time::Instant`): its purpose is finding the hot phases of the
//! simulator itself — origination, propagation scoring, verification, path
//! combination — so later PRs can optimize them against a recorded
//! baseline. Profile numbers are therefore intentionally excluded from the
//! determinism guarantee and exported to their own file.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;

use crate::metrics::Histogram;

/// Phase name constants, so call sites and reports agree on spelling.
pub mod phase {
    /// Core beacon servers signing fresh zero-hop PCBs.
    pub const ORIGINATION: &str = "beaconing.origination";
    /// Candidate scoring and selection (baseline k-shortest or Algorithm 1).
    pub const SELECTION: &str = "beaconing.selection_scoring";
    /// Signature-chain verification of received PCBs.
    pub const VERIFICATION: &str = "beaconing.verification";
    /// Up + core + down segment combination into end-to-end paths.
    pub const COMBINATION: &str = "proto.path_combination";
    /// One per-origin BGP convergence run.
    pub const BGP_CONVERGENCE: &str = "bgp.origin_convergence";
    /// The full monthly BGP churn workload.
    pub const BGP_MONTH: &str = "bgp.monthly_workload";
    /// The telemetry sampler reading the live gauges.
    pub const SAMPLING: &str = "telemetry.sampling";
    /// Draining one causally-closed window from the event queue.
    pub const PAR_POP: &str = "parallel.window_pop";
    /// Sharded per-AS execution across the worker pool.
    pub const PAR_SHARD: &str = "parallel.shard_exec";
    /// Serial merge: side effects replayed in deterministic event order.
    pub const PAR_MERGE: &str = "parallel.merge";
    /// One border-router hop: full PCFS pipeline (checks + advance).
    pub const FWD_FORWARD: &str = "dataplane.forward_hop";
    /// One packet walked source to destination across the router chain.
    pub const FWD_DELIVER: &str = "dataplane.deliver";
    /// One hop-field MAC verification.
    pub const FWD_VERIFY: &str = "dataplane.hopfield_verify";
    /// Sharded batch MAC verification across the worker pool.
    pub const FWD_BATCH_SHARD: &str = "dataplane.batch_shard";
    /// Serial merge applying batched forwarding decisions in input order.
    pub const FWD_BATCH_MERGE: &str = "dataplane.batch_merge";
    /// One flow tick of the recovery experiment: path selection plus the
    /// hop-major wave drive of every packet sent this tick.
    pub const RECOVERY_TICK: &str = "recovery.flow_tick";
    /// Endhost/path-server reaction to one SCMP arrival (failover,
    /// revocation, retransmit).
    pub const RECOVERY_SCMP: &str = "recovery.scmp_handling";
    /// Path-server re-query round trip handling (request, response,
    /// retry bookkeeping).
    pub const RECOVERY_REQUERY: &str = "recovery.requery";
    /// One admission round of the overload experiment: token buckets,
    /// queue offers, shed decisions.
    pub const OVERLOAD_ADMIT: &str = "overload.admission";
    /// One service round: queue drain, cache/upstream serving, brownout
    /// and breaker bookkeeping.
    pub const OVERLOAD_SERVE: &str = "overload.service";
}

/// Bucket bounds (nanoseconds) of the per-phase latency histograms: 1-2.5-5
/// decades from 100 ns to 1 s, matching the sub-microsecond-to-seconds
/// range of per-packet forwarding work.
pub const WALL_NS_BUCKETS: [f64; 22] = [
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
    250_000.0, 500_000.0, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
];

/// Accumulated wall-clock statistics of one phase.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct PhaseStats {
    /// Number of completed scopes.
    pub calls: u64,
    /// Total wall-clock time, nanoseconds.
    pub total_ns: u64,
    /// Longest single scope, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean scope duration in nanoseconds (0 when no calls).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Aggregates wall-clock spans per named phase, including a fixed-bucket
/// latency histogram ([`WALL_NS_BUCKETS`]) for per-span quantiles.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    enabled: bool,
    phases: BTreeMap<&'static str, PhaseStats>,
    latencies: BTreeMap<&'static str, Histogram>,
}

impl Profiler {
    /// A profiler that records nothing; `scope` costs one branch.
    pub fn disabled() -> Profiler {
        Profiler {
            enabled: false,
            phases: BTreeMap::new(),
            latencies: BTreeMap::new(),
        }
    }

    /// A recording profiler.
    pub fn enabled() -> Profiler {
        Profiler {
            enabled: true,
            phases: BTreeMap::new(),
            latencies: BTreeMap::new(),
        }
    }

    /// True when spans are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens an RAII span: the elapsed wall-clock time is recorded under
    /// `phase` when the returned guard drops.
    #[inline]
    pub fn scope(&mut self, phase: &'static str) -> ProfileScope<'_> {
        let start = if self.enabled {
            Some(Instant::now())
        } else {
            None
        };
        ProfileScope {
            profiler: self,
            phase,
            start,
        }
    }

    /// Records an already-measured span.
    pub fn record_ns(&mut self, phase: &'static str, ns: u64) {
        let stats = self.phases.entry(phase).or_default();
        stats.calls += 1;
        stats.total_ns += ns;
        stats.max_ns = stats.max_ns.max(ns);
        self.latencies
            .entry(phase)
            .or_insert_with(|| Histogram::new(&WALL_NS_BUCKETS))
            .observe(ns as f64);
    }

    /// Folds a shard-local latency histogram (bounds [`WALL_NS_BUCKETS`],
    /// values in nanoseconds) into a phase: bucket counts merge via
    /// [`Histogram::merge`] and the phase stats absorb the shard's call
    /// count, total, and max. This is how the parallel batch-verification
    /// shards report per-item latencies without sharing the profiler.
    pub fn absorb(&mut self, phase: &'static str, shard: &Histogram) {
        if shard.count() == 0 {
            return;
        }
        let stats = self.phases.entry(phase).or_default();
        stats.calls += shard.count();
        stats.total_ns += shard.sum() as u64;
        stats.max_ns = stats.max_ns.max(shard.max().unwrap_or(0.0) as u64);
        self.latencies
            .entry(phase)
            .or_insert_with(|| Histogram::new(&WALL_NS_BUCKETS))
            .merge(shard);
    }

    /// The stats of one phase, if it ever ran.
    pub fn stats(&self, phase: &str) -> Option<PhaseStats> {
        self.phases.get(phase).copied()
    }

    /// The latency histogram of one phase (nanosecond buckets), if the
    /// phase ever ran.
    pub fn latency(&self, phase: &str) -> Option<&Histogram> {
        self.latencies.get(phase)
    }

    /// All phases in deterministic name order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, PhaseStats)> + '_ {
        self.phases.iter().map(|(&p, &s)| (p, s))
    }

    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// RAII guard of one wall-clock span; records on drop.
pub struct ProfileScope<'a> {
    profiler: &'a mut Profiler,
    phase: &'static str,
    start: Option<Instant>,
}

impl Drop for ProfileScope<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.profiler.record_ns(self.phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_calls_and_time() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            let _g = p.scope(phase::VERIFICATION);
            std::hint::black_box(42);
        }
        let s = p.stats(phase::VERIFICATION).unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.max_ns <= s.total_ns);
        assert!(s.mean_ns() <= s.max_ns);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        {
            let _g = p.scope(phase::ORIGINATION);
        }
        assert!(p.is_empty());
        assert!(p.stats(phase::ORIGINATION).is_none());
    }

    #[test]
    fn record_ns_tracks_max() {
        let mut p = Profiler::enabled();
        p.record_ns("x", 10);
        p.record_ns("x", 30);
        p.record_ns("x", 20);
        let s = p.stats("x").unwrap();
        assert_eq!((s.calls, s.total_ns, s.max_ns), (3, 60, 30));
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn record_ns_feeds_the_latency_histogram() {
        let mut p = Profiler::enabled();
        p.record_ns("x", 200);
        p.record_ns("x", 2_000);
        p.record_ns("x", 2_000_000);
        let h = p.latency("x").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(200.0));
        assert_eq!(h.max(), Some(2_000_000.0));
        assert!(h.quantile(0.5).unwrap() >= 200.0);
        assert!(p.latency("never").is_none());
    }

    #[test]
    fn absorb_merges_shard_histograms_into_stats_and_latency() {
        let mut p = Profiler::enabled();
        p.record_ns("v", 1_000);
        let mut shard = Histogram::new(&WALL_NS_BUCKETS);
        shard.observe(500.0);
        shard.observe(3_000.0);
        p.absorb("v", &shard);
        let s = p.stats("v").unwrap();
        assert_eq!(s.calls, 3);
        assert_eq!(s.total_ns, 4_500);
        assert_eq!(s.max_ns, 3_000);
        assert_eq!(p.latency("v").unwrap().count(), 3);
        // Absorbing an empty shard is a no-op.
        p.absorb("v", &Histogram::new(&WALL_NS_BUCKETS));
        assert_eq!(p.stats("v").unwrap().calls, 3);
    }

    #[test]
    fn phases_iterate_in_name_order() {
        let mut p = Profiler::enabled();
        p.record_ns("z", 1);
        p.record_ns("a", 1);
        p.record_ns("m", 1);
        let names: Vec<_> = p.phases().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
