//! JSONL and Prometheus export of a telemetry dump.
//!
//! A dump directory holds five files:
//!
//! * `metrics.jsonl` — final counter/gauge/histogram values, one JSON
//!   object per line, in deterministic `(kind, id, label)` order;
//! * `metrics.prom` — the same final values in Prometheus text
//!   exposition format, ready for `promtool` or a file-based scrape;
//! * `series.jsonl` — the virtual-time samples, in recording order;
//! * `trace.jsonl` — the retained trace records, oldest first;
//! * `profile.jsonl` — the per-phase wall-clock profile (calls, totals,
//!   and latency quantiles from the [`crate::profile::WALL_NS_BUCKETS`]
//!   histograms). This file is the only nondeterministic one; same-seed
//!   runs produce byte-identical `metrics`/`series`/`trace` files
//!   (asserted by `tests/telemetry_determinism.rs`).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use serde::Serialize;

use crate::metrics::{Histogram, Label};
use crate::profile::PhaseStats;
use crate::Telemetry;

#[derive(Serialize)]
struct CounterRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    value: u64,
}

#[derive(Serialize)]
struct GaugeRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    value: f64,
}

#[derive(Serialize)]
struct HistogramRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    count: u64,
    sum: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    min: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    max: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p50: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p90: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p99: Option<f64>,
    bounds: &'a [f64],
    bucket_counts: &'a [u64],
}

impl<'a> HistogramRow<'a> {
    fn new(id: &'a str, label: Label, h: &'a Histogram) -> HistogramRow<'a> {
        HistogramRow {
            kind: "histogram",
            id,
            label,
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            bounds: h.bounds(),
            bucket_counts: h.bucket_counts(),
        }
    }
}

#[derive(Serialize)]
struct ProfileRow<'a> {
    phase: &'a str,
    calls: u64,
    total_ns: u64,
    mean_ns: u64,
    max_ns: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    p50_ns: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p90_ns: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p99_ns: Option<f64>,
}

fn write_line<T: Serialize>(out: &mut impl Write, row: &T) -> io::Result<()> {
    let json = serde_json::to_string(row).expect("telemetry rows are serializable");
    out.write_all(json.as_bytes())?;
    out.write_all(b"\n")
}

impl Telemetry {
    /// Writes the four JSONL files of this dump into `dir` (created if
    /// needed). Existing files are overwritten.
    pub fn export_jsonl(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;

        let mut metrics = io::BufWriter::new(fs::File::create(dir.join("metrics.jsonl"))?);
        for (id, label, value) in self.metrics.counters() {
            write_line(
                &mut metrics,
                &CounterRow {
                    kind: "counter",
                    id,
                    label,
                    value,
                },
            )?;
        }
        // The sink's own accounting rides along as synthetic counters so
        // a dump is self-describing about ring-buffer truncation.
        write_line(
            &mut metrics,
            &CounterRow {
                kind: "counter",
                id: "trace.records_emitted",
                label: Label::Global,
                value: self.traces.emitted(),
            },
        )?;
        write_line(
            &mut metrics,
            &CounterRow {
                kind: "counter",
                id: "trace.records_dropped",
                label: Label::Global,
                value: self.traces.dropped(),
            },
        )?;
        for (id, label, value) in self.metrics.gauges() {
            write_line(
                &mut metrics,
                &GaugeRow {
                    kind: "gauge",
                    id,
                    label,
                    value,
                },
            )?;
        }
        for (id, label, h) in self.metrics.histograms() {
            write_line(&mut metrics, &HistogramRow::new(id, label, h))?;
        }
        metrics.flush()?;

        let mut series = io::BufWriter::new(fs::File::create(dir.join("series.jsonl"))?);
        for sample in self.series.samples() {
            write_line(&mut series, sample)?;
        }
        series.flush()?;

        let mut trace = io::BufWriter::new(fs::File::create(dir.join("trace.jsonl"))?);
        for record in self.traces.records() {
            write_line(&mut trace, record)?;
        }
        trace.flush()?;

        let mut profile = io::BufWriter::new(fs::File::create(dir.join("profile.jsonl"))?);
        for (phase, stats) in self.profile.phases() {
            let PhaseStats {
                calls,
                total_ns,
                max_ns,
            } = stats;
            let latency = self.profile.latency(phase);
            write_line(
                &mut profile,
                &ProfileRow {
                    phase,
                    calls,
                    total_ns,
                    mean_ns: stats.mean_ns(),
                    max_ns,
                    p50_ns: latency.and_then(|h| h.quantile(0.5)),
                    p90_ns: latency.and_then(|h| h.quantile(0.9)),
                    p99_ns: latency.and_then(|h| h.quantile(0.99)),
                },
            )?;
        }
        profile.flush()?;

        let mut prom = io::BufWriter::new(fs::File::create(dir.join("metrics.prom"))?);
        self.export_prometheus(&mut prom)?;
        prom.flush()
    }

    /// Writes the final metric values in Prometheus text exposition
    /// format: one `# TYPE` line per metric family, dotted ids mapped to
    /// underscore names, and labels rendered per [`Label`] variant.
    /// Histograms expand into cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`, as the format requires.
    pub fn export_prometheus(&self, out: &mut impl Write) -> io::Result<()> {
        let mut last_family = String::new();

        for (id, label, value) in self.metrics.counters() {
            let name = prom_family(out, &mut last_family, id, "counter")?;
            writeln!(out, "{name}{} {value}", prom_labels(label))?;
        }
        for (id, value) in [
            ("trace.records_emitted", self.traces.emitted()),
            ("trace.records_dropped", self.traces.dropped()),
        ] {
            let name = prom_family(out, &mut last_family, id, "counter")?;
            writeln!(out, "{name} {value}")?;
        }
        for (id, label, value) in self.metrics.gauges() {
            let name = prom_family(out, &mut last_family, id, "gauge")?;
            writeln!(out, "{name}{} {value}", prom_labels(label))?;
        }
        for (id, label, h) in self.metrics.histograms() {
            let name = prom_family(out, &mut last_family, id, "histogram")?;
            let labels = prom_label_pairs(label);
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
                cumulative += count;
                let le = prom_number(*bound);
                writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    prom_render_pairs(labels.iter().cloned().chain([("le".into(), le)]))
                )?;
            }
            writeln!(
                out,
                "{name}_bucket{} {}",
                prom_render_pairs(labels.iter().cloned().chain([("le".into(), "+Inf".into())])),
                h.count()
            )?;
            writeln!(
                out,
                "{name}_sum{} {}",
                prom_labels(label),
                prom_number(h.sum())
            )?;
            writeln!(out, "{name}_count{} {}", prom_labels(label), h.count())?;
        }
        Ok(())
    }
}

/// Emits the `# TYPE` header when entering a new metric family; returns
/// the sanitized family name.
fn prom_family(
    out: &mut impl Write,
    last_family: &mut String,
    id: &str,
    kind: &str,
) -> io::Result<String> {
    let name = prom_name(id);
    if name != *last_family {
        writeln!(out, "# TYPE {name} {kind}")?;
        *last_family = name.clone();
    }
    Ok(name)
}

/// Maps a dotted metric id onto a legal Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gets a `_` prefix.
fn prom_name(id: &str) -> String {
    let mut name: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        name.insert(0, '_');
    }
    name
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders an `f64` without a trailing `.0` for integral values, so bucket
/// bounds read `le="1000"` rather than `le="1000.0"`.
fn prom_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn prom_label_pairs(label: Label) -> Vec<(String, String)> {
    match label {
        Label::Global => Vec::new(),
        Label::As(i) => vec![("as".into(), i.to_string())],
        Label::Iface(a, i) => vec![
            ("as".into(), a.to_string()),
            ("iface".into(), i.to_string()),
        ],
        Label::Link(l) => vec![("link".into(), l.to_string())],
    }
}

fn prom_render_pairs(pairs: impl Iterator<Item = (String, String)>) -> String {
    let rendered: Vec<String> = pairs
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(&v)))
        .collect();
    if rendered.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", rendered.join(","))
    }
}

fn prom_labels(label: Label) -> String {
    prom_render_pairs(prom_label_pairs(label).into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use crate::TelemetryConfig;
    use scion_types::SimTime;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scion-telemetry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_writes_parseable_jsonl() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.inc("x.count", Label::Global, 3);
        tel.sample(SimTime::from_micros(5), "x.gauge", Label::As(1), 2.0);
        tel.observe("x.hist", Label::Global, 1.5);
        tel.trace_event(SimTime::from_micros(9), || TraceEvent::PcbOriginated {
            node: 0,
            egress_if: 1,
            seq: 0,
        });
        tel.profile.record_ns("phase.x", 1234);

        let dir = tmp_dir("export");
        tel.export_jsonl(&dir).unwrap();
        for name in [
            "metrics.jsonl",
            "series.jsonl",
            "trace.jsonl",
            "profile.jsonl",
        ] {
            let content = fs::read_to_string(dir.join(name)).unwrap();
            assert!(!content.is_empty(), "{name} empty");
            for line in content.lines() {
                let v: serde_json::Value = serde_json::from_str(line).unwrap();
                assert!(v.is_object(), "{name}: {line}");
            }
        }
        let metrics = fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert!(metrics.contains("\"x.count\""));
        assert!(metrics.contains("trace.records_emitted"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prometheus_export_renders_types_labels_and_buckets() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.inc("dataplane.packets_forwarded", Label::As(3), 12);
        tel.inc("dataplane.packets_forwarded", Label::As(7), 1);
        tel.sample(
            SimTime::from_micros(1),
            "store.occupancy",
            Label::Global,
            0.5,
        );
        for v in [0.5, 1.5, 99.0] {
            tel.observe("dataplane.hops_at_delivery", Label::Global, v);
        }

        let mut buf = Vec::new();
        tel.export_prometheus(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        assert!(text.contains("# TYPE dataplane_packets_forwarded counter"));
        // One TYPE line per family even with several label sets.
        assert_eq!(
            text.matches("# TYPE dataplane_packets_forwarded").count(),
            1
        );
        assert!(text.contains("dataplane_packets_forwarded{as=\"3\"} 12"));
        assert!(text.contains("dataplane_packets_forwarded{as=\"7\"} 1"));
        assert!(text.contains("# TYPE store_occupancy gauge"));
        assert!(text.contains("store_occupancy 0.5"));
        assert!(text.contains("# TYPE trace_records_emitted counter"));
        assert!(text.contains("# TYPE dataplane_hops_at_delivery histogram"));
        // Buckets are cumulative and end with +Inf == _count.
        assert!(text.contains("dataplane_hops_at_delivery_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dataplane_hops_at_delivery_sum 101"));
        assert!(text.contains("dataplane_hops_at_delivery_count 3"));
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn prometheus_names_and_label_values_are_escaped() {
        assert_eq!(
            prom_name("dataplane.drop.bad-mac"),
            "dataplane_drop_bad_mac"
        );
        assert_eq!(prom_name("7seconds"), "_7seconds");
        assert_eq!(prom_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(prom_number(1000.0), "1000");
        assert_eq!(prom_number(2.5e6), "2500000");
        assert_eq!(prom_number(0.25), "0.25");
    }

    #[test]
    fn profile_rows_carry_latency_quantiles() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        for ns in [200u64, 2_000, 20_000, 200_000] {
            tel.profile.record_ns("phase.q", ns);
        }
        let dir = tmp_dir("prof-q");
        tel.export_jsonl(&dir).unwrap();
        let text = fs::read_to_string(dir.join("profile.jsonl")).unwrap();
        let row: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(row.get("calls").unwrap().as_u64(), Some(4));
        let p50 = row.get("p50_ns").unwrap().as_f64().unwrap();
        let p99 = row.get("p99_ns").unwrap().as_f64().unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_content_exports_identical_bytes() {
        let build = || {
            let mut tel = Telemetry::new(TelemetryConfig::default());
            tel.inc("b", Label::As(2), 1);
            tel.inc("a", Label::Global, 7);
            tel.sample(SimTime::from_micros(1), "g", Label::Global, 0.5);
            tel
        };
        let (da, db) = (tmp_dir("det-a"), tmp_dir("det-b"));
        build().export_jsonl(&da).unwrap();
        build().export_jsonl(&db).unwrap();
        for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
            assert_eq!(
                fs::read(da.join(name)).unwrap(),
                fs::read(db.join(name)).unwrap(),
                "{name} differs"
            );
        }
        fs::remove_dir_all(&da).ok();
        fs::remove_dir_all(&db).ok();
    }
}
