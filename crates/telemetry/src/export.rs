//! JSONL export of a telemetry dump.
//!
//! A dump directory holds four files:
//!
//! * `metrics.jsonl` — final counter/gauge/histogram values, one JSON
//!   object per line, in deterministic `(kind, id, label)` order;
//! * `series.jsonl` — the virtual-time samples, in recording order;
//! * `trace.jsonl` — the retained trace records, oldest first;
//! * `profile.jsonl` — the per-phase wall-clock profile. This file is the
//!   only nondeterministic one; same-seed runs produce byte-identical
//!   `metrics`/`series`/`trace` files (asserted by
//!   `tests/telemetry_determinism.rs`).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use serde::Serialize;

use crate::metrics::{Histogram, Label};
use crate::profile::PhaseStats;
use crate::Telemetry;

#[derive(Serialize)]
struct CounterRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    value: u64,
}

#[derive(Serialize)]
struct GaugeRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    value: f64,
}

#[derive(Serialize)]
struct HistogramRow<'a> {
    kind: &'static str,
    id: &'a str,
    label: Label,
    count: u64,
    sum: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    min: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    max: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p50: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p90: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p99: Option<f64>,
    bounds: &'a [f64],
    bucket_counts: &'a [u64],
}

impl<'a> HistogramRow<'a> {
    fn new(id: &'a str, label: Label, h: &'a Histogram) -> HistogramRow<'a> {
        HistogramRow {
            kind: "histogram",
            id,
            label,
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            bounds: h.bounds(),
            bucket_counts: h.bucket_counts(),
        }
    }
}

#[derive(Serialize)]
struct ProfileRow<'a> {
    phase: &'a str,
    calls: u64,
    total_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

fn write_line<T: Serialize>(out: &mut impl Write, row: &T) -> io::Result<()> {
    let json = serde_json::to_string(row).expect("telemetry rows are serializable");
    out.write_all(json.as_bytes())?;
    out.write_all(b"\n")
}

impl Telemetry {
    /// Writes the four JSONL files of this dump into `dir` (created if
    /// needed). Existing files are overwritten.
    pub fn export_jsonl(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;

        let mut metrics = io::BufWriter::new(fs::File::create(dir.join("metrics.jsonl"))?);
        for (id, label, value) in self.metrics.counters() {
            write_line(
                &mut metrics,
                &CounterRow {
                    kind: "counter",
                    id,
                    label,
                    value,
                },
            )?;
        }
        // The sink's own accounting rides along as synthetic counters so
        // a dump is self-describing about ring-buffer truncation.
        write_line(
            &mut metrics,
            &CounterRow {
                kind: "counter",
                id: "trace.records_emitted",
                label: Label::Global,
                value: self.traces.emitted(),
            },
        )?;
        write_line(
            &mut metrics,
            &CounterRow {
                kind: "counter",
                id: "trace.records_dropped",
                label: Label::Global,
                value: self.traces.dropped(),
            },
        )?;
        for (id, label, value) in self.metrics.gauges() {
            write_line(
                &mut metrics,
                &GaugeRow {
                    kind: "gauge",
                    id,
                    label,
                    value,
                },
            )?;
        }
        for (id, label, h) in self.metrics.histograms() {
            write_line(&mut metrics, &HistogramRow::new(id, label, h))?;
        }
        metrics.flush()?;

        let mut series = io::BufWriter::new(fs::File::create(dir.join("series.jsonl"))?);
        for sample in self.series.samples() {
            write_line(&mut series, sample)?;
        }
        series.flush()?;

        let mut trace = io::BufWriter::new(fs::File::create(dir.join("trace.jsonl"))?);
        for record in self.traces.records() {
            write_line(&mut trace, record)?;
        }
        trace.flush()?;

        let mut profile = io::BufWriter::new(fs::File::create(dir.join("profile.jsonl"))?);
        for (phase, stats) in self.profile.phases() {
            let PhaseStats {
                calls,
                total_ns,
                max_ns,
            } = stats;
            write_line(
                &mut profile,
                &ProfileRow {
                    phase,
                    calls,
                    total_ns,
                    mean_ns: stats.mean_ns(),
                    max_ns,
                },
            )?;
        }
        profile.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use crate::TelemetryConfig;
    use scion_types::SimTime;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scion-telemetry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_writes_parseable_jsonl() {
        let mut tel = Telemetry::new(TelemetryConfig::default());
        tel.inc("x.count", Label::Global, 3);
        tel.sample(SimTime::from_micros(5), "x.gauge", Label::As(1), 2.0);
        tel.observe("x.hist", Label::Global, 1.5);
        tel.trace_event(SimTime::from_micros(9), || TraceEvent::PcbOriginated {
            node: 0,
            egress_if: 1,
            seq: 0,
        });
        tel.profile.record_ns("phase.x", 1234);

        let dir = tmp_dir("export");
        tel.export_jsonl(&dir).unwrap();
        for name in [
            "metrics.jsonl",
            "series.jsonl",
            "trace.jsonl",
            "profile.jsonl",
        ] {
            let content = fs::read_to_string(dir.join(name)).unwrap();
            assert!(!content.is_empty(), "{name} empty");
            for line in content.lines() {
                let v: serde_json::Value = serde_json::from_str(line).unwrap();
                assert!(v.is_object(), "{name}: {line}");
            }
        }
        let metrics = fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        assert!(metrics.contains("\"x.count\""));
        assert!(metrics.contains("trace.records_emitted"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_content_exports_identical_bytes() {
        let build = || {
            let mut tel = Telemetry::new(TelemetryConfig::default());
            tel.inc("b", Label::As(2), 1);
            tel.inc("a", Label::Global, 7);
            tel.sample(SimTime::from_micros(1), "g", Label::Global, 0.5);
            tel
        };
        let (da, db) = (tmp_dir("det-a"), tmp_dir("det-b"));
        build().export_jsonl(&da).unwrap();
        build().export_jsonl(&db).unwrap();
        for name in ["metrics.jsonl", "series.jsonl", "trace.jsonl"] {
            assert_eq!(
                fs::read(da.join(name)).unwrap(),
                fs::read(db.join(name)).unwrap(),
                "{name} differs"
            );
        }
        fs::remove_dir_all(&da).ok();
        fs::remove_dir_all(&db).ok();
    }
}
