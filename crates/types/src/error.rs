//! Error type shared across the workspace's foundational crates.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors arising from identifier construction and parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// AS number outside the 48-bit SCION namespace.
    InvalidAsn(u64),
    /// Generic parse failure with context.
    Parse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidAsn(v) => write!(f, "AS number {v} exceeds the 48-bit SCION namespace"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_context() {
        let e = Error::InvalidAsn(1 << 50);
        assert!(e.to_string().contains("48-bit"));
        let e = Error::Parse("bad ISD".into());
        assert!(e.to_string().contains("bad ISD"));
    }
}
