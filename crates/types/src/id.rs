//! SCION identifiers: ISD numbers, 48-bit AS numbers, interface ids, and
//! canonical inter-domain link ids.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// An Isolation Domain number (paper §2.1).
///
/// ISDs group ASes that agree on a trust root configuration. The paper
/// expects "a few hundred" ISDs globally, so 16 bits is ample (this matches
/// the SCION wire format).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Isd(pub u16);

impl Isd {
    /// The wildcard ISD (0), used where the ISD is not yet assigned.
    pub const WILDCARD: Isd = Isd(0);

    /// Returns true if this is the wildcard ISD.
    pub fn is_wildcard(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Isd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Isd {
    fn from(v: u16) -> Self {
        Isd(v)
    }
}

/// A SCION AS number.
///
/// SCION inherits today's 32-bit AS numbers and extends the namespace to 48
/// bits (paper §2.1). We store it in a `u64` and enforce the 48-bit bound at
/// construction.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Asn(u64);

impl Asn {
    /// Maximum representable AS number (2^48 - 1).
    pub const MAX: u64 = (1 << 48) - 1;

    /// Creates an AS number, validating the 48-bit bound.
    pub fn new(v: u64) -> Result<Asn> {
        if v > Self::MAX {
            return Err(Error::InvalidAsn(v));
        }
        Ok(Asn(v))
    }

    /// Creates an AS number from a value known to be in range.
    ///
    /// # Panics
    /// Panics if `v` exceeds the 48-bit space; use for literals and indices.
    pub fn from_u64(v: u64) -> Asn {
        Asn::new(v).expect("ASN out of 48-bit range")
    }

    /// The raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// True if this AS number fits in the legacy 32-bit BGP space.
    pub fn is_bgp_compatible(self) -> bool {
        self.0 <= u64::from(u32::MAX)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // SCION renders large ASNs in colon-separated 16-bit groups;
        // BGP-compatible ones decimal.
        if self.is_bgp_compatible() {
            write!(f, "{}", self.0)
        } else {
            write!(
                f,
                "{:x}:{:x}:{:x}",
                (self.0 >> 32) & 0xffff,
                (self.0 >> 16) & 0xffff,
                self.0 & 0xffff
            )
        }
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(u64::from(v))
    }
}

/// The `⟨ISD, AS⟩` tuple on which all SCION inter-domain routing operates
/// (paper §2.1). Local (intra-AS) addresses are deliberately out of scope for
/// routing and therefore absent here.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct IsdAsn {
    /// The isolation domain.
    pub isd: Isd,
    /// The AS number within (48-bit space).
    pub asn: Asn,
}

impl IsdAsn {
    /// Creates an `⟨ISD, AS⟩` tuple.
    pub fn new(isd: Isd, asn: Asn) -> IsdAsn {
        IsdAsn { isd, asn }
    }
}

impl fmt::Display for IsdAsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.isd, self.asn)
    }
}

impl FromStr for IsdAsn {
    type Err = Error;

    /// Parses the `isd-asn` rendering, e.g. `"1-42"`.
    fn from_str(s: &str) -> Result<IsdAsn> {
        let (isd, asn) = s
            .split_once('-')
            .ok_or_else(|| Error::Parse(format!("missing '-' in ISD-AS '{s}'")))?;
        let isd: u16 = isd
            .parse()
            .map_err(|_| Error::Parse(format!("bad ISD in '{s}'")))?;
        Ok(IsdAsn::new(Isd(isd), parse_asn(asn, s)?))
    }
}

/// Parses an ASN in either decimal (BGP-compatible) or `x:y:z`
/// colon-separated hex-group (extended 48-bit) notation.
fn parse_asn(asn: &str, ctx: &str) -> Result<Asn> {
    if asn.contains(':') {
        let groups: Vec<&str> = asn.split(':').collect();
        if groups.len() != 3 {
            return Err(Error::Parse(format!("bad hex-group ASN in '{ctx}'")));
        }
        let mut v: u64 = 0;
        for g in groups {
            let g = u64::from_str_radix(g, 16)
                .map_err(|_| Error::Parse(format!("bad hex group in '{ctx}'")))?;
            if g > 0xffff {
                return Err(Error::Parse(format!("hex group overflow in '{ctx}'")));
            }
            v = (v << 16) | g;
        }
        Asn::new(v)
    } else {
        let v: u64 = asn
            .parse()
            .map_err(|_| Error::Parse(format!("bad ASN in '{ctx}'")))?;
        Asn::new(v)
    }
}

/// An inter-domain interface identifier, unique per AS (paper §2.2).
///
/// A path segment names, for each hop, the interfaces through which the PCB
/// entered and left the AS; `0` is reserved for "no interface" (the first
/// ingress / last egress of a segment).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct IfId(pub u16);

impl IfId {
    /// The "no interface" sentinel used at segment ends.
    pub const NONE: IfId = IfId(0);

    /// True if this is the "no interface" sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for IfId {
    fn from(v: u16) -> Self {
        IfId(v)
    }
}

/// One end of an inter-domain link: an AS plus the interface id within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkEnd {
    /// The AS on this side of the link.
    pub ia: IsdAsn,
    /// The interface identifier within that AS.
    pub ifid: IfId,
}

impl LinkEnd {
    /// Creates a link end from an AS and one of its interface ids.
    pub fn new(ia: IsdAsn, ifid: IfId) -> LinkEnd {
        LinkEnd { ia, ifid }
    }
}

impl fmt::Display for LinkEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.ia, self.ifid)
    }
}

/// A canonical identifier for one physical inter-domain link.
///
/// The paper's diversity metric is *link* disjointness: "we consider
/// inter-domain links between two interfaces of neighboring ASes" (§4.2).
/// Because neighbouring ASes may be connected by several parallel links,
/// identifying a link by the AS pair alone is insufficient — both interface
/// ids are part of the identity. The constructor canonicalizes end order so
/// the same physical link hashes identically regardless of traversal
/// direction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId {
    lo: LinkEnd,
    hi: LinkEnd,
}

impl LinkId {
    /// Creates a canonical link id from its two ends (order-insensitive).
    pub fn new(a: LinkEnd, b: LinkEnd) -> LinkId {
        if a <= b {
            LinkId { lo: a, hi: b }
        } else {
            LinkId { lo: b, hi: a }
        }
    }

    /// The lexicographically smaller end.
    pub fn lo(&self) -> LinkEnd {
        self.lo
    }

    /// The lexicographically larger end.
    pub fn hi(&self) -> LinkEnd {
        self.hi
    }

    /// Given one AS on the link, returns the other end, if this AS is on it.
    pub fn other_end(&self, ia: IsdAsn) -> Option<LinkEnd> {
        if self.lo.ia == ia {
            Some(self.hi)
        } else if self.hi.ia == ia {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True if `ia` is one of the link's endpoints.
    pub fn touches(&self, ia: IsdAsn) -> bool {
        self.lo.ia == ia || self.hi.ia == ia
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<->{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ia(isd: u16, asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(isd), Asn::from_u64(asn))
    }

    #[test]
    fn asn_bounds_enforced() {
        assert!(Asn::new(Asn::MAX).is_ok());
        assert!(Asn::new(Asn::MAX + 1).is_err());
        assert_eq!(Asn::from_u64(7).value(), 7);
    }

    #[test]
    #[should_panic(expected = "48-bit")]
    fn asn_from_u64_panics_out_of_range() {
        let _ = Asn::from_u64(1 << 48);
    }

    #[test]
    fn asn_display_formats() {
        assert_eq!(Asn::from_u64(64512).to_string(), "64512");
        // 0x0001_0000_0000 is beyond the 32-bit space -> grouped hex.
        assert_eq!(Asn::from_u64(1 << 32).to_string(), "1:0:0");
    }

    #[test]
    fn isd_asn_roundtrips_via_display() {
        let x = ia(3, 424242);
        let parsed: IsdAsn = x.to_string().parse().unwrap();
        assert_eq!(parsed, x);
    }

    #[test]
    fn isd_asn_parse_rejects_garbage() {
        assert!("nodash".parse::<IsdAsn>().is_err());
        assert!("x-1".parse::<IsdAsn>().is_err());
        assert!("1-x".parse::<IsdAsn>().is_err());
        assert!(format!("1-{}", Asn::MAX + 1).parse::<IsdAsn>().is_err());
    }

    #[test]
    fn link_id_is_direction_independent() {
        let a = LinkEnd::new(ia(1, 10), IfId(1));
        let b = LinkEnd::new(ia(1, 20), IfId(7));
        assert_eq!(LinkId::new(a, b), LinkId::new(b, a));
    }

    #[test]
    fn parallel_links_are_distinct() {
        // Two links between the same AS pair but different interfaces must
        // not collapse: link-level diversity depends on it (paper §4.2).
        let l1 = LinkId::new(
            LinkEnd::new(ia(1, 10), IfId(1)),
            LinkEnd::new(ia(1, 20), IfId(1)),
        );
        let l2 = LinkId::new(
            LinkEnd::new(ia(1, 10), IfId(2)),
            LinkEnd::new(ia(1, 20), IfId(2)),
        );
        assert_ne!(l1, l2);
    }

    #[test]
    fn link_other_end_and_touches() {
        let a = LinkEnd::new(ia(1, 10), IfId(1));
        let b = LinkEnd::new(ia(2, 20), IfId(9));
        let l = LinkId::new(a, b);
        assert_eq!(l.other_end(ia(1, 10)), Some(b));
        assert_eq!(l.other_end(ia(2, 20)), Some(a));
        assert_eq!(l.other_end(ia(3, 30)), None);
        assert!(l.touches(ia(1, 10)));
        assert!(!l.touches(ia(3, 30)));
    }

    #[test]
    fn ifid_none_sentinel() {
        assert!(IfId::NONE.is_none());
        assert!(!IfId(3).is_none());
    }

    #[test]
    fn serde_roundtrip_isd_asn() {
        let x = ia(5, 99);
        let s = serde_json::to_string(&x).unwrap();
        let y: IsdAsn = serde_json::from_str(&s).unwrap();
        assert_eq!(x, y);
    }

    proptest! {
        #[test]
        fn prop_isd_asn_display_parse_roundtrip(isd in 0u16..u16::MAX, asn in 0u64..Asn::MAX) {
            let x = IsdAsn::new(Isd(isd), Asn::from_u64(asn));
            prop_assert_eq!(x.to_string().parse::<IsdAsn>().unwrap(), x);
        }

        #[test]
        fn prop_link_id_canonical(a1 in 0u64..1000, i1 in 0u16..100, a2 in 0u64..1000, i2 in 0u16..100) {
            let e1 = LinkEnd::new(ia(1, a1), IfId(i1));
            let e2 = LinkEnd::new(ia(1, a2), IfId(i2));
            prop_assert_eq!(LinkId::new(e1, e2), LinkId::new(e2, e1));
            let l = LinkId::new(e1, e2);
            prop_assert!(l.lo() <= l.hi());
        }
    }
}
