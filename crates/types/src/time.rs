//! Virtual time for the discrete-event simulation.
//!
//! All control-plane timing in the reproduction — beaconing intervals, PCB
//! lifetimes, MRAI timers, processing delays — runs on a deterministic
//! simulated clock, never the wall clock. Resolution is microseconds, which
//! comfortably covers both the 5 ms BGP processing delay (paper §5.1) and the
//! six-hour PCB lifetime without overflow concerns (a `u64` of microseconds
//! spans ~584 000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// A span of `us` microseconds (the clock's native resolution).
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// A span of `m` minutes.
    pub const fn from_mins(m: u64) -> Duration {
        Duration::from_secs(m * 60)
    }

    /// A span of `h` hours.
    pub const fn from_hours(h: u64) -> Duration {
        Duration::from_mins(h * 60)
    }

    /// A span of `d` days.
    pub const fn from_days(d: u64) -> Duration {
        Duration::from_hours(d * 24)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero-length span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; never underflows.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The ratio `self / other` as a float; returns 0 when `other` is zero
    /// (used in the Eq. 2/3 score exponents where a zero lifetime would
    /// otherwise divide by zero — such PCBs are already expired and filtered
    /// before scoring, so the value is inconsequential but must not panic).
    pub fn ratio(self, other: Duration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl fmt::Display for Duration {
    /// Renders durations in the largest unit that divides them evenly
    /// (`6h`, `10m`, `15s`, `5ms`, `7us`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == 0 {
            return write!(f, "0s");
        }
        if us.is_multiple_of(3_600_000_000) {
            write!(f, "{}h", us / 3_600_000_000)
        } else if us.is_multiple_of(60_000_000) {
            write!(f, "{}m", us / 60_000_000)
        } else if us.is_multiple_of(1_000_000) {
            write!(f, "{}s", us / 1_000_000)
        } else if us.is_multiple_of(1_000) {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{}us", us)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration underflow"))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; saturates at zero rather than
    /// underflowing, so `age` computations are robust to clock-skew-free
    /// same-tick events.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Duration until `later` (zero if `later` is in the past).
    pub fn until(self, later: SimTime) -> Duration {
        later.since(self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duration_constructors_consistent() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_mins(10), Duration::from_secs(600));
        assert_eq!(Duration::from_hours(6), Duration::from_mins(360));
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
    }

    #[test]
    fn duration_display_picks_natural_unit() {
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!(Duration::from_hours(6).to_string(), "6h");
        assert_eq!(Duration::from_mins(10).to_string(), "10m");
        assert_eq!(Duration::from_secs(15).to_string(), "15s");
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Duration::from_secs(1).ratio(Duration::ZERO), 0.0);
        assert!((Duration::from_secs(1).ratio(Duration::from_secs(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simtime_since_saturates() {
        let early = SimTime::from_micros(100);
        let late = SimTime::from_micros(400);
        assert_eq!(late.since(early), Duration::from_micros(300));
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(early.until(late), Duration::from_micros(300));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::ZERO + Duration::from_secs(5);
        assert_eq!(t.as_micros(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn simtime_sub_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn six_hour_pcb_lifetime_arithmetic() {
        // The paper's standard experiment: 6 h lifetime, 10 min interval.
        let lifetime = Duration::from_hours(6);
        let interval = Duration::from_mins(10);
        assert_eq!(lifetime.as_micros() / interval.as_micros(), 36);
    }

    proptest! {
        #[test]
        fn prop_since_until_inverse(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
            let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
            prop_assert_eq!(ta.until(tb), tb.since(ta));
            // One of the two directions is always zero.
            prop_assert!(ta.since(tb).is_zero() || tb.since(ta).is_zero()
                || a == b);
        }

        #[test]
        fn prop_add_then_since(a in 0u64..1u64 << 40, d in 0u64..1u64 << 40) {
            let t = SimTime::from_micros(a);
            let dur = Duration::from_micros(d);
            prop_assert_eq!((t + dur).since(t), dur);
        }
    }
}
