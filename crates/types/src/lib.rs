//! Core identifier and time types shared by every crate in the workspace.
//!
//! SCION routes on the `⟨ISD, AS⟩` tuple (paper §2.1): an *Isolation Domain*
//! groups autonomous systems under a common trust root, and the AS number
//! space is widened to 48 bits so SCION-only ASes can be numbered beyond the
//! 32-bit space in use by BGP today. Inter-domain links are identified by the
//! *interface identifiers* on either end (paper §2.2), which is what makes
//! link-level (rather than AS-level) path diversity expressible.
//!
//! Everything in this crate is a plain value type: `Copy` where possible,
//! totally ordered, hashable, and serializable, so identifiers can be used as
//! map keys throughout the control plane and in experiment outputs.

#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod time;

pub use error::{Error, Result};
pub use id::{Asn, IfId, Isd, IsdAsn, LinkEnd, LinkId};
pub use time::{Duration, SimTime};
