//! Event-driven per-origin BGP dynamics.
//!
//! Simulates the distributed path-vector protocol for **one origin AS**
//! (one prefix): initial announcement, optional withdraw/re-announce churn
//! cycles, MRAI batching, per-update processing delay, loop detection, and
//! Gao–Rexford policy (see [`crate::policy`]). Per-origin runs are fully
//! independent — BGP keeps per-prefix state — so the monthly workload
//! ([`crate::monthly`]) runs them in parallel and sums per-AS counters.
//!
//! §5.1 parameters: "each BGPsec speaker has a Minimum Route Advertisement
//! Interval (MRAI) timer of 15 seconds and a processing delay of 5 ms for
//! each incoming update message. Within an AS, only the internal BGPsec
//! speaker has LOC_RIB" — hence one speaker node per AS here, with border
//! routers abstracted into the link latency.

use std::collections::HashMap;

use scion_simulator::{Engine, Event, FaultSchedule, LatencyModel, LinkState};
use scion_topology::{AsIndex, AsTopology, LinkIndex};
use scion_types::{Duration, SimTime};
use serde::Serialize;

use crate::policy::{export_allowed, prefer, Candidate, PolicyMode, RouteClass};

/// Configuration of one origin's dynamics.
#[derive(Clone, Copy, Debug)]
pub struct OriginSimConfig {
    /// Minimum Route Advertisement Interval per session (§5.1: 15 s).
    pub mrai: Duration,
    /// Per-update processing delay at the speaker (§5.1: 5 ms).
    pub processing_delay: Duration,
    /// Number of withdraw/re-announce churn cycles after convergence.
    pub churn_resets: usize,
    /// Gap between a withdraw and its re-announce.
    pub reset_gap: Duration,
    /// Gap between convergence and the first churn event, and between
    /// churn cycles.
    pub settle_gap: Duration,
    /// Seed for link latencies.
    pub seed: u64,
    /// Routing policy (Gao–Rexford by default; shortest-path for the
    /// §5.3 core-mesh comparison).
    pub policy: PolicyMode,
}

impl Default for OriginSimConfig {
    fn default() -> Self {
        OriginSimConfig {
            mrai: Duration::from_secs(15),
            processing_delay: Duration::from_millis(5),
            churn_resets: 1,
            reset_gap: Duration::from_secs(30),
            settle_gap: Duration::from_secs(600),
            seed: 1,
            policy: PolicyMode::GaoRexford,
        }
    }
}

/// Per-AS counters and converged routes from one origin's run.
#[derive(Clone, Debug)]
pub struct OriginOutcome {
    /// Announcements received per AS over the whole run.
    pub announces_received: Vec<u64>,
    /// Sum of AS-path lengths over those announcements (for sizing).
    pub announce_pathlen_sum: Vec<u64>,
    /// Withdrawals received per AS.
    pub withdraws_received: Vec<u64>,
    /// Announcements received during the initial convergence (before any
    /// churn) — the basis of the BGPsec daily-re-beaconing extrapolation.
    pub initial_announces: Vec<u64>,
    /// Path-length sum of the initial-phase announcements.
    pub initial_pathlen_sum: Vec<u64>,
    /// Converged best AS path per AS toward the origin (next hop first,
    /// origin last; `None` = unreachable; the origin's own entry is
    /// an empty path).
    pub best_paths: Vec<Option<Vec<AsIndex>>>,
}

/// A BGP update: the announced AS path, or `None` for a withdrawal.
type BgpMsg = Option<Vec<AsIndex>>;

/// Timer kinds.
const TIMER_MRAI_BASE: u32 = 0; // + neighbor index
const TIMER_WITHDRAW: u32 = u32::MAX;
const TIMER_REANNOUNCE: u32 = u32::MAX - 1;
/// A fault-schedule firing (chaos runs only).
const TIMER_FAULT: u32 = u32::MAX - 2;
/// A reachability probe (chaos runs only).
const TIMER_PROBE: u32 = u32::MAX - 3;

/// Fault-injection configuration for a chaos-aware per-origin BGP run.
///
/// The same `FaultSchedule` driven through the beaconing side (see
/// `scion-beaconing`'s chaos driver) can be replayed here, so both control
/// planes experience an identical fault trace.
pub struct BgpChaosConfig<'a> {
    /// Virtual-time fault trace.
    pub schedule: &'a FaultSchedule,
    /// Cadence of the reachability probe.
    pub probe_cadence: Duration,
    /// Horizon up to which probes are scheduled. BGP runs until its event
    /// queue drains (it has no fixed end), so probes need an explicit one.
    pub run_until: SimTime,
}

/// One reachability probe: per-AS, can the AS currently reach the origin
/// (it has a best route, or it is the origin itself while announced)?
#[derive(Clone, Debug, Serialize)]
pub struct BgpProbe {
    /// Probe instant.
    pub t: SimTime,
    /// Indexed by `AsIndex`.
    pub reachable: Vec<bool>,
}

/// Fault-plane accounting of a chaos-aware BGP run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct BgpChaosReport {
    /// Probe samples in time order.
    pub probes: Vec<BgpProbe>,
    /// State-changing fault events applied.
    pub fault_events_applied: u64,
    /// In-flight updates cancelled when their link failed mid-flight.
    pub cancelled_in_flight: u64,
    /// Updates dropped at delivery because the link was down.
    pub drops_on_down_link: u64,
    /// BGP sessions torn down (or re-established) by faults.
    pub sessions_reset: u64,
}

struct SpeakerState {
    /// Paths learned per neighbor.
    adj_rib_in: HashMap<AsIndex, Vec<AsIndex>>,
    /// What we last advertised to each neighbor (`None` = nothing /
    /// withdrawn).
    adv_out: HashMap<AsIndex, BgpMsg>,
    /// Last time an update was sent to each neighbor.
    last_sent: HashMap<AsIndex, Option<SimTime>>,
    /// Neighbors with a pending (MRAI-suppressed) update.
    pending: HashMap<AsIndex, bool>,
    /// Speaker busy horizon (serializes the 5 ms per-update processing).
    busy_until: SimTime,
    /// Current best route: `(neighbor, path)`.
    best: Option<(AsIndex, Vec<AsIndex>)>,
    /// True for the origin while its prefix is announced.
    originating: bool,
}

impl SpeakerState {
    fn new() -> SpeakerState {
        SpeakerState {
            adj_rib_in: HashMap::new(),
            adv_out: HashMap::new(),
            last_sent: HashMap::new(),
            pending: HashMap::new(),
            busy_until: SimTime::ZERO,
            best: None,
            originating: false,
        }
    }

    /// The route class of the current best (None when self-originated).
    fn best_class(&self, topo: &AsTopology, me: AsIndex) -> Option<RouteClass> {
        if self.originating {
            return None;
        }
        self.best
            .as_ref()
            .map(|(n, _)| RouteClass::classify(topo, me, *n))
    }

    /// Recomputes the best route from adj-rib-in. Returns true on change.
    fn recompute_best(&mut self, topo: &AsTopology, me: AsIndex, policy: PolicyMode) -> bool {
        if self.originating {
            return false; // the origin's own route always wins
        }
        let mut best: Option<(Candidate, &Vec<AsIndex>)> = None;
        for (&n, path) in &self.adj_rib_in {
            let cand = Candidate {
                class: match policy {
                    PolicyMode::GaoRexford => RouteClass::classify(topo, me, n),
                    PolicyMode::ShortestPath => RouteClass::Peer,
                },
                path_len: path.len(),
                neighbor: n,
            };
            best = Some(match best {
                Some((bc, bp)) if !prefer(&cand, &bc) => (bc, bp),
                _ => (cand, path),
            });
        }
        let new_best = best.map(|(c, p)| (c.neighbor, p.clone()));
        if new_best != self.best {
            self.best = new_best;
            true
        } else {
            false
        }
    }
}

/// One speaker's view of which path (if any) it should advertise to `to`.
fn desired_advertisement(
    topo: &AsTopology,
    me: AsIndex,
    state: &SpeakerState,
    to: AsIndex,
    policy: PolicyMode,
) -> BgpMsg {
    if state.originating {
        return Some(vec![me]);
    }
    let (_, path) = state.best.as_ref()?;
    if path.contains(&to) {
        return None; // guaranteed loop-discard at the receiver; skip
    }
    if policy == PolicyMode::GaoRexford && !export_allowed(topo, me, state.best_class(topo, me), to)
    {
        return None;
    }
    let mut out = Vec::with_capacity(path.len() + 1);
    out.push(me);
    out.extend_from_slice(path);
    Some(out)
}

/// Like [`simulate_origin`], additionally profiling the convergence run
/// and accumulating the network-wide announce/withdraw counters.
///
/// The monthly workload fans origins out over a rayon pool, so telemetry
/// cannot thread `&mut` through the inner loop; instrumentation happens at
/// this per-origin aggregation level instead.
pub fn simulate_origin_telemetry(
    topo: &AsTopology,
    origin: AsIndex,
    cfg: &OriginSimConfig,
    tel: &mut scion_telemetry::Telemetry,
) -> OriginOutcome {
    use scion_telemetry::{ids, phase, Label};
    let out = {
        let _g = tel.profile.scope(phase::BGP_CONVERGENCE);
        simulate_origin(topo, origin, cfg)
    };
    tel.inc(
        ids::BGP_ANNOUNCES,
        Label::Global,
        out.announces_received.iter().sum(),
    );
    tel.inc(
        ids::BGP_WITHDRAWS,
        Label::Global,
        out.withdraws_received.iter().sum(),
    );
    out
}

/// Runs the dynamics for one origin. See module docs.
pub fn simulate_origin(topo: &AsTopology, origin: AsIndex, cfg: &OriginSimConfig) -> OriginOutcome {
    simulate_origin_inner(topo, origin, cfg, None).0
}

/// Chaos-aware variant of [`simulate_origin`]: replays `chaos.schedule`
/// against the run. A session is up while **any** of its parallel links is
/// usable; when the last one fails, both speakers tear the session down
/// (hold-timer expiry: learned routes are flushed, withdrawals propagate),
/// and when a link returns, the session re-establishes and both sides
/// re-advertise. Reachability toward the origin is probed on
/// `chaos.probe_cadence` up to `chaos.run_until`.
pub fn simulate_origin_chaos(
    topo: &AsTopology,
    origin: AsIndex,
    cfg: &OriginSimConfig,
    chaos: &BgpChaosConfig<'_>,
) -> (OriginOutcome, BgpChaosReport) {
    simulate_origin_inner(topo, origin, cfg, Some(chaos))
}

fn simulate_origin_inner(
    topo: &AsTopology,
    origin: AsIndex,
    cfg: &OriginSimConfig,
    chaos: Option<&BgpChaosConfig<'_>>,
) -> (OriginOutcome, BgpChaosReport) {
    let n = topo.num_ases();
    let latency = LatencyModel::default_for(topo, cfg.seed);

    // One session per neighbor pair, carrying *all* parallel links between
    // the pair (ascending LinkIndex — the documented stable order).
    // Messages ride the first usable link; the session survives as long as
    // one link does.
    let sessions: Vec<Vec<(AsIndex, Vec<LinkIndex>)>> = topo
        .as_indices()
        .map(|idx| {
            let mut nb: Vec<(AsIndex, Vec<LinkIndex>)> = topo
                .neighbors(idx)
                .into_iter()
                .map(|o| (o, topo.links_between(idx, o)))
                .collect();
            nb.sort_by_key(|&(o, _)| o);
            nb
        })
        .collect();

    let mut states: Vec<SpeakerState> = (0..n).map(|_| SpeakerState::new()).collect();
    let mut out = OriginOutcome {
        announces_received: vec![0; n],
        announce_pathlen_sum: vec![0; n],
        withdraws_received: vec![0; n],
        initial_announces: vec![0; n],
        initial_pathlen_sum: vec![0; n],
        best_paths: vec![None; n],
    };

    let mut engine: Engine<BgpMsg> = Engine::new();

    // Schedule churn cycles. The first withdraw comes after a settle gap
    // long enough for initial convergence.
    let mut churn_start = SimTime::from_micros(u64::MAX);
    for k in 0..cfg.churn_resets {
        let t_withdraw =
            SimTime::ZERO + cfg.settle_gap + (cfg.settle_gap + cfg.reset_gap) * (k as u64);
        if k == 0 {
            churn_start = t_withdraw;
        }
        engine.schedule_timer(t_withdraw, origin, TIMER_WITHDRAW);
        engine.schedule_timer(t_withdraw + cfg.reset_gap, origin, TIMER_REANNOUNCE);
    }

    // Initial announcement.
    states[origin.as_usize()].originating = true;
    engine.schedule_timer(SimTime::ZERO, origin, TIMER_MRAI_BASE); // kick-off

    // Fault plane. Fault and probe timers are scheduled upfront (BGP has
    // no fixed end: the run terminates when the queue drains, so
    // self-rescheduling timers would never let it).
    let mut link_state = chaos.map(|_| LinkState::new(topo));
    let mut fault_cursor = 0usize;
    let mut report = BgpChaosReport::default();
    // Session liveness, mirroring `sessions` (all sessions start up).
    let mut session_up: Vec<Vec<bool>> = sessions.iter().map(|s| vec![true; s.len()]).collect();
    if let Some(chaos) = chaos {
        for t in chaos.schedule.fire_times() {
            if t <= chaos.run_until {
                engine.schedule_timer(t, origin, TIMER_FAULT);
            }
        }
        if !chaos.probe_cadence.is_zero() {
            let mut t = SimTime::ZERO + chaos.probe_cadence;
            while t <= chaos.run_until {
                engine.schedule_timer(t, origin, TIMER_PROBE);
                t = t + chaos.probe_cadence;
            }
        }
    }

    // Sends updates (respecting MRAI) from `me` to every neighbor whose
    // desired advertisement changed. Dead sessions are skipped; messages
    // ride the first usable parallel link.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        topo: &AsTopology,
        sessions: &[Vec<(AsIndex, Vec<LinkIndex>)>],
        states: &mut [SpeakerState],
        engine: &mut Engine<BgpMsg>,
        latency: &LatencyModel,
        cfg: &OriginSimConfig,
        ls: Option<&LinkState>,
        me: AsIndex,
        eff_now: SimTime,
    ) {
        for (nb, links) in &sessions[me.as_usize()] {
            let nb = *nb;
            let Some(link) = first_usable_link(links, ls) else {
                continue; // session down: nothing can be sent
            };
            let desired = desired_advertisement(topo, me, &states[me.as_usize()], nb, cfg.policy);
            let state = &mut states[me.as_usize()];
            let already = state.adv_out.get(&nb).cloned().unwrap_or(None);
            if desired == already {
                continue;
            }
            // Never send a withdrawal for something never advertised.
            if desired.is_none() && already.is_none() {
                continue;
            }
            let mrai_ok = match state.last_sent.get(&nb).copied().flatten() {
                Some(t) => eff_now.since(t) >= cfg.mrai,
                None => true,
            };
            if mrai_ok {
                state.adv_out.insert(nb, desired.clone());
                state.last_sent.insert(nb, Some(eff_now));
                state.pending.insert(nb, false);
                let extra = eff_now.since(engine.now());
                let base_delay = latency.delay(link);
                let delay = match ls {
                    Some(ls) => ls.degraded_delay(link, base_delay),
                    None => base_delay,
                };
                engine.send(delay + extra, nb, link, desired);
            } else if !state.pending.get(&nb).copied().unwrap_or(false) {
                state.pending.insert(nb, true);
                let fire_at = state.last_sent[&nb].expect("mrai implies sent") + cfg.mrai;
                engine.schedule_timer(fire_at.max(eff_now), me, TIMER_MRAI_BASE + nb.0 + 1);
            }
        }
    }

    let deadline = SimTime::from_micros(u64::MAX);
    while let Some((now, ev)) = engine.pop_until(deadline) {
        match ev {
            Event::Timer { node, kind } => match kind {
                TIMER_WITHDRAW => {
                    states[node.as_usize()].originating = false;
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        link_state.as_ref(),
                        node,
                        now,
                    );
                }
                TIMER_REANNOUNCE | TIMER_MRAI_BASE => {
                    if kind == TIMER_REANNOUNCE {
                        states[node.as_usize()].originating = true;
                    }
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        link_state.as_ref(),
                        node,
                        now,
                    );
                }
                TIMER_FAULT => {
                    let chaos = chaos.expect("fault timer only in chaos runs");
                    let ls = link_state.as_mut().expect("chaos implies link state");
                    let events = chaos.schedule.events();
                    while fault_cursor < events.len() && events[fault_cursor].0 <= now {
                        let (_, fault) = events[fault_cursor];
                        fault_cursor += 1;
                        if ls.apply(&fault) {
                            report.fault_events_applied += 1;
                        }
                    }
                    // Updates on the wire of a now-dead link are lost.
                    report.cancelled_in_flight +=
                        engine.cancel_deliveries(|_, via, _| !ls.link_usable(via));
                    // Re-evaluate session liveness; torn-down sessions flush
                    // learned routes on both sides (hold-timer expiry),
                    // re-established ones re-advertise from scratch.
                    let transitions = session_transitions(topo, &sessions, ls, &mut session_up);
                    for &(a, b, up) in &transitions {
                        report.sessions_reset += 1;
                        for (me, other) in [(a, b), (b, a)] {
                            let st = &mut states[me.as_usize()];
                            if !up {
                                st.adj_rib_in.remove(&other);
                            }
                            // Fresh session state either way: nothing is
                            // advertised over it, MRAI history is gone.
                            st.adv_out.remove(&other);
                            st.last_sent.remove(&other);
                            st.pending.remove(&other);
                        }
                        for me in [a, b] {
                            states[me.as_usize()].recompute_best(topo, me, cfg.policy);
                            flush(
                                topo,
                                &sessions,
                                &mut states,
                                &mut engine,
                                &latency,
                                cfg,
                                Some(ls),
                                me,
                                now,
                            );
                        }
                    }
                }
                TIMER_PROBE => {
                    let reachable: Vec<bool> = (0..n)
                        .map(|i| {
                            let s = &states[i];
                            s.originating || s.best.is_some()
                        })
                        .collect();
                    report.probes.push(BgpProbe { t: now, reachable });
                }
                k => {
                    // Per-neighbor MRAI expiry.
                    let nb = AsIndex(k - TIMER_MRAI_BASE - 1);
                    if states[node.as_usize()].pending.get(&nb).copied() == Some(true) {
                        states[node.as_usize()].pending.insert(nb, false);
                        flush(
                            topo,
                            &sessions,
                            &mut states,
                            &mut engine,
                            &latency,
                            cfg,
                            link_state.as_ref(),
                            node,
                            now,
                        );
                    }
                }
            },
            Event::Deliver { to, via, msg } => {
                // A fault at this exact instant ran first (FIFO): drop the
                // update if its link just died.
                if let Some(ls) = &link_state {
                    if !ls.link_usable(via) {
                        report.drops_on_down_link += 1;
                        continue;
                    }
                }
                let (from, _, _) = topo.link(via).opposite(to);
                // Serialize the 5 ms processing through the speaker.
                let state = &mut states[to.as_usize()];
                let eff_now = if state.busy_until > now {
                    state.busy_until
                } else {
                    now
                } + cfg.processing_delay;
                state.busy_until = eff_now;

                match &msg {
                    Some(path) => {
                        out.announces_received[to.as_usize()] += 1;
                        out.announce_pathlen_sum[to.as_usize()] += path.len() as u64;
                        if now < churn_start {
                            out.initial_announces[to.as_usize()] += 1;
                            out.initial_pathlen_sum[to.as_usize()] += path.len() as u64;
                        }
                        if path.contains(&to) {
                            // AS-path loop: discard (treat as implicit
                            // withdraw of this neighbor's route).
                            state.adj_rib_in.remove(&from);
                        } else {
                            state.adj_rib_in.insert(from, path.clone());
                        }
                    }
                    None => {
                        out.withdraws_received[to.as_usize()] += 1;
                        state.adj_rib_in.remove(&from);
                    }
                }
                if states[to.as_usize()].recompute_best(topo, to, cfg.policy) {
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        link_state.as_ref(),
                        to,
                        eff_now,
                    );
                }
            }
        }
    }

    for idx in topo.as_indices() {
        let s = &states[idx.as_usize()];
        out.best_paths[idx.as_usize()] = if idx == origin {
            Some(Vec::new())
        } else {
            s.best.as_ref().map(|(_, p)| p.clone())
        };
    }
    (out, report)
}

/// The first usable link of a session (its message carrier), or the first
/// link when no fault plane is active.
fn first_usable_link(links: &[LinkIndex], ls: Option<&LinkState>) -> Option<LinkIndex> {
    match ls {
        None => links.first().copied(),
        Some(ls) => links.iter().copied().find(|&li| ls.link_usable(li)),
    }
}

/// Diffs session liveness against `session_up`, updating it in place.
/// Returns the transitioned unordered pairs as `(a, b, now_up)` with
/// `a < b`, in deterministic (a, b) order.
fn session_transitions(
    topo: &AsTopology,
    sessions: &[Vec<(AsIndex, Vec<LinkIndex>)>],
    ls: &LinkState,
    session_up: &mut [Vec<bool>],
) -> Vec<(AsIndex, AsIndex, bool)> {
    let mut out = Vec::new();
    for a in topo.as_indices() {
        for (i, (nb, links)) in sessions[a.as_usize()].iter().enumerate() {
            if a >= *nb {
                continue;
            }
            let up = first_usable_link(links, Some(ls)).is_some();
            if up != session_up[a.as_usize()][i] {
                session_up[a.as_usize()][i] = up;
                // Mirror into the neighbor's entry for consistency.
                if let Some(j) = sessions[nb.as_usize()].iter().position(|(o, _)| *o == a) {
                    session_up[nb.as_usize()][j] = up;
                }
                out.push((a, *nb, up));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    /// Diamond: 1 provides to 2 and 3; both provide to 4.
    fn diamond() -> AsTopology {
        topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (1, 3, Relationship::AProviderOfB, 1),
            (2, 4, Relationship::AProviderOfB, 1),
            (3, 4, Relationship::AProviderOfB, 1),
        ])
    }

    #[test]
    fn converges_to_valley_free_paths() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let out = simulate_origin(&topo, four, &OriginSimConfig::default());
        // AS 1 reaches 4 via one of its customers, path length 2.
        let one = topo.by_address(ia(1)).unwrap();
        let p = out.best_paths[one.as_usize()].as_ref().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(*p.last().unwrap(), four);
        // Everyone reaches the origin.
        for idx in topo.as_indices() {
            assert!(out.best_paths[idx.as_usize()].is_some());
        }
    }

    #[test]
    fn peer_routes_not_given_transit() {
        // 1 -- 2 peering; 3 is 2's other peer. 3 originates.
        // 1 must NOT learn the route (2 won't export a peer route to a
        // peer).
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let three = topo.by_address(ia(3)).unwrap();
        let out = simulate_origin(&topo, three, &OriginSimConfig::default());
        let one = topo.by_address(ia(1)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        assert!(out.best_paths[two.as_usize()].is_some());
        assert!(
            out.best_paths[one.as_usize()].is_none(),
            "valley-free violated"
        );
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        // 2's customer 3 and peer 4 both reach origin 5; 2 must pick the
        // customer route even if longer.
        let topo = topology_from_edges(&[
            (2, 3, Relationship::AProviderOfB, 1), // 3 is customer of 2
            (2, 4, Relationship::PeerToPeer, 1),
            (3, 6, Relationship::AProviderOfB, 1),
            (6, 5, Relationship::AProviderOfB, 1), // long customer chain
            (4, 5, Relationship::AProviderOfB, 1), // short peer path
        ]);
        let five = topo.by_address(ia(5)).unwrap();
        let out = simulate_origin(&topo, five, &OriginSimConfig::default());
        let two = topo.by_address(ia(2)).unwrap();
        let three = topo.by_address(ia(3)).unwrap();
        let p = out.best_paths[two.as_usize()].as_ref().unwrap();
        assert_eq!(p[0], three, "customer route must win: {p:?}");
    }

    #[test]
    fn withdraw_reannounce_cycle_costs_messages() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let no_churn = simulate_origin(
            &topo,
            four,
            &OriginSimConfig {
                churn_resets: 0,
                ..OriginSimConfig::default()
            },
        );
        let with_churn = simulate_origin(&topo, four, &OriginSimConfig::default());
        let total = |o: &OriginOutcome| {
            o.announces_received.iter().sum::<u64>() + o.withdraws_received.iter().sum::<u64>()
        };
        assert!(total(&with_churn) > total(&no_churn));
        assert!(with_churn.withdraws_received.iter().sum::<u64>() > 0);
        // Initial-phase counters exclude churn traffic.
        assert_eq!(with_churn.initial_announces, no_churn.initial_announces);
        // After the final re-announce everything re-converges.
        for idx in topo.as_indices() {
            assert!(with_churn.best_paths[idx.as_usize()].is_some());
        }
    }

    #[test]
    fn origin_receives_no_own_announcement_loops() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let out = simulate_origin(&topo, four, &OriginSimConfig::default());
        // Announcements that would loop back are suppressed at the sender,
        // so the origin sees no announce for its own prefix.
        assert_eq!(out.announces_received[four.as_usize()], 0);
    }

    #[test]
    fn telemetry_wrapper_matches_plain_run() {
        use scion_telemetry::{ids, phase, Label, Telemetry, TelemetryConfig};
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let plain = simulate_origin(&topo, four, &OriginSimConfig::default());
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let instrumented =
            simulate_origin_telemetry(&topo, four, &OriginSimConfig::default(), &mut tel);
        assert_eq!(plain.announces_received, instrumented.announces_received);
        assert_eq!(plain.withdraws_received, instrumented.withdraws_received);
        assert_eq!(
            tel.metrics.counter(ids::BGP_ANNOUNCES, Label::Global),
            plain.announces_received.iter().sum::<u64>()
        );
        assert!(tel.profile.stats(phase::BGP_CONVERGENCE).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let a = simulate_origin(&topo, four, &OriginSimConfig::default());
        let b = simulate_origin(&topo, four, &OriginSimConfig::default());
        assert_eq!(a.announces_received, b.announces_received);
        assert_eq!(a.withdraws_received, b.withdraws_received);
        assert_eq!(a.best_paths, b.best_paths);
    }

    use scion_simulator::{FaultSchedule, LinkFault};

    fn no_churn() -> OriginSimConfig {
        OriginSimConfig {
            churn_resets: 0,
            ..OriginSimConfig::default()
        }
    }

    fn probe_at(report: &BgpChaosReport, t: SimTime) -> &BgpProbe {
        report
            .probes
            .iter()
            .rev()
            .find(|p| p.t <= t)
            .expect("probe before t")
    }

    #[test]
    fn chaos_session_teardown_withdraws_and_recovers() {
        // Chain: 3 originates; 1 reaches it through 2. Cutting 1-2 tears
        // the session down (withdraw at 1); restoring it re-converges.
        let topo = topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (2, 3, Relationship::AProviderOfB, 1),
        ]);
        let one = topo.by_address(ia(1)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        let three = topo.by_address(ia(3)).unwrap();
        let cut = topo.links_between(one, two)[0];
        let down_at = SimTime::ZERO + Duration::from_secs(100);
        let up_at = SimTime::ZERO + Duration::from_secs(200);
        let schedule = FaultSchedule::from_events(vec![
            (down_at, LinkFault::LinkDown(cut)),
            (up_at, LinkFault::LinkUp(cut)),
        ]);
        let chaos = BgpChaosConfig {
            schedule: &schedule,
            probe_cadence: Duration::from_secs(10),
            run_until: SimTime::ZERO + Duration::from_secs(400),
        };
        let (out, report) = simulate_origin_chaos(&topo, three, &no_churn(), &chaos);

        let pre = probe_at(&report, SimTime::ZERO + Duration::from_secs(90));
        assert!(pre.reachable.iter().all(|&r| r), "converged before fault");
        let during = probe_at(&report, SimTime::ZERO + Duration::from_secs(190));
        assert!(!during.reachable[one.as_usize()], "1 cut off");
        assert!(during.reachable[two.as_usize()], "2 unaffected");
        let after = report.probes.last().unwrap();
        assert!(after.reachable.iter().all(|&r| r), "re-converged");

        assert_eq!(report.fault_events_applied, 2);
        assert_eq!(report.sessions_reset, 2, "one teardown + one re-establish");
        assert!(out.best_paths[one.as_usize()].is_some(), "final route back");
    }

    #[test]
    fn chaos_parallel_link_failover_keeps_session_up() {
        // Two parallel links between 1 and 2: losing one never tears the
        // session down, so reachability holds throughout.
        let topo = topology_from_edges(&[(1, 2, Relationship::AProviderOfB, 2)]);
        let one = topo.by_address(ia(1)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        let links = topo.links_between(one, two);
        assert_eq!(links.len(), 2);
        let schedule = FaultSchedule::from_events(vec![(
            SimTime::ZERO + Duration::from_secs(50),
            LinkFault::LinkDown(links[0]),
        )]);
        let chaos = BgpChaosConfig {
            schedule: &schedule,
            probe_cadence: Duration::from_secs(10),
            run_until: SimTime::ZERO + Duration::from_secs(200),
        };
        let (out, report) = simulate_origin_chaos(&topo, two, &no_churn(), &chaos);
        assert_eq!(report.sessions_reset, 0);
        assert!(report.probes.iter().all(|p| p.reachable.iter().all(|&r| r)));
        assert!(out.best_paths[one.as_usize()].is_some());
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        let cut = topo.links_between(two, four)[0];
        let schedule = FaultSchedule::from_events(vec![
            (
                SimTime::ZERO + Duration::from_secs(60),
                LinkFault::LinkDown(cut),
            ),
            (
                SimTime::ZERO + Duration::from_secs(120),
                LinkFault::LinkUp(cut),
            ),
        ]);
        let chaos = BgpChaosConfig {
            schedule: &schedule,
            probe_cadence: Duration::from_secs(5),
            run_until: SimTime::ZERO + Duration::from_secs(300),
        };
        let (out_a, rep_a) = simulate_origin_chaos(&topo, four, &no_churn(), &chaos);
        let (out_b, rep_b) = simulate_origin_chaos(&topo, four, &no_churn(), &chaos);
        assert_eq!(out_a.announces_received, out_b.announces_received);
        assert_eq!(out_a.withdraws_received, out_b.withdraws_received);
        assert_eq!(out_a.best_paths, out_b.best_paths);
        assert_eq!(rep_a.fault_events_applied, rep_b.fault_events_applied);
        assert_eq!(rep_a.sessions_reset, rep_b.sessions_reset);
        assert_eq!(rep_a.cancelled_in_flight, rep_b.cancelled_in_flight);
        assert_eq!(rep_a.drops_on_down_link, rep_b.drops_on_down_link);
        let samples = |r: &BgpChaosReport| -> Vec<(SimTime, Vec<bool>)> {
            r.probes
                .iter()
                .map(|p| (p.t, p.reachable.clone()))
                .collect()
        };
        assert_eq!(samples(&rep_a), samples(&rep_b));
    }

    #[test]
    fn chaos_diamond_survives_single_cut() {
        // 1 reaches 4 via 2 or 3: cutting 2-4 must leave everyone with a
        // route once re-converged on the alternate branch.
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        let cut = topo.links_between(two, four)[0];
        let schedule = FaultSchedule::from_events(vec![(
            SimTime::ZERO + Duration::from_secs(60),
            LinkFault::LinkDown(cut),
        )]);
        let chaos = BgpChaosConfig {
            schedule: &schedule,
            probe_cadence: Duration::from_secs(10),
            run_until: SimTime::ZERO + Duration::from_secs(300),
        };
        let (out, report) = simulate_origin_chaos(&topo, four, &no_churn(), &chaos);
        let last = report.probes.last().unwrap();
        assert!(last.reachable.iter().all(|&r| r), "alternate path found");
        // 2's converged route avoids the dead link: it goes via 1 -> 3.
        let p = out.best_paths[two.as_usize()].as_ref().unwrap();
        assert_eq!(p.len(), 3, "2 -> 1 -> 3 -> 4, not the direct cut link");
    }
}
