//! Event-driven per-origin BGP dynamics.
//!
//! Simulates the distributed path-vector protocol for **one origin AS**
//! (one prefix): initial announcement, optional withdraw/re-announce churn
//! cycles, MRAI batching, per-update processing delay, loop detection, and
//! Gao–Rexford policy (see [`crate::policy`]). Per-origin runs are fully
//! independent — BGP keeps per-prefix state — so the monthly workload
//! ([`crate::monthly`]) runs them in parallel and sums per-AS counters.
//!
//! §5.1 parameters: "each BGPsec speaker has a Minimum Route Advertisement
//! Interval (MRAI) timer of 15 seconds and a processing delay of 5 ms for
//! each incoming update message. Within an AS, only the internal BGPsec
//! speaker has LOC_RIB" — hence one speaker node per AS here, with border
//! routers abstracted into the link latency.

use std::collections::HashMap;

use scion_simulator::{Engine, Event, LatencyModel};
use scion_topology::{AsIndex, AsTopology, LinkIndex};
use scion_types::{Duration, SimTime};

use crate::policy::{export_allowed, prefer, Candidate, PolicyMode, RouteClass};

/// Configuration of one origin's dynamics.
#[derive(Clone, Copy, Debug)]
pub struct OriginSimConfig {
    /// Minimum Route Advertisement Interval per session (§5.1: 15 s).
    pub mrai: Duration,
    /// Per-update processing delay at the speaker (§5.1: 5 ms).
    pub processing_delay: Duration,
    /// Number of withdraw/re-announce churn cycles after convergence.
    pub churn_resets: usize,
    /// Gap between a withdraw and its re-announce.
    pub reset_gap: Duration,
    /// Gap between convergence and the first churn event, and between
    /// churn cycles.
    pub settle_gap: Duration,
    /// Seed for link latencies.
    pub seed: u64,
    /// Routing policy (Gao–Rexford by default; shortest-path for the
    /// §5.3 core-mesh comparison).
    pub policy: PolicyMode,
}

impl Default for OriginSimConfig {
    fn default() -> Self {
        OriginSimConfig {
            mrai: Duration::from_secs(15),
            processing_delay: Duration::from_millis(5),
            churn_resets: 1,
            reset_gap: Duration::from_secs(30),
            settle_gap: Duration::from_secs(600),
            seed: 1,
            policy: PolicyMode::GaoRexford,
        }
    }
}

/// Per-AS counters and converged routes from one origin's run.
#[derive(Clone, Debug)]
pub struct OriginOutcome {
    /// Announcements received per AS over the whole run.
    pub announces_received: Vec<u64>,
    /// Sum of AS-path lengths over those announcements (for sizing).
    pub announce_pathlen_sum: Vec<u64>,
    /// Withdrawals received per AS.
    pub withdraws_received: Vec<u64>,
    /// Announcements received during the initial convergence (before any
    /// churn) — the basis of the BGPsec daily-re-beaconing extrapolation.
    pub initial_announces: Vec<u64>,
    /// Path-length sum of the initial-phase announcements.
    pub initial_pathlen_sum: Vec<u64>,
    /// Converged best AS path per AS toward the origin (next hop first,
    /// origin last; `None` = unreachable; the origin's own entry is
    /// an empty path).
    pub best_paths: Vec<Option<Vec<AsIndex>>>,
}

/// A BGP update: the announced AS path, or `None` for a withdrawal.
type BgpMsg = Option<Vec<AsIndex>>;

/// Timer kinds.
const TIMER_MRAI_BASE: u32 = 0; // + neighbor index
const TIMER_WITHDRAW: u32 = u32::MAX;
const TIMER_REANNOUNCE: u32 = u32::MAX - 1;

struct SpeakerState {
    /// Paths learned per neighbor.
    adj_rib_in: HashMap<AsIndex, Vec<AsIndex>>,
    /// What we last advertised to each neighbor (`None` = nothing /
    /// withdrawn).
    adv_out: HashMap<AsIndex, BgpMsg>,
    /// Last time an update was sent to each neighbor.
    last_sent: HashMap<AsIndex, Option<SimTime>>,
    /// Neighbors with a pending (MRAI-suppressed) update.
    pending: HashMap<AsIndex, bool>,
    /// Speaker busy horizon (serializes the 5 ms per-update processing).
    busy_until: SimTime,
    /// Current best route: `(neighbor, path)`.
    best: Option<(AsIndex, Vec<AsIndex>)>,
    /// True for the origin while its prefix is announced.
    originating: bool,
}

impl SpeakerState {
    fn new() -> SpeakerState {
        SpeakerState {
            adj_rib_in: HashMap::new(),
            adv_out: HashMap::new(),
            last_sent: HashMap::new(),
            pending: HashMap::new(),
            busy_until: SimTime::ZERO,
            best: None,
            originating: false,
        }
    }

    /// The route class of the current best (None when self-originated).
    fn best_class(&self, topo: &AsTopology, me: AsIndex) -> Option<RouteClass> {
        if self.originating {
            return None;
        }
        self.best
            .as_ref()
            .map(|(n, _)| RouteClass::classify(topo, me, *n))
    }

    /// Recomputes the best route from adj-rib-in. Returns true on change.
    fn recompute_best(&mut self, topo: &AsTopology, me: AsIndex, policy: PolicyMode) -> bool {
        if self.originating {
            return false; // the origin's own route always wins
        }
        let mut best: Option<(Candidate, &Vec<AsIndex>)> = None;
        for (&n, path) in &self.adj_rib_in {
            let cand = Candidate {
                class: match policy {
                    PolicyMode::GaoRexford => RouteClass::classify(topo, me, n),
                    PolicyMode::ShortestPath => RouteClass::Peer,
                },
                path_len: path.len(),
                neighbor: n,
            };
            best = Some(match best {
                Some((bc, bp)) if !prefer(&cand, &bc) => (bc, bp),
                _ => (cand, path),
            });
        }
        let new_best = best.map(|(c, p)| (c.neighbor, p.clone()));
        if new_best != self.best {
            self.best = new_best;
            true
        } else {
            false
        }
    }
}

/// One speaker's view of which path (if any) it should advertise to `to`.
fn desired_advertisement(
    topo: &AsTopology,
    me: AsIndex,
    state: &SpeakerState,
    to: AsIndex,
    policy: PolicyMode,
) -> BgpMsg {
    if state.originating {
        return Some(vec![me]);
    }
    let (_, path) = state.best.as_ref()?;
    if path.contains(&to) {
        return None; // guaranteed loop-discard at the receiver; skip
    }
    if policy == PolicyMode::GaoRexford && !export_allowed(topo, me, state.best_class(topo, me), to)
    {
        return None;
    }
    let mut out = Vec::with_capacity(path.len() + 1);
    out.push(me);
    out.extend_from_slice(path);
    Some(out)
}

/// Like [`simulate_origin`], additionally profiling the convergence run
/// and accumulating the network-wide announce/withdraw counters.
///
/// The monthly workload fans origins out over a rayon pool, so telemetry
/// cannot thread `&mut` through the inner loop; instrumentation happens at
/// this per-origin aggregation level instead.
pub fn simulate_origin_telemetry(
    topo: &AsTopology,
    origin: AsIndex,
    cfg: &OriginSimConfig,
    tel: &mut scion_telemetry::Telemetry,
) -> OriginOutcome {
    use scion_telemetry::{ids, phase, Label};
    let out = {
        let _g = tel.profile.scope(phase::BGP_CONVERGENCE);
        simulate_origin(topo, origin, cfg)
    };
    tel.inc(
        ids::BGP_ANNOUNCES,
        Label::Global,
        out.announces_received.iter().sum(),
    );
    tel.inc(
        ids::BGP_WITHDRAWS,
        Label::Global,
        out.withdraws_received.iter().sum(),
    );
    out
}

/// Runs the dynamics for one origin. See module docs.
pub fn simulate_origin(topo: &AsTopology, origin: AsIndex, cfg: &OriginSimConfig) -> OriginOutcome {
    let n = topo.num_ases();
    let latency = LatencyModel::default_for(topo, cfg.seed);

    // One session (and one representative link) per neighbor pair.
    let sessions: Vec<Vec<(AsIndex, LinkIndex)>> = topo
        .as_indices()
        .map(|idx| {
            let mut nb: Vec<(AsIndex, LinkIndex)> = topo
                .neighbors(idx)
                .into_iter()
                .map(|o| (o, topo.links_between(idx, o)[0]))
                .collect();
            nb.sort_by_key(|&(o, _)| o);
            nb
        })
        .collect();

    let mut states: Vec<SpeakerState> = (0..n).map(|_| SpeakerState::new()).collect();
    let mut out = OriginOutcome {
        announces_received: vec![0; n],
        announce_pathlen_sum: vec![0; n],
        withdraws_received: vec![0; n],
        initial_announces: vec![0; n],
        initial_pathlen_sum: vec![0; n],
        best_paths: vec![None; n],
    };

    let mut engine: Engine<BgpMsg> = Engine::new();

    // Schedule churn cycles. The first withdraw comes after a settle gap
    // long enough for initial convergence.
    let mut churn_start = SimTime::from_micros(u64::MAX);
    for k in 0..cfg.churn_resets {
        let t_withdraw =
            SimTime::ZERO + cfg.settle_gap + (cfg.settle_gap + cfg.reset_gap) * (k as u64);
        if k == 0 {
            churn_start = t_withdraw;
        }
        engine.schedule_timer(t_withdraw, origin, TIMER_WITHDRAW);
        engine.schedule_timer(t_withdraw + cfg.reset_gap, origin, TIMER_REANNOUNCE);
    }

    // Initial announcement.
    states[origin.as_usize()].originating = true;
    engine.schedule_timer(SimTime::ZERO, origin, TIMER_MRAI_BASE); // kick-off

    // Sends updates (respecting MRAI) from `me` to every neighbor whose
    // desired advertisement changed.
    fn flush(
        topo: &AsTopology,
        sessions: &[Vec<(AsIndex, LinkIndex)>],
        states: &mut [SpeakerState],
        engine: &mut Engine<BgpMsg>,
        latency: &LatencyModel,
        cfg: &OriginSimConfig,
        me: AsIndex,
        eff_now: SimTime,
    ) {
        for &(nb, link) in &sessions[me.as_usize()] {
            let desired = desired_advertisement(topo, me, &states[me.as_usize()], nb, cfg.policy);
            let state = &mut states[me.as_usize()];
            let already = state.adv_out.get(&nb).cloned().unwrap_or(None);
            if desired == already {
                continue;
            }
            // Never send a withdrawal for something never advertised.
            if desired.is_none() && already.is_none() {
                continue;
            }
            let mrai_ok = match state.last_sent.get(&nb).copied().flatten() {
                Some(t) => eff_now.since(t) >= cfg.mrai,
                None => true,
            };
            if mrai_ok {
                state.adv_out.insert(nb, desired.clone());
                state.last_sent.insert(nb, Some(eff_now));
                state.pending.insert(nb, false);
                let extra = eff_now.since(engine.now());
                engine.send(latency.delay(link) + extra, nb, link, desired);
            } else if !state.pending.get(&nb).copied().unwrap_or(false) {
                state.pending.insert(nb, true);
                let fire_at = state.last_sent[&nb].expect("mrai implies sent") + cfg.mrai;
                engine.schedule_timer(fire_at.max(eff_now), me, TIMER_MRAI_BASE + nb.0 + 1);
            }
        }
    }

    let deadline = SimTime::from_micros(u64::MAX);
    while let Some((now, ev)) = engine.pop_until(deadline) {
        match ev {
            Event::Timer { node, kind } => match kind {
                TIMER_WITHDRAW => {
                    states[node.as_usize()].originating = false;
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        node,
                        now,
                    );
                }
                TIMER_REANNOUNCE | TIMER_MRAI_BASE => {
                    if kind == TIMER_REANNOUNCE {
                        states[node.as_usize()].originating = true;
                    }
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        node,
                        now,
                    );
                }
                k => {
                    // Per-neighbor MRAI expiry.
                    let nb = AsIndex(k - TIMER_MRAI_BASE - 1);
                    if states[node.as_usize()].pending.get(&nb).copied() == Some(true) {
                        states[node.as_usize()].pending.insert(nb, false);
                        flush(
                            topo,
                            &sessions,
                            &mut states,
                            &mut engine,
                            &latency,
                            cfg,
                            node,
                            now,
                        );
                    }
                }
            },
            Event::Deliver { to, via, msg } => {
                let (from, _, _) = topo.link(via).opposite(to);
                // Serialize the 5 ms processing through the speaker.
                let state = &mut states[to.as_usize()];
                let eff_now = if state.busy_until > now {
                    state.busy_until
                } else {
                    now
                } + cfg.processing_delay;
                state.busy_until = eff_now;

                match &msg {
                    Some(path) => {
                        out.announces_received[to.as_usize()] += 1;
                        out.announce_pathlen_sum[to.as_usize()] += path.len() as u64;
                        if now < churn_start {
                            out.initial_announces[to.as_usize()] += 1;
                            out.initial_pathlen_sum[to.as_usize()] += path.len() as u64;
                        }
                        if path.contains(&to) {
                            // AS-path loop: discard (treat as implicit
                            // withdraw of this neighbor's route).
                            state.adj_rib_in.remove(&from);
                        } else {
                            state.adj_rib_in.insert(from, path.clone());
                        }
                    }
                    None => {
                        out.withdraws_received[to.as_usize()] += 1;
                        state.adj_rib_in.remove(&from);
                    }
                }
                if states[to.as_usize()].recompute_best(topo, to, cfg.policy) {
                    flush(
                        topo,
                        &sessions,
                        &mut states,
                        &mut engine,
                        &latency,
                        cfg,
                        to,
                        eff_now,
                    );
                }
            }
        }
    }

    for idx in topo.as_indices() {
        let s = &states[idx.as_usize()];
        out.best_paths[idx.as_usize()] = if idx == origin {
            Some(Vec::new())
        } else {
            s.best.as_ref().map(|(_, p)| p.clone())
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    /// Diamond: 1 provides to 2 and 3; both provide to 4.
    fn diamond() -> AsTopology {
        topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (1, 3, Relationship::AProviderOfB, 1),
            (2, 4, Relationship::AProviderOfB, 1),
            (3, 4, Relationship::AProviderOfB, 1),
        ])
    }

    #[test]
    fn converges_to_valley_free_paths() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let out = simulate_origin(&topo, four, &OriginSimConfig::default());
        // AS 1 reaches 4 via one of its customers, path length 2.
        let one = topo.by_address(ia(1)).unwrap();
        let p = out.best_paths[one.as_usize()].as_ref().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(*p.last().unwrap(), four);
        // Everyone reaches the origin.
        for idx in topo.as_indices() {
            assert!(out.best_paths[idx.as_usize()].is_some());
        }
    }

    #[test]
    fn peer_routes_not_given_transit() {
        // 1 -- 2 peering; 3 is 2's other peer. 3 originates.
        // 1 must NOT learn the route (2 won't export a peer route to a
        // peer).
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let three = topo.by_address(ia(3)).unwrap();
        let out = simulate_origin(&topo, three, &OriginSimConfig::default());
        let one = topo.by_address(ia(1)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        assert!(out.best_paths[two.as_usize()].is_some());
        assert!(
            out.best_paths[one.as_usize()].is_none(),
            "valley-free violated"
        );
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        // 2's customer 3 and peer 4 both reach origin 5; 2 must pick the
        // customer route even if longer.
        let topo = topology_from_edges(&[
            (2, 3, Relationship::AProviderOfB, 1), // 3 is customer of 2
            (2, 4, Relationship::PeerToPeer, 1),
            (3, 6, Relationship::AProviderOfB, 1),
            (6, 5, Relationship::AProviderOfB, 1), // long customer chain
            (4, 5, Relationship::AProviderOfB, 1), // short peer path
        ]);
        let five = topo.by_address(ia(5)).unwrap();
        let out = simulate_origin(&topo, five, &OriginSimConfig::default());
        let two = topo.by_address(ia(2)).unwrap();
        let three = topo.by_address(ia(3)).unwrap();
        let p = out.best_paths[two.as_usize()].as_ref().unwrap();
        assert_eq!(p[0], three, "customer route must win: {p:?}");
    }

    #[test]
    fn withdraw_reannounce_cycle_costs_messages() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let no_churn = simulate_origin(
            &topo,
            four,
            &OriginSimConfig {
                churn_resets: 0,
                ..OriginSimConfig::default()
            },
        );
        let with_churn = simulate_origin(&topo, four, &OriginSimConfig::default());
        let total = |o: &OriginOutcome| {
            o.announces_received.iter().sum::<u64>() + o.withdraws_received.iter().sum::<u64>()
        };
        assert!(total(&with_churn) > total(&no_churn));
        assert!(with_churn.withdraws_received.iter().sum::<u64>() > 0);
        // Initial-phase counters exclude churn traffic.
        assert_eq!(with_churn.initial_announces, no_churn.initial_announces);
        // After the final re-announce everything re-converges.
        for idx in topo.as_indices() {
            assert!(with_churn.best_paths[idx.as_usize()].is_some());
        }
    }

    #[test]
    fn origin_receives_no_own_announcement_loops() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let out = simulate_origin(&topo, four, &OriginSimConfig::default());
        // Announcements that would loop back are suppressed at the sender,
        // so the origin sees no announce for its own prefix.
        assert_eq!(out.announces_received[four.as_usize()], 0);
    }

    #[test]
    fn telemetry_wrapper_matches_plain_run() {
        use scion_telemetry::{ids, phase, Label, Telemetry, TelemetryConfig};
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let plain = simulate_origin(&topo, four, &OriginSimConfig::default());
        let mut tel = Telemetry::new(TelemetryConfig::default());
        let instrumented =
            simulate_origin_telemetry(&topo, four, &OriginSimConfig::default(), &mut tel);
        assert_eq!(plain.announces_received, instrumented.announces_received);
        assert_eq!(plain.withdraws_received, instrumented.withdraws_received);
        assert_eq!(
            tel.metrics.counter(ids::BGP_ANNOUNCES, Label::Global),
            plain.announces_received.iter().sum::<u64>()
        );
        assert!(tel.profile.stats(phase::BGP_CONVERGENCE).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = diamond();
        let four = topo.by_address(ia(4)).unwrap();
        let a = simulate_origin(&topo, four, &OriginSimConfig::default());
        let b = simulate_origin(&topo, four, &OriginSimConfig::default());
        assert_eq!(a.announces_received, b.announces_received);
        assert_eq!(a.withdraws_received, b.withdraws_received);
        assert_eq!(a.best_paths, b.best_paths);
    }
}
