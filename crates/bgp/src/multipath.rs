//! BGP multi-path path sets for the §5.3 quality comparison.
//!
//! The paper gives BGP its best case: "choosing the best path present in
//! RouteViews and assuming full BGP multi-path support between every AS
//! pair for bandwidth aggregation and fast failover". Concretely: the
//! AS-level best path is fixed (BGP picks exactly one), but *every
//! parallel physical link* between consecutive ASes on it may be used
//! simultaneously. Resilience and capacity of the pair are then computed
//! by max-flow over that link set (see `scion-analysis`), which reduces to
//! the minimum parallel-link count along the path.

use scion_topology::{AsIndex, AsTopology, LinkIndex};

use crate::engine::{simulate_origin, OriginSimConfig};
use crate::policy::PolicyMode;

/// Converged BGP best AS paths from every AS toward `origin` (no churn).
/// Entry `v` is the path from `v`'s next hop to the origin, `None` when
/// the origin is unreachable under policy, and `Some(empty)` at the origin
/// itself.
pub fn best_paths_for_origin(
    topo: &AsTopology,
    origin: AsIndex,
    seed: u64,
) -> Vec<Option<Vec<AsIndex>>> {
    best_paths_with_policy(topo, origin, seed, PolicyMode::GaoRexford)
}

/// Like [`best_paths_for_origin`] with an explicit policy. The §5.3
/// core-mesh comparison uses [`PolicyMode::ShortestPath`]: among core ASes
/// every link is a transit link, which is also BGP's best case.
pub fn best_paths_with_policy(
    topo: &AsTopology,
    origin: AsIndex,
    seed: u64,
    policy: PolicyMode,
) -> Vec<Option<Vec<AsIndex>>> {
    let cfg = OriginSimConfig {
        churn_resets: 0,
        seed,
        policy,
        ..OriginSimConfig::default()
    };
    simulate_origin(topo, origin, &cfg).best_paths
}

/// The link set of the BGP multi-path best case for the pair `(src,
/// origin)`: all parallel links between each pair of consecutive ASes on
/// the best path. `None` if BGP has no route.
pub fn bgp_multipath_links(
    topo: &AsTopology,
    src: AsIndex,
    best_path: &Option<Vec<AsIndex>>,
) -> Option<Vec<LinkIndex>> {
    let path = best_path.as_ref()?;
    let mut hops = Vec::with_capacity(path.len() + 1);
    hops.push(src);
    hops.extend_from_slice(path);
    let mut links = Vec::new();
    for w in hops.windows(2) {
        let parallel = topo.links_between(w[0], w[1]);
        if parallel.is_empty() {
            return None; // malformed path
        }
        links.extend(parallel);
    }
    Some(links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    #[test]
    fn multipath_includes_parallel_links_of_best_path_only() {
        // 1 ==2== 2 --- 3 (two parallel links 1-2, one 2-3) and a detour
        // 1 - 4 - 3 that BGP does not use (longer).
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 2),
            (2, 3, Relationship::AProviderOfB, 1),
            (1, 4, Relationship::AProviderOfB, 1),
            (4, 3, Relationship::AProviderOfB, 1),
        ]);
        let one = topo.by_address(ia(1)).unwrap();
        let three = topo.by_address(ia(3)).unwrap();
        let best = best_paths_for_origin(&topo, three, 1);
        // 1 reaches 3 via customer 4 (customer > peer in Gao-Rexford).
        let links = bgp_multipath_links(&topo, one, &best[one.as_usize()]).unwrap();
        assert_eq!(links.len(), 2, "1-4 and 4-3, single links each");

        // 2 reaches 3 directly via its customer link.
        let two = topo.by_address(ia(2)).unwrap();
        let links2 = bgp_multipath_links(&topo, two, &best[two.as_usize()]).unwrap();
        assert_eq!(links2.len(), 1);
    }

    #[test]
    fn parallel_links_all_included() {
        let topo = topology_from_edges(&[(1, 2, Relationship::PeerToPeer, 3)]);
        let one = topo.by_address(ia(1)).unwrap();
        let two = topo.by_address(ia(2)).unwrap();
        let best = best_paths_for_origin(&topo, two, 1);
        let links = bgp_multipath_links(&topo, one, &best[one.as_usize()]).unwrap();
        assert_eq!(links.len(), 3, "full multi-path over parallel links");
    }

    #[test]
    fn unreachable_yields_none() {
        // Valley: 1 and 3 both peer with 2 only.
        let topo = topology_from_edges(&[
            (1, 2, Relationship::PeerToPeer, 1),
            (2, 3, Relationship::PeerToPeer, 1),
        ]);
        let one = topo.by_address(ia(1)).unwrap();
        let three = topo.by_address(ia(3)).unwrap();
        let best = best_paths_for_origin(&topo, three, 1);
        assert!(best[one.as_usize()].is_none());
        assert!(bgp_multipath_links(&topo, one, &best[one.as_usize()]).is_none());
    }
}
