//! The RouteViews-substitute monthly workload model.
//!
//! The paper measures plain-BGP overhead from one month of real RouteViews
//! update traces (§5.2). Without that dataset, two empirical distributions
//! must be modelled (see DESIGN.md §2):
//!
//! * **Prefixes per origin AS** — real announcement counts are heavy
//!   tailed: most ASes originate a handful of prefixes, a few (large
//!   carriers, CDNs) originate thousands. We use a Zipf-like power law
//!   with exponent ≈ 1.6 capped at [`PrefixModel::max_prefixes`].
//! * **Churn events per origin per month** — update activity per prefix is
//!   also heavy tailed (most prefixes are quiet; a noisy minority flaps
//!   constantly). Power law with exponent ≈ 1.5, scaled so the mean lands
//!   on [`ChurnModel::mean_events`] (calibration discussed in
//!   EXPERIMENTS.md).
//!
//! Both draws are deterministic per (seed, AS index).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use scion_topology::{AsIndex, AsTopology};

/// Power-law sampler: draws `k ∈ [1, max]` with `P(k) ∝ k^-exponent` via
/// inverse-CDF on the continuous Pareto and rounding down.
fn power_law(rng: &mut impl Rng, exponent: f64, max: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of bounded Pareto on [1, max].
    let a = 1.0 - exponent;
    let x = if (a.abs()) < 1e-9 {
        max.powf(u)
    } else {
        ((max.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
    };
    x.floor().max(1.0) as u64
}

/// Per-AS announced prefix counts.
#[derive(Clone, Debug)]
pub struct PrefixModel {
    pub exponent: f64,
    pub max_prefixes: u64,
    pub seed: u64,
}

impl Default for PrefixModel {
    fn default() -> Self {
        PrefixModel {
            exponent: 1.6,
            max_prefixes: 4_000,
            seed: 0xbeef,
        }
    }
}

impl PrefixModel {
    /// The number of prefixes `idx` originates. High-degree ASes draw from
    /// the same distribution but take the max of two draws (big networks
    /// announce more), which correlates prefix count with topology rank the
    /// way reality does.
    pub fn prefixes_of(&self, topo: &AsTopology, idx: AsIndex) -> u64 {
        let mut rng =
            ChaCha12Rng::seed_from_u64(self.seed ^ (u64::from(idx.0)).wrapping_mul(0x9E37_79B9));
        let base = power_law(&mut rng, self.exponent, self.max_prefixes as f64);
        if topo.node(idx).link_degree() >= 10 {
            base.max(power_law(&mut rng, self.exponent, self.max_prefixes as f64))
        } else {
            base
        }
    }
}

/// Per-AS monthly churn (withdraw/re-announce cycles at the origin).
#[derive(Clone, Debug)]
pub struct ChurnModel {
    pub exponent: f64,
    pub max_events: u64,
    /// Target mean events per origin per month; draws are rescaled to it.
    pub mean_events: f64,
    pub seed: u64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            exponent: 1.5,
            max_events: 2_000,
            mean_events: 80.0,
            seed: 0xcafe,
        }
    }
}

impl ChurnModel {
    /// Raw (unscaled) mean of the bounded power law, used for rescaling.
    fn raw_mean(&self) -> f64 {
        // Estimate numerically once; cheap and exact enough.
        let mut acc = 0.0;
        let mut norm = 0.0;
        for k in 1..=self.max_events {
            let p = (k as f64).powf(-self.exponent);
            acc += k as f64 * p;
            norm += p;
        }
        acc / norm
    }

    /// Monthly churn-event count for origin `idx`.
    pub fn events_of(&self, idx: AsIndex) -> u64 {
        let mut rng =
            ChaCha12Rng::seed_from_u64(self.seed ^ (u64::from(idx.0)).wrapping_mul(0x85EB_CA6B));
        let raw = power_law(&mut rng, self.exponent, self.max_events as f64);
        let scale = self.mean_events / self.raw_mean();
        ((raw as f64) * scale).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{generate_internet, GeneratorConfig};

    #[test]
    fn prefix_counts_deterministic_and_heavy_tailed() {
        let topo = generate_internet(&GeneratorConfig::small(500, 3));
        let m = PrefixModel::default();
        let counts: Vec<u64> = topo.as_indices().map(|i| m.prefixes_of(&topo, i)).collect();
        let counts2: Vec<u64> = topo.as_indices().map(|i| m.prefixes_of(&topo, i)).collect();
        assert_eq!(counts, counts2);
        assert!(counts.iter().all(|&c| c >= 1));
        let max = *counts.iter().max().unwrap();
        let median = {
            let mut s = counts.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(max >= median * 20, "max {max} median {median}");
    }

    #[test]
    fn churn_mean_lands_near_target() {
        let topo = generate_internet(&GeneratorConfig::small(2000, 3));
        let m = ChurnModel::default();
        let total: u64 = topo.as_indices().map(|i| m.events_of(i)).sum();
        let mean = total as f64 / topo.num_ases() as f64;
        assert!(
            (mean - m.mean_events).abs() < m.mean_events * 0.5,
            "mean {mean} vs target {}",
            m.mean_events
        );
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = power_law(&mut rng, 1.6, 100.0);
            assert!((1..=100).contains(&v));
        }
    }
}
