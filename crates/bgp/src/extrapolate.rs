//! Extrapolation of BGPsec overhead to a larger topology (§5.2).
//!
//! "Since the CAIDA AS-rel-geo topology contains only 12000 ASes, the
//! calculated overhead is not comparable with BGP's overhead observed in
//! the real world. Therefore, we extrapolate the overhead resulting from
//! simulations on this topology to the entire Internet topology inferred
//! from CAIDA AS relationships … We assume that for a prefix in AS A
//! outside the AS-rel-geo topology, a router receives the same number of
//! update messages as for a prefix in A's lowest-tier provider within the
//! AS-rel-geo topology. Additionally, we assume that the routes originated
//! from A are longer than the routes originated from its lowest-tier
//! provider by their hop difference to their nearest Tier-1 provider."
//!
//! The implementation takes the simulated per-origin results on the
//! *inner* topology plus, for each outer-only AS, its attachment point
//! (the inner proxy provider) and extra hop distance, and returns the
//! additional monthly BGPsec bytes each inner AS would receive.

use std::collections::HashMap;

use scion_topology::{AsIndex, AsTopology};

use crate::sizes;
use crate::workload::PrefixModel;

/// Description of an AS outside the simulated topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OuterAs {
    /// Its lowest-tier provider inside the simulated topology (the proxy
    /// whose update counts it inherits).
    pub proxy: AsIndex,
    /// Additional AS-path hops relative to routes originated at the proxy.
    pub extra_hops: u64,
    /// Prefixes the outer AS announces.
    pub prefixes: u64,
}

/// Derives the outer-AS population from the size difference between the
/// simulated topology and a notional full topology of `full_size` ASes.
///
/// Stub ASes attach to randomly-proxied low-tier inner ASes in proportion
/// to the inner ASes' customer counts; every outer AS sits one hop below
/// its proxy. Deterministic in the AS indices (no RNG needed: outer AS
/// `k` proxies to the low-tier inner AS `k mod |low|`).
pub fn synthesize_outer_population(
    inner: &AsTopology,
    full_size: usize,
    prefixes: &PrefixModel,
) -> Vec<OuterAs> {
    let inner_size = inner.num_ases();
    if full_size <= inner_size {
        return Vec::new();
    }
    // Low-tier inner ASes: those with at least one provider (i.e. not
    // tier-1) — the realistic attachment points for stubs.
    let low: Vec<AsIndex> = inner
        .as_indices()
        .filter(|&i| !inner.providers(i).is_empty())
        .collect();
    let attach = if low.is_empty() {
        inner.as_indices().collect::<Vec<_>>()
    } else {
        low
    };
    (0..full_size - inner_size)
        .map(|k| {
            let proxy = attach[k % attach.len()];
            OuterAs {
                proxy,
                extra_hops: 1,
                // Outer ASes are stubs: modest prefix counts, drawn from
                // the same model keyed far outside the inner index range.
                prefixes: prefixes.prefixes_of(inner, proxy).clamp(1, 8),
            }
        })
        .collect()
}

/// Extrapolated additional monthly BGPsec bytes received per inner AS.
///
/// `initial_announces`/`initial_pathlen_sum` are the per-receiver counters
/// of each *proxy origin's* initial convergence (from
/// [`crate::engine::OriginOutcome`]), indexed `[origin][receiver]` as a
/// map from proxy to its counter vectors. `days` applies the daily
/// re-beaconing assumption.
pub fn extrapolate_bgpsec(
    inner: &AsTopology,
    outer: &[OuterAs],
    per_proxy_announces: &HashMap<AsIndex, Vec<u64>>,
    per_proxy_pathlen: &HashMap<AsIndex, Vec<u64>>,
    days: u64,
) -> Vec<u64> {
    let n = inner.num_ases();
    let mut extra = vec![0u64; n];
    for o in outer {
        let Some(announces) = per_proxy_announces.get(&o.proxy) else {
            continue;
        };
        let Some(pathlens) = per_proxy_pathlen.get(&o.proxy) else {
            continue;
        };
        for v in 0..n {
            // Same number of updates as the proxy's prefix, each longer
            // by `extra_hops`.
            let a = announces[v];
            if a == 0 {
                continue;
            }
            let plen = pathlens[v] + a * o.extra_hops;
            extra[v] += days
                * o.prefixes
                * (a * sizes::bgpsec_announce_size(0) + sizes::BGPSEC_PER_HOP * plen);
        }
    }
    extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};

    fn inner() -> AsTopology {
        // 1 provides to 2 and 3.
        topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (1, 3, Relationship::AProviderOfB, 1),
        ])
    }

    #[test]
    fn outer_population_attaches_to_low_tier() {
        let t = inner();
        let outer = synthesize_outer_population(&t, 7, &PrefixModel::default());
        assert_eq!(outer.len(), 4);
        for o in &outer {
            // AS 1 (tier-1, no providers) is never a proxy.
            assert!(!t.providers(o.proxy).is_empty());
            assert_eq!(o.extra_hops, 1);
            assert!(o.prefixes >= 1);
        }
    }

    #[test]
    fn no_outer_population_when_full_size_not_larger() {
        let t = inner();
        assert!(synthesize_outer_population(&t, 3, &PrefixModel::default()).is_empty());
        assert!(synthesize_outer_population(&t, 2, &PrefixModel::default()).is_empty());
    }

    #[test]
    fn extrapolation_adds_longer_paths() {
        let t = inner();
        let proxy = t.as_indices().nth(1).unwrap(); // AS 2
        let outer = vec![OuterAs {
            proxy,
            extra_hops: 2,
            prefixes: 3,
        }];
        // Proxy origin's convergence: AS 0 received 1 announce of path
        // length 1.
        let mut ann = HashMap::new();
        ann.insert(proxy, vec![1u64, 0, 0]);
        let mut plen = HashMap::new();
        plen.insert(proxy, vec![1u64, 0, 0]);

        let extra = extrapolate_bgpsec(&t, &outer, &ann, &plen, 30);
        // Receiver 0: 30 days * 3 prefixes * (fixed + per_hop * (1 + 2)).
        let expected = 30 * 3 * (sizes::bgpsec_announce_size(0) + sizes::BGPSEC_PER_HOP * 3);
        assert_eq!(extra[0], expected);
        assert_eq!(extra[1], 0);
        assert_eq!(extra[2], 0);
    }

    #[test]
    fn unknown_proxy_is_skipped() {
        let t = inner();
        let outer = vec![OuterAs {
            proxy: AsIndex(0),
            extra_hops: 1,
            prefixes: 1,
        }];
        let extra = extrapolate_bgpsec(&t, &outer, &HashMap::new(), &HashMap::new(), 30);
        assert!(extra.iter().all(|&b| b == 0));
    }
}
