//! Update-message byte models: RFC 4271 (BGP) and RFC 8205 (BGPsec).
//!
//! §5.2: "We calculate the size of update messages based on the individual
//! field sizes defined in RFC 4271" and "derive BGPsec's overhead … based
//! on the BGPsec update message specifications [RFC 8205]", assuming
//! ECDSA-P384 signatures.
//!
//! The decisive structural difference (explicitly called out by the paper:
//! "larger update messages and lack of aggregation in BGPsec"): a plain BGP
//! update can carry many NLRI prefixes that share one path, while a BGPsec
//! update carries **exactly one** prefix, each with a full per-hop
//! signature chain.

use scion_crypto::sizes::{ECDSA_P384_SIGNATURE, SKI};

/// BGP message header (RFC 4271 §4.1): marker 16 + length 2 + type 1.
pub const BGP_HEADER: u64 = 19;

/// UPDATE fixed part: withdrawn-routes length (2) + total-path-attribute
/// length (2).
const UPDATE_FIXED: u64 = 4;

/// ORIGIN attribute: flags 1 + type 1 + length 1 + value 1.
const ATTR_ORIGIN: u64 = 4;

/// NEXT_HOP attribute: flags 1 + type 1 + length 1 + IPv4 4.
const ATTR_NEXT_HOP: u64 = 7;

/// AS_PATH attribute header: flags 1 + type 1 + ext length 2, plus one
/// path-segment header (type 1 + count 1); each AS number is 4 bytes
/// (AS4 / RFC 6793).
const ATTR_AS_PATH_BASE: u64 = 6;
const AS_PATH_PER_HOP: u64 = 4;

/// One IPv4 NLRI entry: 1 length byte + 3 prefix bytes (a /17–/24, the
/// dominant case in global tables).
pub const NLRI_PER_PREFIX: u64 = 4;

/// Size of a BGP UPDATE announcing `num_prefixes` prefixes (aggregated into
/// one message — they share the path) over an AS path of `path_len` hops.
pub fn bgp_announce_size(path_len: u64, num_prefixes: u64) -> u64 {
    BGP_HEADER
        + UPDATE_FIXED
        + ATTR_ORIGIN
        + ATTR_NEXT_HOP
        + ATTR_AS_PATH_BASE
        + AS_PATH_PER_HOP * path_len
        + NLRI_PER_PREFIX * num_prefixes
}

/// Size of a BGP UPDATE withdrawing `num_prefixes` prefixes.
pub fn bgp_withdraw_size(num_prefixes: u64) -> u64 {
    BGP_HEADER + UPDATE_FIXED + NLRI_PER_PREFIX * num_prefixes
}

/// BGPsec_PATH per-hop cost (RFC 8205 §3): Secure_Path segment (pCount 1 +
/// flags 1 + AS 4) + Signature Segment (SKI 20 + sig length 2 + ECDSA-P384
/// signature 96).
pub const BGPSEC_PER_HOP: u64 = 6 + (SKI as u64) + 2 + (ECDSA_P384_SIGNATURE as u64);

/// BGPsec update fixed part: BGP header + UPDATE fixed + ORIGIN +
/// MP_REACH_NLRI scaffolding (attr hdr 4 + AFI/SAFI 3 + next-hop len 1 +
/// next hop 4 + reserved 1 + one NLRI 4) + BGPsec_PATH attribute header
/// (4) + Secure_Path length (2) + Signature_Block length (2) + algorithm
/// suite id (1).
const BGPSEC_FIXED: u64 =
    BGP_HEADER + UPDATE_FIXED + ATTR_ORIGIN + (4 + 3 + 1 + 4 + 1 + 4) + 4 + 2 + 2 + 1;

/// Size of a BGPsec update for **one** prefix over `path_len` hops.
/// BGPsec cannot aggregate NLRI (each prefix is signed separately), so a
/// multi-prefix origin costs `num_prefixes` of these.
pub fn bgpsec_announce_size(path_len: u64) -> u64 {
    BGPSEC_FIXED + BGPSEC_PER_HOP * path_len
}

/// BGPsec withdrawals are not signed (RFC 8205 §4.4); plain BGP size.
pub fn bgpsec_withdraw_size(num_prefixes: u64) -> u64 {
    bgp_withdraw_size(num_prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_cost_is_signature_dominated() {
        assert_eq!(BGPSEC_PER_HOP, 6 + 20 + 2 + 96);
        const { assert!(BGPSEC_PER_HOP > 100) }
    }

    #[test]
    fn bgp_sizes_grow_with_path_and_prefixes() {
        assert!(bgp_announce_size(4, 1) > bgp_announce_size(3, 1));
        assert!(bgp_announce_size(4, 10) > bgp_announce_size(4, 1));
        // Aggregation: 10 extra prefixes cost 40 bytes, not 10 messages.
        assert_eq!(
            bgp_announce_size(4, 11) - bgp_announce_size(4, 1),
            10 * NLRI_PER_PREFIX
        );
    }

    #[test]
    fn bgpsec_order_of_magnitude_vs_bgp() {
        // A typical 4-hop single-prefix update: BGPsec is roughly an order
        // of magnitude heavier — the Fig. 5 starting point.
        let bgp = bgp_announce_size(4, 1);
        let sec = bgpsec_announce_size(4);
        assert!(sec > 8 * bgp, "bgpsec {sec} vs bgp {bgp}");
        assert!(sec < 20 * bgp, "bgpsec {sec} vs bgp {bgp}");
    }

    #[test]
    fn withdraw_sizes() {
        assert_eq!(bgp_withdraw_size(1), 19 + 4 + 4);
        assert_eq!(bgpsec_withdraw_size(3), bgp_withdraw_size(3));
    }
}
