//! Monthly control-plane overhead assembly: the Fig. 5 inputs for BGP and
//! BGPsec.
//!
//! Method (mirroring §5.2's):
//!
//! 1. For every origin, run the per-origin dynamics
//!    ([`crate::engine::simulate_origin`]) once with **one** churn cycle.
//!    The run yields, per AS, the update counts of (a) the initial
//!    convergence and (b) one withdraw/re-announce cycle.
//! 2. **BGP**: monthly updates at an AS = initial convergence once (a
//!    monitor sees at least one session reset / table transfer a month) +
//!    the per-cycle cost times the origin's monthly churn-event count.
//!    Bytes use RFC 4271 sizes with the origin's prefixes aggregated into
//!    each update's NLRI.
//! 3. **BGPsec**: "Assuming a re-beaconing period of one day [RFC 8374],
//!    the resulting overhead is multiplied by 30 to find the monthly
//!    BGPsec overhead" — monthly bytes = initial-convergence announcements
//!    × days, sized per RFC 8205 with **no aggregation** (one signed
//!    update per prefix).
//!
//! Origin runs are independent; they fan out across cores with rayon.

use rayon::prelude::*;

use scion_topology::{AsIndex, AsTopology};

use std::collections::HashMap;

use crate::engine::{simulate_origin, OriginSimConfig};
use crate::extrapolate::{synthesize_outer_population, OuterAs};
use crate::sizes;
use crate::workload::{ChurnModel, PrefixModel};

/// Configuration for the monthly-overhead computation.
#[derive(Clone, Debug)]
pub struct MonthlyConfig {
    pub origin_sim: OriginSimConfig,
    /// Days in the accounting window (paper: one month ⇒ 30).
    pub days: u64,
    pub prefixes: PrefixModel,
    pub churn: ChurnModel,
    /// Origins to include (`None` = every AS).
    pub origins: Option<Vec<AsIndex>>,
    /// §5.2 BGPsec extrapolation: pretend the full Internet has this many
    /// ASes; the extra (stub) ASes inherit their proxy provider's update
    /// counts with one extra hop (`None` = no extrapolation). The paper
    /// extrapolates its 12 000-AS simulation to the full CAIDA AS-rel
    /// topology this way.
    pub bgpsec_extrapolate_to: Option<usize>,
}

impl Default for MonthlyConfig {
    fn default() -> Self {
        MonthlyConfig {
            origin_sim: OriginSimConfig::default(),
            days: 30,
            prefixes: PrefixModel::default(),
            churn: ChurnModel::default(),
            origins: None,
            bgpsec_extrapolate_to: None,
        }
    }
}

/// Per-AS monthly received control-plane bytes.
#[derive(Clone, Debug)]
pub struct MonthlyOverhead {
    pub bgp_bytes: Vec<u64>,
    pub bgpsec_bytes: Vec<u64>,
    /// Total update messages received per AS (BGP accounting).
    pub bgp_updates: Vec<u64>,
}

/// Computes per-AS monthly BGP and BGPsec byte totals on `topo`.
pub fn monthly_overhead(topo: &AsTopology, cfg: &MonthlyConfig) -> MonthlyOverhead {
    let n = topo.num_ases();
    let origins: Vec<AsIndex> = cfg
        .origins
        .clone()
        .unwrap_or_else(|| topo.as_indices().collect());

    // §5.2 extrapolation: group the synthesized outer stubs by their
    // inner proxy so the per-origin pass can add their cost when it
    // simulates the proxy itself.
    let outer_by_proxy: HashMap<AsIndex, Vec<OuterAs>> = match cfg.bgpsec_extrapolate_to {
        Some(full) => {
            let mut m: HashMap<AsIndex, Vec<OuterAs>> = HashMap::new();
            for o in synthesize_outer_population(topo, full, &cfg.prefixes) {
                m.entry(o.proxy).or_default().push(o);
            }
            m
        }
        None => HashMap::new(),
    };

    let partials: Vec<(Vec<u64>, Vec<u64>, Vec<u64>)> = origins
        .par_iter()
        .map(|&origin| {
            let sim = simulate_origin(topo, origin, &cfg.origin_sim);
            let prefixes = cfg.prefixes.prefixes_of(topo, origin);
            let churn_events = cfg.churn.events_of(origin);

            let mut bgp = vec![0u64; n];
            let mut bgpsec = vec![0u64; n];
            let mut updates = vec![0u64; n];
            for v in 0..n {
                let a_total = sim.announces_received[v];
                let a_init = sim.initial_announces[v];
                let a_cycle = a_total - a_init;
                let plen_total = sim.announce_pathlen_sum[v];
                let plen_init = sim.initial_pathlen_sum[v];
                let plen_cycle = plen_total - plen_init;
                let w_cycle = sim.withdraws_received[v];

                // BGP: initial table transfer once + churn cycles.
                let announces = a_init + churn_events * a_cycle;
                let plen_sum = plen_init + churn_events * plen_cycle;
                let withdraws = churn_events * w_cycle;
                // Σ over announce messages of announce_size(pathlen, p) =
                // msgs·fixed + per_hop·Σpathlen + nlri·p·msgs.
                bgp[v] = announces * sizes::bgp_announce_size(0, prefixes)
                    + 4 * plen_sum
                    + withdraws * sizes::bgp_withdraw_size(prefixes);
                updates[v] = announces + withdraws;

                // BGPsec: daily re-beaconing of the converged state, one
                // signed update per prefix, no aggregation.
                bgpsec[v] = cfg.days
                    * prefixes
                    * (a_init * sizes::bgpsec_announce_size(0) + sizes::BGPSEC_PER_HOP * plen_init);

                // Extrapolated stubs behind this origin: same update
                // counts, paths longer by their extra hops (§5.2).
                if let Some(outer) = outer_by_proxy.get(&origin) {
                    for o in outer {
                        let plen = plen_init + a_init * o.extra_hops;
                        bgpsec[v] += cfg.days
                            * o.prefixes
                            * (a_init * sizes::bgpsec_announce_size(0)
                                + sizes::BGPSEC_PER_HOP * plen);
                    }
                }
            }
            (bgp, bgpsec, updates)
        })
        .collect();

    let mut out = MonthlyOverhead {
        bgp_bytes: vec![0; n],
        bgpsec_bytes: vec![0; n],
        bgp_updates: vec![0; n],
    };
    for (bgp, bgpsec, updates) in partials {
        for v in 0..n {
            out.bgp_bytes[v] += bgp[v];
            out.bgpsec_bytes[v] += bgpsec[v];
            out.bgp_updates[v] += updates[v];
        }
    }
    out
}

/// Picks `count` monitor ASes: the highest-degree ASes, mirroring
/// RouteViews collectors peering at the best-connected vantage points
/// (§5.2 uses the 26 monitors present in the CAIDA topology).
pub fn pick_monitors(topo: &AsTopology, count: usize) -> Vec<AsIndex> {
    let mut order: Vec<AsIndex> = topo.as_indices().collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(topo.node(i).link_degree()), i.0));
    order.truncate(count);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{generate_internet, GeneratorConfig};

    fn small_topo() -> AsTopology {
        generate_internet(&GeneratorConfig::small(60, 11))
    }

    #[test]
    fn bgpsec_exceeds_bgp_by_an_order_of_magnitude_at_monitors() {
        let topo = small_topo();
        let out = monthly_overhead(&topo, &MonthlyConfig::default());
        let monitors = pick_monitors(&topo, 5);
        for m in monitors {
            let bgp = out.bgp_bytes[m.as_usize()];
            let sec = out.bgpsec_bytes[m.as_usize()];
            assert!(bgp > 0, "monitor receives BGP traffic");
            let ratio = sec as f64 / bgp as f64;
            assert!(
                ratio > 2.0,
                "BGPsec should clearly exceed BGP (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn restricting_origins_reduces_traffic() {
        let topo = small_topo();
        let all = monthly_overhead(&topo, &MonthlyConfig::default());
        let some = monthly_overhead(
            &topo,
            &MonthlyConfig {
                origins: Some(topo.as_indices().take(10).collect()),
                ..MonthlyConfig::default()
            },
        );
        let total = |v: &[u64]| v.iter().sum::<u64>();
        assert!(total(&some.bgp_bytes) < total(&all.bgp_bytes));
        assert!(total(&some.bgpsec_bytes) < total(&all.bgpsec_bytes));
    }

    #[test]
    fn monitors_are_high_degree() {
        let topo = small_topo();
        let monitors = pick_monitors(&topo, 3);
        let min_monitor_degree = monitors
            .iter()
            .map(|&m| topo.node(m).link_degree())
            .min()
            .unwrap();
        let median = {
            let mut d: Vec<usize> = topo
                .as_indices()
                .map(|i| topo.node(i).link_degree())
                .collect();
            d.sort_unstable();
            d[d.len() / 2]
        };
        assert!(min_monitor_degree >= median);
    }

    #[test]
    fn deterministic() {
        let topo = small_topo();
        let a = monthly_overhead(&topo, &MonthlyConfig::default());
        let b = monthly_overhead(&topo, &MonthlyConfig::default());
        assert_eq!(a.bgp_bytes, b.bgp_bytes);
        assert_eq!(a.bgpsec_bytes, b.bgpsec_bytes);
    }
}
