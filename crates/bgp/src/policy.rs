//! Gao–Rexford routing policy: preference and export rules.
//!
//! The economic model of inter-domain routing that both BGP practice and
//! SCION's beaconing hierarchy assume:
//!
//! * **Preference**: routes learned from customers beat routes learned from
//!   peers beat routes learned from providers (money flows beat path
//!   length); among equals, shorter AS paths win; final tiebreak is the
//!   lowest neighbor index (the "lowest router id" stand-in).
//! * **Export**: customer-learned routes go to everyone; peer- or
//!   provider-learned routes go to customers only (no transit for free).

use scion_topology::{AsIndex, AsTopology};

/// Which routing policy a simulation applies.
///
/// `GaoRexford` is the Internet-wide default. `ShortestPath` models the
/// paper's §5.3 *best case for BGP* on the SCION core topology: all core
/// links are transit links among the core mesh (core beaconing itself is
/// unrestricted flooding there), so relationship classes and export
/// filtering do not apply — only path length does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PolicyMode {
    #[default]
    GaoRexford,
    ShortestPath,
}

/// How a route was learned, ordered by descending preference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

impl RouteClass {
    /// Classifies a route learned by `me` from `neighbor`.
    ///
    /// With multiple (hybrid) relationships between two ASes the most
    /// preferred class wins, matching how operators configure local-pref.
    pub fn classify(topo: &AsTopology, me: AsIndex, neighbor: AsIndex) -> RouteClass {
        let mut best: Option<RouteClass> = None;
        for li in topo.links_between(me, neighbor) {
            let l = topo.link(li);
            let class = if l.is_provider_side(me) && l.is_customer_side(neighbor) {
                RouteClass::Customer
            } else if l.is_customer_side(me) {
                RouteClass::Provider
            } else {
                RouteClass::Peer
            };
            best = Some(match best {
                Some(b) if b <= class => b,
                _ => class,
            });
        }
        best.expect("classify called for non-neighbors")
    }
}

/// A candidate route for preference comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub class: RouteClass,
    pub path_len: usize,
    pub neighbor: AsIndex,
}

/// Returns true if `a` is strictly preferred over `b`.
pub fn prefer(a: &Candidate, b: &Candidate) -> bool {
    (a.class, a.path_len, a.neighbor) < (b.class, b.path_len, b.neighbor)
}

/// Gao–Rexford export rule: may `me` export a route of class `learned` to
/// `to`?
///
/// Routes the AS originates itself (`learned = None`) are exported to
/// everyone.
pub fn export_allowed(
    topo: &AsTopology,
    me: AsIndex,
    learned: Option<RouteClass>,
    to: AsIndex,
) -> bool {
    match learned {
        None | Some(RouteClass::Customer) => true,
        Some(RouteClass::Peer) | Some(RouteClass::Provider) => {
            // Only to customers.
            RouteClass::classify(topo, me, to) == RouteClass::Customer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_topology::{topology_from_edges, Relationship};
    use scion_types::{Asn, Isd, IsdAsn};

    fn ia(asn: u64) -> IsdAsn {
        IsdAsn::new(Isd(1), Asn::from_u64(asn))
    }

    /// 1 provides to 2; 2 peers with 3; 3 provides to 4.
    fn topo() -> AsTopology {
        topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (2, 3, Relationship::PeerToPeer, 1),
            (3, 4, Relationship::AProviderOfB, 1),
        ])
    }

    #[test]
    fn classify_direction() {
        let t = topo();
        let one = t.by_address(ia(1)).unwrap();
        let two = t.by_address(ia(2)).unwrap();
        let three = t.by_address(ia(3)).unwrap();
        assert_eq!(RouteClass::classify(&t, one, two), RouteClass::Customer);
        assert_eq!(RouteClass::classify(&t, two, one), RouteClass::Provider);
        assert_eq!(RouteClass::classify(&t, two, three), RouteClass::Peer);
    }

    #[test]
    fn preference_order() {
        let c = |class, len, n: u32| Candidate {
            class,
            path_len: len,
            neighbor: AsIndex(n),
        };
        // Class dominates length.
        assert!(prefer(
            &c(RouteClass::Customer, 9, 5),
            &c(RouteClass::Peer, 1, 1)
        ));
        // Length within class.
        assert!(prefer(
            &c(RouteClass::Peer, 2, 5),
            &c(RouteClass::Peer, 3, 1)
        ));
        // Neighbor id as final tiebreak.
        assert!(prefer(
            &c(RouteClass::Peer, 2, 1),
            &c(RouteClass::Peer, 2, 5)
        ));
        // Irreflexive.
        assert!(!prefer(
            &c(RouteClass::Peer, 2, 1),
            &c(RouteClass::Peer, 2, 1)
        ));
    }

    #[test]
    fn export_rules_are_valley_free() {
        let t = topo();
        let two = t.by_address(ia(2)).unwrap();
        let one = t.by_address(ia(1)).unwrap();
        let three = t.by_address(ia(3)).unwrap();
        // 2 originates: export everywhere.
        assert!(export_allowed(&t, two, None, one));
        assert!(export_allowed(&t, two, None, three));
        // 2 learned from provider 1: must NOT export to peer 3.
        assert!(!export_allowed(&t, two, Some(RouteClass::Provider), three));
        // 2 learned from peer 3: must NOT export to provider 1.
        assert!(!export_allowed(&t, two, Some(RouteClass::Peer), one));
        // 3 learned from peer 2: may export to its customer 4.
        let four = t.by_address(ia(4)).unwrap();
        assert!(export_allowed(&t, three, Some(RouteClass::Peer), four));
        // Customer-learned goes everywhere.
        assert!(export_allowed(&t, three, Some(RouteClass::Customer), two));
    }

    #[test]
    fn hybrid_relationship_prefers_customer_class() {
        let t = topology_from_edges(&[
            (1, 2, Relationship::AProviderOfB, 1),
            (2, 1, Relationship::AProviderOfB, 1), // mutual transit
        ]);
        let one = t.by_address(ia(1)).unwrap();
        let two = t.by_address(ia(2)).unwrap();
        assert_eq!(RouteClass::classify(&t, one, two), RouteClass::Customer);
        assert_eq!(RouteClass::classify(&t, two, one), RouteClass::Customer);
    }
}
