//! BGP and BGPsec simulation substrate.
//!
//! Fills the role of SimBGP + the RouteViews dataset in the paper's §5
//! evaluation. The pieces:
//!
//! * [`policy`] — Gao–Rexford route preference (customer > peer > provider,
//!   then shortest AS path) and valley-free export filtering;
//! * [`engine`] — an event-driven per-origin path-vector simulation with
//!   the §5.1 parameters: 15 s Minimum Route Advertisement Interval per
//!   session and 5 ms processing delay per update. Origins announce, churn
//!   events withdraw/re-announce, and every AS counts the updates it
//!   receives. Per-origin runs are independent, which is what lets the
//!   monthly workload fan out across CPU cores;
//! * [`sizes`] — update-message byte models: RFC 4271 for plain BGP
//!   (with NLRI aggregation across a origin's prefixes) and RFC 8205 for
//!   BGPsec (per-prefix signed updates, ECDSA-P384, no aggregation);
//! * [`workload`] — the RouteViews-substitute monthly model: Zipf prefix
//!   counts per AS, heavy-tailed churn-event counts, and the daily
//!   re-beaconing assumption (RFC 8374) for BGPsec;
//! * [`monthly`] — assembles per-monitor monthly byte totals for BGP and
//!   BGPsec (the Fig. 5 inputs);
//! * [`multipath`] — the best-case BGP multi-path path sets used by the
//!   §5.3 path-quality comparison ("the best path present in RouteViews
//!   and assuming full BGP multi-path support … for bandwidth aggregation
//!   and fast failover").

pub mod engine;
pub mod extrapolate;
pub mod monthly;
pub mod multipath;
pub mod policy;
pub mod sizes;
pub mod workload;

pub use engine::{
    simulate_origin, simulate_origin_chaos, simulate_origin_telemetry, BgpChaosConfig,
    BgpChaosReport, BgpProbe, OriginOutcome, OriginSimConfig,
};
pub use extrapolate::{extrapolate_bgpsec, synthesize_outer_population, OuterAs};
pub use monthly::{monthly_overhead, MonthlyConfig, MonthlyOverhead};
pub use multipath::{best_paths_for_origin, best_paths_with_policy, bgp_multipath_links};
pub use policy::{export_allowed, prefer, PolicyMode, RouteClass};
