//! # scion-mp-routing
//!
//! A from-scratch Rust reproduction of *"Deployment and Scalability of an
//! Inter-Domain Multi-Path Routing Infrastructure"* (CoNEXT '21): the SCION
//! control plane, the baseline and **path-diversity-based** path
//! construction algorithms, the BGP/BGPsec comparison substrate, and the
//! full evaluation pipeline.
//!
//! This crate is the public facade: it re-exports every subsystem and
//! hosts the [`experiments`] module with one runner per table/figure of
//! the paper's evaluation (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for measured-vs-paper results).
//!
//! ## Quick start
//!
//! ```
//! use scion_core::prelude::*;
//!
//! // A small Internet-like topology, organized into a SCION core.
//! let topo = generate_internet(&GeneratorConfig::small(60, 42));
//! let (mut core, _) = prune_to_top_degree(&topo, 12);
//! scion_core::topology::isd::assign_isds(&mut core, 4);
//!
//! // Two simulated hours of diversity-based core beaconing.
//! let outcome = run_core_beaconing(
//!     &core,
//!     &BeaconingConfig::diversity(),
//!     Duration::from_hours(2),
//!     7,
//! );
//! assert!(outcome.total_bytes() > 0);
//! ```

pub mod experiments;
pub mod report;
pub mod scale;

pub use scion_analysis as analysis;
pub use scion_beaconing as beaconing;
pub use scion_bgp as bgp;
pub use scion_chaos as chaos;
pub use scion_crypto as crypto;
pub use scion_dataplane as dataplane;
pub use scion_endhost as endhost;
pub use scion_ingest as ingest;
pub use scion_pathserver as pathserver;
pub use scion_proto as proto;
pub use scion_simulator as simulator;
pub use scion_telemetry as telemetry;
pub use scion_topology as topology;
pub use scion_types as types;

/// One-stop imports for examples and experiment code.
pub mod prelude {
    pub use scion_analysis::{max_flow, Cdf, Summary};
    pub use scion_beaconing::{
        run_core_beaconing, run_intra_isd_beaconing, Algorithm, BeaconingConfig, BeaconingOutcome,
        DiversityParams,
    };
    pub use scion_bgp::{monthly_overhead, MonthlyConfig};
    pub use scion_proto::{combine_paths, EndToEndPath, PathSegment, Pcb, SegmentType};
    pub use scion_telemetry::{Telemetry, TelemetryConfig};
    pub use scion_topology::{
        generate_internet, prune_to_top_degree, AsIndex, AsTopology, GeneratorConfig, Relationship,
    };
    pub use scion_types::{Asn, Duration, IfId, Isd, IsdAsn, SimTime};

    pub use crate::scale::ExperimentScale;
}
